"""Interlinking drugs between Sider and DrugBank (OAEI 2010 scenario).

The hard case from Section 6.2: wide, partially covered schemata where
names diverge in case and decoration and identifiers (CAS numbers) are
missing for many entities. The example shows the full pipeline a Silk
user would run:

1. analyse compatible properties (Algorithm 2),
2. learn a rule with GenLink,
3. compare against the restricted representations of Table 13,
4. execute the rule over the full sources.

Run with::

    python examples/drug_interlinking.py
"""

from __future__ import annotations

import random

from repro import GenLink, GenLinkConfig, render_rule
from repro.core.compatible import find_compatible_properties
from repro.core.representation import BOOLEAN, FULL
from repro.data.splits import train_validation_split
from repro.datasets import load_dataset
from repro.matching import RuleBlocker, evaluate_links, generate_links


def main() -> None:
    # Scale 0.4 keeps the example under a minute; drop scale for speed
    # or raise it towards 1.0 for the paper-sized dataset.
    dataset = load_dataset("sider_drugbank", seed=33, scale=0.4)
    print(f"Dataset: {dataset.summary()}\n")

    rng = random.Random(33)
    train, validation = train_validation_split(dataset.links, rng)

    # Step 1: which property pairs hold similar values?
    compatible = find_compatible_properties(
        dataset.source_a, dataset.source_b, train.positive, rng=rng
    )
    print(f"Compatible property pairs found (top 8 of {len(compatible)}):")
    for pair in compatible[:8]:
        print(
            f"  {pair.source_property:12s} <-> {pair.target_property:16s}"
            f" via {pair.measure}"
        )
    print()

    # Step 2: learn with full expressivity.
    config = GenLinkConfig(population_size=100, max_iterations=15)
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train,
        validation_links=validation, rng=rng,
    )
    last = result.history[-1]
    print(
        f"GenLink (full): train F1 {last.train_f_measure:.3f}, "
        f"validation F1 {last.validation_f_measure:.3f}"
    )
    print(render_rule(result.best_rule))
    print()

    # Step 3: the boolean representation for comparison (Table 13).
    boolean_config = GenLinkConfig(
        population_size=100, max_iterations=15, representation=BOOLEAN
    )
    boolean_result = GenLink(boolean_config).learn(
        dataset.source_a, dataset.source_b, train,
        validation_links=validation, rng=random.Random(33),
    )
    boolean_last = boolean_result.history[-1]
    print(
        f"GenLink (boolean, no transformations): "
        f"validation F1 {boolean_last.validation_f_measure:.3f} "
        f"(full representation: {last.validation_f_measure:.3f})"
    )
    print()

    # Step 4: execute over the full sources.
    links = generate_links(
        result.best_rule,
        dataset.source_a,
        dataset.source_b,
        blocker=RuleBlocker(result.best_rule),
    )
    evaluation = evaluate_links(links, dataset.links.positive)
    print(
        f"Full-source matching: {len(links)} links, "
        f"precision={evaluation.precision:.3f}, "
        f"recall={evaluation.recall:.3f}, F1={evaluation.f_measure:.3f}"
    )


if __name__ == "__main__":
    main()
