"""Silk interoperability: learn, prune, export, re-import.

GenLink ships inside the Silk Link Discovery Framework; rules learned
with this library become useful to a Silk deployment once they are
written in the Silk Link Specification Language (Silk-LSL). This
example walks the full loop:

1. learn a rule on a small movie workload,
2. prune it for human consumption (drop operators that do not pay
   their way on the reference links),
3. export a complete ``<Silk>`` configuration document,
4. re-import the document and verify the round trip is faithful.

Run with::

    python examples/silk_interop.py
"""

from __future__ import annotations

from repro import DataSource, Entity, GenLink, GenLinkConfig, ReferenceLinkSet
from repro.core import PairEvaluator, prune_rule, render_rule
from repro.silk import (
    SilkDataSource,
    SilkInterlink,
    parse_silk_config,
    silk_config,
)


def build_movie_sources() -> tuple[DataSource, DataSource, list[tuple[str, str]]]:
    """Two movie catalogues with case noise and near-duplicate titles."""
    movies = [
        ("The Matrix", "1999-03-31"),
        ("The Matrix Reloaded", "2003-05-15"),
        ("Heat", "1995-12-15"),
        ("Alien", "1979-05-25"),
        ("Aliens", "1986-07-18"),
        ("Blade Runner", "1982-06-25"),
        ("Casablanca", "1942-11-26"),
        ("Metropolis", "1927-01-10"),
        ("Solaris", "1972-03-20"),
        ("Solaris", "2002-11-27"),  # the remake: same title, other year
        ("Stalker", "1979-05-25"),
        ("Gattaca", "1997-10-24"),
    ]
    dbpedia = DataSource("dbpedia")
    linkedmdb = DataSource("linkedmdb")
    matches = []
    for i, (title, date) in enumerate(movies):
        uid_a, uid_b = f"a:{i}", f"b:{i}"
        dbpedia.add(Entity(uid_a, {"name": title, "date": date}))
        linkedmdb.add(Entity(uid_b, {"label": title.upper(), "released": date}))
        matches.append((uid_a, uid_b))
    return dbpedia, linkedmdb, matches


def main() -> None:
    dbpedia, linkedmdb, matches = build_movie_sources()

    # The two Solaris films force the rule to look beyond the title.
    negative = [(matches[8][0], matches[9][1]), (matches[9][0], matches[8][1])]
    negative += [(matches[i][0], matches[(i + 5) % 8][1]) for i in range(8)]
    train = ReferenceLinkSet(positive=matches, negative=negative)

    print("=== 1. learn ===")
    config = GenLinkConfig(population_size=60, max_iterations=20)
    result = GenLink(config).learn(dbpedia, linkedmdb, train, rng=11)
    print(render_rule(result.best_rule, title="learned rule"))

    print("\n=== 2. prune ===")
    pairs, labels = train.labelled_pairs(dbpedia, linkedmdb)
    pruned = prune_rule(result.best_rule, PairEvaluator(pairs), labels)
    print(pruned.describe())
    print(render_rule(pruned.rule, title="pruned rule"))

    print("\n=== 3. export Silk configuration ===")
    interlink = SilkInterlink(
        id="movies",
        rule=pruned.rule,
        source_dataset="dbpedia",
        target_dataset="linkedmdb",
        source_restriction="?a rdf:type dbpedia:Film",
        target_restriction="?b rdf:type movie:film",
    )
    document = silk_config(
        [interlink],
        data_sources=[
            SilkDataSource.sparql("dbpedia", "http://dbpedia.org/sparql"),
            SilkDataSource.file("linkedmdb", "linkedmdb.nt"),
        ],
        prefixes={"movie": "http://data.linkedmdb.org/resource/movie/"},
    )
    print(document)

    print("\n=== 4. re-import and verify ===")
    reimported = parse_silk_config(document).interlink("movies").rule
    assert reimported == pruned.rule, "round trip must be loss-free"
    print("round trip OK: re-imported rule is identical to the exported one")


if __name__ == "__main__":
    main()
