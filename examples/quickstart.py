"""Quickstart: learn a linkage rule from reference links.

Builds two tiny product catalogues whose labels diverge in letter case
and decoration, hands GenLink a handful of positive/negative reference
links and prints the learned rule plus the links it generates across
the full sources.

Run with::

    python examples/quickstart.py

Learning and link generation both run on the parallel engine when you
ask for workers — results are byte-identical, only faster::

    REPRO_ENGINE_WORKERS=4 python examples/quickstart.py   # thread pool
    repro-experiments --workers 4 learn restaurant         # CLI flag

or per component: ``GenLink(config, workers=4)`` and
``generate_links(..., workers=4)`` (see ``docs/engine.md``).

Point ``REPRO_ENGINE_CACHE`` at a directory and reruns get warm-cache
distance columns — the second invocation loads every column from disk
instead of recomputing it, with byte-identical output::

    REPRO_ENGINE_CACHE=/tmp/engine-cache python examples/quickstart.py
    REPRO_ENGINE_CACHE=/tmp/engine-cache python examples/quickstart.py

    repro-experiments --cache-dir /tmp/engine-cache learn restaurant
    repro-experiments --cache-dir /tmp/engine-cache cache info

or per component: ``GenLink(config, cache_dir=...)``,
``MatchingEngine(cache_dir=...)``. When the cache is active this
script reports the store's hit/miss counters on stderr — distance
columns *and* blocking indexes (stdout stays identical across runs,
which CI's cache-reuse leg asserts).

Link generation picks its blocking strategy from the learned rule's
structure (MultiBlock where its comparisons support a dismissal-free
index). Force a specific strategy with ``REPRO_ENGINE_BLOCKER`` or the
CLI's ``--blocker`` flag — the generated links are identical, only the
candidate count changes::

    REPRO_ENGINE_BLOCKER=multiblock python examples/quickstart.py
    repro-experiments --blocker multiblock learn restaurant --execute

String measures route through vectorized batch kernels; pick the
backend with ``REPRO_ENGINE_STRING_BACKEND`` (``numpy`` default,
``rapidfuzz`` if installed, ``python`` for the scalar oracle) — links
are bit-identical under every backend, only wall-clock changes. This
script reports the per-measure batch/fallback routing on stderr::

    REPRO_ENGINE_STRING_BACKEND=python python examples/quickstart.py
"""

from __future__ import annotations

import random
import sys

from repro import DataSource, Entity, GenLink, GenLinkConfig, ReferenceLinkSet
from repro import render_rule, rule_to_json
from repro.matching import MatchingEngine, evaluate_links


def build_sources() -> tuple[DataSource, DataSource, list[tuple[str, str]]]:
    """Two catalogues describing the same products differently."""
    products = [
        "iPod Nano", "ThinkPad Carbon", "Galaxy Note", "Kindle Paperwhite",
        "PlayStation Vita", "Lumia Phone", "Nexus Tablet", "Xperia Ultra",
        "MacBook Air", "Surface Book", "Chromebook Pixel", "Aspire One",
    ]
    shop_a = DataSource("shop_a")
    shop_b = DataSource("shop_b")
    matches = []
    for i, name in enumerate(products):
        uid_a, uid_b = f"a:{i}", f"b:{i}"
        # Shop A uses clean names; shop B shouts.
        shop_a.add(Entity(uid_a, {"label": name, "category": "electronics"}))
        shop_b.add(Entity(uid_b, {"name": name.upper()}))
        matches.append((uid_a, uid_b))
    return shop_a, shop_b, matches


def main() -> None:
    shop_a, shop_b, matches = build_sources()

    # Reference links: a few confirmed matches plus cross-paired
    # non-matches (the paper's negative generation scheme).
    rng = random.Random(7)
    train = ReferenceLinkSet(
        positive=matches[:8],
        negative=[(matches[i][0], matches[(i + 3) % 8][1]) for i in range(8)],
    )

    config = GenLinkConfig(population_size=50, max_iterations=15)
    result = GenLink(config).learn(shop_a, shop_b, train, rng=rng)

    print("Learned linkage rule:")
    print(render_rule(result.best_rule))
    print()
    print("Learning curve (training F1 per iteration):")
    for record in result.history:
        print(
            f"  iteration {record.iteration:2d}: "
            f"F1={record.train_f_measure:.3f} "
            f"(fitness {record.best_fitness:+.3f}, "
            f"{record.operator_count} operators)"
        )
    print()

    # Execute the rule over the full sources, including the four
    # products that were never part of the reference links. The default
    # blocker is rule-structure-aware (MultiBlock where the rule's
    # comparisons support it; REPRO_ENGINE_BLOCKER overrides) and
    # generates exactly the links the full index would.
    engine = MatchingEngine()
    try:
        links = engine.execute(result.best_rule, shop_a, shop_b)
    finally:
        engine.close()
    match_stats = engine.last_run_stats()
    if match_stats is not None and match_stats.store is not None:
        # Persistent column store active (REPRO_ENGINE_CACHE): report
        # its counters on stderr so stdout stays byte-identical between
        # cold and warm runs. Columns and blocking indexes are separate
        # tiers — a warm run shows hits on both.
        store = match_stats.store
        print(
            f"[engine store] hits={store.hits} misses={store.misses} "
            f"writes={store.writes} index_hits={store.index_hits} "
            f"index_misses={store.index_misses} "
            f"index_writes={store.index_writes} "
            f"probe_batches={match_stats.probe_batches} "
            f"probe_memo_hits={match_stats.probe_memo_hits}",
            file=sys.stderr,
        )
    if match_stats is not None and match_stats.kernel_routing:
        # Per-measure kernel routing on stderr (stdout must stay
        # byte-identical across backends and cache states): a measure
        # silently falling back to the per-pair loop shows up here.
        routed = " ".join(
            f"{name}:batch={batch},fallback={fallback}"
            for name, batch, fallback in match_stats.kernel_routing
        )
        print(f"[engine kernels] {routed}", file=sys.stderr)
    evaluation = evaluate_links(links, matches)
    print(f"Generated {len(links)} links over the full catalogues:")
    for link in links:
        print(f"  {link.uid_a} <-> {link.uid_b}  (score {link.score:.2f})")
    print(
        f"precision={evaluation.precision:.2f} "
        f"recall={evaluation.recall:.2f} F1={evaluation.f_measure:.2f}"
    )
    print()
    print("Rule as JSON (for storage / transfer):")
    print(rule_to_json(result.best_rule))


if __name__ == "__main__":
    main()
