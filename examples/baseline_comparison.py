"""Compare GenLink against the Section 4 baseline families.

The paper positions GenLink against Naive Bayes (Fellegi-Sunter),
linear classifiers (MARLIN/SVM), threshold-based boolean classifiers
(decision trees: Active Atlas, TAILOR) and the Carvalho et al. GP.
This example trains all of them on the same noisy product workload and
prints a small leaderboard plus each model's explanation of itself —
the decision tree renders its splits, Fellegi-Sunter its log-weights,
GenLink its operator tree.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import DataSource, Entity, GenLink, GenLinkConfig, ReferenceLinkSet
from repro.baselines import (
    CarvalhoConfig,
    CarvalhoGP,
    DecisionTreeClassifier,
    FellegiSunterClassifier,
    LinearClassifier,
)
from repro.core import render_rule


def build_sources() -> tuple[DataSource, DataSource, ReferenceLinkSet]:
    """Product records with case noise and reordered tokens."""
    products = [
        "iPod Nano 8GB", "ThinkPad X1 Carbon", "Galaxy Note 4",
        "Kindle Paperwhite 2015", "PlayStation Vita Slim", "Lumia 930 Phone",
        "Nexus 7 Tablet", "Xperia Z Ultra", "MacBook Air 13",
        "Surface Book 2", "Chromebook Pixel LS", "Aspire One Cloudbook",
        "ZenBook Pro Duo", "Pavilion Gaming 15", "IdeaPad Slim 7",
        "Swift 3 OLED",
    ]
    shop_a = DataSource("shop_a")
    shop_b = DataSource("shop_b")
    matches = []
    for i, name in enumerate(products):
        uid_a, uid_b = f"a:{i}", f"b:{i}"
        shop_a.add(Entity(uid_a, {"title": name, "stock": str(i)}))
        # Shop B shouts and flips the token order.
        tokens = name.upper().split()
        shop_b.add(
            Entity(uid_b, {"name": " ".join(reversed(tokens)), "sku": str(100 + i)})
        )
        matches.append((uid_a, uid_b))
    negative = [
        (matches[i][0], matches[(i + 4) % len(matches)][1])
        for i in range(len(matches))
    ]
    return shop_a, shop_b, ReferenceLinkSet(positive=matches, negative=negative)


def main() -> None:
    shop_a, shop_b, links = build_sources()
    scores: dict[str, float] = {}

    print("=== GenLink ===")
    result = GenLink(GenLinkConfig(population_size=60, max_iterations=15)).learn(
        shop_a, shop_b, links, rng=3
    )
    scores["GenLink"] = result.history[-1].train_f_measure
    print(render_rule(result.best_rule))

    print("\n=== Decision tree (Active Atlas / TAILOR family) ===")
    tree = DecisionTreeClassifier()
    scores["Decision tree"] = tree.learn(shop_a, shop_b, links, rng=3)
    print(tree.render())

    print("\n=== Fellegi-Sunter / Naive Bayes ===")
    fellegi = FellegiSunterClassifier()
    scores["Fellegi-Sunter"] = fellegi.learn(shop_a, shop_b, links, rng=3)
    print(fellegi.weight_table())

    print("\n=== Linear classifier (MARLIN family) ===")
    linear = LinearClassifier()
    scores["Linear"] = linear.learn(shop_a, shop_b, links, rng=3)
    print(f"{len(linear.attribute_pairs)} attribute pairs, trained")

    print("\n=== Carvalho et al. GP ===")
    carvalho = CarvalhoGP(CarvalhoConfig(population_size=60, max_generations=15))
    carvalho_result = carvalho.learn(shop_a, shop_b, links, rng=3)
    scores["Carvalho GP"] = carvalho_result.train_f_measure

    print("\n=== Training F1 leaderboard ===")
    from repro.experiments import bar_chart

    ordered = dict(sorted(scores.items(), key=lambda kv: -kv[1]))
    print(bar_chart(ordered, maximum=1.0))
    print(
        "\nNote: the token-reordering noise is exactly what GenLink's\n"
        "transformations (tokenize + lowerCase) express and fixed-feature\n"
        "baselines cannot — the gap above is Section 6.2's story in\n"
        "miniature."
    )


if __name__ == "__main__":
    main()
