"""Active learning: confirming pairs instead of writing reference links.

The GenLink paper notes (Section 2) that its companion active learning
method [21] minimises the number of entity pairs a domain expert needs
to confirm or reject. This example runs that extension on the
Restaurant dataset: a blocker proposes candidate pairs, a simulated
expert answers queries, and query-by-committee selection is compared
against random query selection at equal label budgets.

Run with::

    python examples/active_learning.py
"""

from __future__ import annotations

import random

from repro import render_rule
from repro.core.active import ActiveGenLink, ActiveLearningConfig, oracle_from_links
from repro.core.genlink import GenLinkConfig
from repro.datasets import load_dataset
from repro.matching.blocking import TokenBlocker


def main() -> None:
    dataset = load_dataset("restaurant", seed=13, scale=1.0)
    print(f"Dataset: {dataset.summary()}\n")

    # Candidate pairs come from token blocking on name and address —
    # the expert is only ever shown plausible pairs.
    blocker = TokenBlocker(["name", "address"], max_block_size=50)
    candidates = [
        (entity_a.uid, entity_b.uid)
        for entity_a, entity_b in blocker.candidates(
            dataset.source_a, dataset.source_b
        )
    ]
    truth = dataset.links.positive
    positives_in_pool = sum(1 for link in candidates if link in set(truth))
    print(
        f"Blocking produced {len(candidates)} candidate pairs "
        f"({positives_in_pool} of {len(truth)} true matches retained)\n"
    )

    config_base = dict(
        max_queries=24,
        bootstrap_queries=6,
        committee_size=10,
        genlink=GenLinkConfig(population_size=60, max_iterations=10),
    )

    results = {}
    for strategy in ("committee", "random"):
        learner = ActiveGenLink(
            ActiveLearningConfig(strategy=strategy, **config_base)
        )
        result = learner.run(
            dataset.source_a,
            dataset.source_b,
            candidates,
            oracle_from_links(truth),
            rng=random.Random(13),
            reference=dataset.links,
        )
        results[strategy] = result
        curve = ", ".join(f"{f1:.2f}" for f1 in result.f_measure_curve)
        print(f"{strategy:9s} queries={len(result.queries)}  F1 curve: {curve}")

    print()
    committee = results["committee"]
    print(
        f"Final rule after {len(committee.queries)} expert answers "
        f"(F1 {committee.f_measure_curve[-1]:.3f} on all reference links):"
    )
    print(render_rule(committee.best_rule))


if __name__ == "__main__":
    main()
