"""Interlinking movies across two Linked Data sources (LinkedMDB).

The scenario from Section 6.2 of the paper: movies cannot be matched by
title alone because remakes share titles across decades, so the learner
must combine a title comparison with a release date comparison. This
example learns a rule on the synthetic LinkedMDB dataset, prints it,
and demonstrates the remake corner case explicitly.

Run with::

    python examples/movie_interlinking.py
"""

from __future__ import annotations

import random

from repro import GenLink, GenLinkConfig, render_rule
from repro.core.evaluation import evaluate_rule
from repro.data.splits import train_validation_split
from repro.datasets import load_dataset
from repro.matching import RuleBlocker, evaluate_links, generate_links


def main() -> None:
    dataset = load_dataset("linkedmdb", seed=21, scale=1.0)
    print(f"Dataset: {dataset.summary()}\n")

    rng = random.Random(21)
    train, validation = train_validation_split(dataset.links, rng)

    config = GenLinkConfig(population_size=200, max_iterations=40)
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train,
        validation_links=validation, rng=rng,
    )
    last = result.history[-1]
    print(
        f"Learned after {last.iteration} iterations: "
        f"train F1 {last.train_f_measure:.3f}, "
        f"validation F1 {last.validation_f_measure:.3f}"
    )
    print(render_rule(result.best_rule))
    print()

    # The remake corner case: find a negative reference link whose two
    # movies share a title, and show the rule rejecting it.
    for uid_a, uid_b in dataset.links.negative:
        movie_a = dataset.source_a.get(uid_a)
        movie_b = dataset.source_b.get(uid_b)
        label = movie_a.values("label")
        title = movie_b.values("title")
        if label and title and label[0].split(" (")[0].lower() == title[0].lower():
            score = evaluate_rule(result.best_rule.root, movie_a, movie_b)
            print("Remake corner case:")
            print(f"  {uid_a}: label={label[0]!r}, "
                  f"date={movie_a.values('releaseDate')}")
            print(f"  {uid_b}: title={title[0]!r}, "
                  f"date={movie_b.values('initialReleaseDate')}")
            print(f"  rule score: {score:.2f}  -> "
                  f"{'match' if score >= 0.5 else 'correctly rejected'}")
            break
    print()

    # For deployment, retrain on every available reference link (the
    # usual practice once cross-validation has established the method
    # works), then generate links over the whole sources.
    final = GenLink(config).learn(
        dataset.source_a, dataset.source_b, dataset.links, rng=random.Random(2)
    )
    print("Rule used for full-source matching:")
    print(render_rule(final.best_rule))
    links = generate_links(
        final.best_rule,
        dataset.source_a,
        dataset.source_b,
        blocker=RuleBlocker(final.best_rule),
    )
    evaluation = evaluate_links(links, dataset.links.positive)
    print(
        f"Full-source matching: {len(links)} links, "
        f"precision={evaluation.precision:.3f}, "
        f"recall={evaluation.recall:.3f}, F1={evaluation.f_measure:.3f}"
    )


if __name__ == "__main__":
    main()
