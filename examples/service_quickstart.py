"""Quickstart for the linkage job service.

Runs the full service API — submit a job, poll it, fetch its links,
inspect its engine statistics — with **no infrastructure at all**: the
service is constructed with ``queue="inline"``, so the job executes in
this process through the exact same job records, state machine and
engine path a worker fleet would use (see ``docs/service.md``).

Run with::

    python examples/service_quickstart.py

Point ``REPRO_SERVICE_DIR`` at a persistent directory to keep the job
records and the shared engine cache around — a second invocation then
reports store and index hits on stderr, exactly like a warm worker::

    REPRO_SERVICE_DIR=/tmp/repro-service python examples/service_quickstart.py
    REPRO_SERVICE_DIR=/tmp/repro-service python examples/service_quickstart.py

To run the same job through real queue workers instead, use the CLI
(``docs/service.md`` has the full tour)::

    export REPRO_SERVICE_DIR=/tmp/repro-service
    repro-experiments submit link restaurant
    repro-experiments serve --drain --service-workers 2
    repro-experiments status
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.service import SERVICE_DIR_ENV, LinkageService


def print_stats(stats: dict) -> None:
    """Summarise a job's recorded MatchStats payload on stderr.

    Stats go to stderr so stdout (the links) stays byte-identical
    between cold and warm runs — the same discipline as
    ``examples/quickstart.py``, and what CI greps.
    """
    print(
        f"[job engine] batches={stats['batches']} pairs={stats['pairs']} "
        f"links={stats['links']}",
        file=sys.stderr,
    )
    store = stats.get("store")
    if store is not None:
        print(
            f"[job store] hits={store['hits']} misses={store['misses']} "
            f"writes={store['writes']} index_hits={store['index_hits']} "
            f"index_misses={store['index_misses']} "
            f"probe_hits={store['probe_hits']} "
            f"probe_misses={store['probe_misses']}",
            file=sys.stderr,
        )


def run(root: str) -> None:
    """Submit, wait, fetch — the whole client lifecycle."""
    # queue="inline" is the degraded/zero-infrastructure mode: no
    # queue, no workers, identical records and identical links.
    with LinkageService(root=root, queue="inline") as service:
        record = service.submit("link", dataset="restaurant", seed=0)
        print(f"submitted {record.job_id} ({record.kind})", file=sys.stderr)

        # Inline jobs are terminal on return, but poll anyway — this
        # is the exact loop a client runs against a worker fleet.
        record = service.wait(record.job_id, timeout=300.0)
        print(
            f"job {record.job_id}: {record.state} "
            f"(attempts={record.attempts}, worker={record.worker})",
            file=sys.stderr,
        )
        if record.state != "succeeded":
            raise SystemExit(f"job failed: {record.error}")
        if record.stats is not None:
            print_stats(record.stats)

        links = service.links(record.job_id)
        print(f"Generated {len(links)} links:")
        for link in links[:10]:
            print(f"  {link.uid_a} <-> {link.uid_b}  (score {link.score:.2f})")
        if len(links) > 10:
            print(f"  ... and {len(links) - 10} more")

        # Registry-backed jobs: publish a rule into a versioned lineage,
        # activate it, and submit by reference. The record pins the
        # resolved version (``@v1``) plus content hash, so the job is
        # reproducible even after later activation flips.
        from repro.matching.incremental import dataset_rule

        version = service.registry.publish(
            "demo/restaurants/base", dataset_rule("restaurant")
        )
        service.registry.activate(version.ref)
        by_ref = service.submit(
            "link", dataset="restaurant", seed=0,
            rule="demo/restaurants/base@active",
        )
        print(
            f"[registry] {by_ref.job_id}: {by_ref.state} "
            f"rule={by_ref.spec['rule_ref']} "
            f"hash={by_ref.spec['rule_hash'][:12]}",
            file=sys.stderr,
        )
        assert service.links(by_ref.job_id) == links

        health = service.health()
        print(
            f"[health] mode={health['mode']} jobs={health['jobs']} "
            f"degradations={len(health['degradations'])}",
            file=sys.stderr,
        )


def main() -> None:
    root = os.environ.get(SERVICE_DIR_ENV, "")
    if root:
        run(root)
    else:
        # No service dir configured: everything is throwaway.
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
            run(tmp)


if __name__ == "__main__":
    main()
