"""Extending GenLink with custom distance measures and transformations.

The operator registries are open: anything registered becomes available
to hand-written rules, to the execution engine and to the learner
(random generation samples thresholds from the measure's declared
range; function crossover swaps the new functions like any other).

This example registers

* a ``soundex`` phonetic distance (classic American Soundex), and
* a ``removeVowels`` transformation,

then learns rules over a source pair whose names only agree
phonetically.

Run with::

    python examples/custom_operators.py
"""

from __future__ import annotations

import random
from typing import Sequence

from repro import (
    ComparisonNode,
    DataSource,
    Entity,
    GenLink,
    GenLinkConfig,
    LinkageRule,
    PropertyNode,
    ReferenceLinkSet,
    render_rule,
)
from repro.core.evaluation import evaluate_rule
from repro.distances.base import DistanceMeasure, min_over_pairs
from repro.distances.registry import default_registry as distance_registry
from repro.transforms.base import Transformation
from repro.transforms.registry import default_registry as transform_registry

_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


def soundex(word: str) -> str:
    """American Soundex code, e.g. soundex('Robert') == 'R163'."""
    word = "".join(c for c in word.lower() if c.isalpha())
    if not word:
        return "0000"
    first = word[0].upper()
    digits = []
    previous = _SOUNDEX_CODES.get(word[0], "")
    for char in word[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if code and code != previous:
            digits.append(code)
        if char not in "hw":
            previous = code
    return (first + "".join(digits) + "000")[:4]


class SoundexDistance(DistanceMeasure):
    """0 when two values share a Soundex code, 1 otherwise."""

    name = "soundex"
    threshold_range = (0.1, 0.9)

    def evaluate(self, values_a: Sequence[str], values_b: Sequence[str]) -> float:
        return min_over_pairs(
            values_a,
            values_b,
            lambda x, y: 0.0 if soundex(x) == soundex(y) else 1.0,
        )


class RemoveVowels(Transformation):
    """Strip vowels — a crude but effective phonetic normaliser."""

    name = "removeVowels"
    arity = 1

    def apply(self, inputs):
        return tuple(
            "".join(c for c in value if c.lower() not in "aeiou")
            for value in inputs[0]
        )


def build_task() -> tuple[DataSource, DataSource, ReferenceLinkSet]:
    """Names transcribed by different people: 'Smith' vs 'Smyth'."""
    spellings = [
        ("Smith", "Smyth"), ("Robert", "Rupert"), ("Catherine", "Kathryn"),
        ("Meyer", "Maier"), ("Peterson", "Pedersen"), ("Schmidt", "Schmitt"),
        ("Nielsen", "Nilsson"), ("Johansen", "Johnson"), ("Fischer", "Fisher"),
        ("Krueger", "Kruger"), ("Schneider", "Snyder"), ("Walker", "Wolker"),
    ]
    source_a = DataSource("registry_a")
    source_b = DataSource("registry_b")
    positive = []
    for i, (left, right) in enumerate(spellings):
        source_a.add(Entity(f"a{i}", {"surname": left}))
        source_b.add(Entity(f"b{i}", {"surname": right}))
        positive.append((f"a{i}", f"b{i}"))
    negative = [(f"a{i}", f"b{(i + 4) % len(spellings)}") for i in range(len(spellings))]
    return source_a, source_b, ReferenceLinkSet(positive, negative)


def main() -> None:
    # Register the custom operators; they are now first-class citizens.
    distance_registry().register(SoundexDistance())
    transform_registry().register(RemoveVowels())

    source_a, source_b, links = build_task()

    # Hand-written rule using the custom measure.
    manual = LinkageRule(
        ComparisonNode("soundex", 0.5, PropertyNode("surname"), PropertyNode("surname"))
    )
    print("Hand-written rule with the custom measure:")
    print(render_rule(manual))
    entity_a = source_a.get("a0")
    entity_b = source_b.get("b0")
    print(
        f"  score({entity_a.values('surname')[0]}, "
        f"{entity_b.values('surname')[0]}) = "
        f"{evaluate_rule(manual.root, entity_a, entity_b):.2f}"
    )
    print()

    # The learner can now discover rules using soundex/removeVowels.
    config = GenLinkConfig(population_size=60, max_iterations=20)
    result = GenLink(config).learn(source_a, source_b, links, rng=random.Random(5))
    last = result.history[-1]
    print(f"Learned rule (train F1 {last.train_f_measure:.3f}):")
    print(render_rule(result.best_rule))


if __name__ == "__main__":
    main()
