"""Tests for fitness measures: confusion counts, F1, MCC, parsimony."""

import math

import numpy as np
import pytest

from repro.core.evaluation import PairEvaluator
from repro.core.fitness import (
    ConfusionCounts,
    FitnessFunction,
    confusion_counts,
    f_measure,
    matthews_correlation,
)
from repro.core.nodes import ComparisonNode, PropertyNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity


class TestConfusionCounts:
    def test_from_vectors(self):
        counts = confusion_counts(
            [True, True, False, False], [True, False, True, False]
        )
        assert (counts.tp, counts.fp, counts.fn, counts.tn) == (1, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts([True], [True, False])

    def test_precision_recall(self):
        counts = ConfusionCounts(tp=8, tn=5, fp=2, fn=4)
        assert counts.precision() == pytest.approx(0.8)
        assert counts.recall() == pytest.approx(8 / 12)

    def test_f_measure_harmonic_mean(self):
        counts = ConfusionCounts(tp=8, tn=5, fp=2, fn=4)
        p, r = counts.precision(), counts.recall()
        assert counts.f_measure() == pytest.approx(2 * p * r / (p + r))

    def test_degenerate_zero(self):
        counts = ConfusionCounts(tp=0, tn=10, fp=0, fn=0)
        assert counts.precision() == 0.0
        assert counts.recall() == 0.0
        assert counts.f_measure() == 0.0

    def test_accuracy(self):
        counts = ConfusionCounts(tp=3, tn=5, fp=1, fn=1)
        assert counts.accuracy() == pytest.approx(0.8)


class TestMCC:
    def test_perfect_classifier(self):
        assert matthews_correlation([True, False], [True, False]) == 1.0

    def test_inverted_classifier(self):
        assert matthews_correlation([False, True], [True, False]) == -1.0

    def test_degenerate_all_positive_predictions(self):
        assert matthews_correlation([True, True], [True, False]) == 0.0

    def test_known_value(self):
        counts = ConfusionCounts(tp=90, tn=80, fp=10, fn=20)
        expected = (90 * 80 - 10 * 20) / math.sqrt(100 * 110 * 90 * 100)
        assert counts.mcc() == pytest.approx(expected)

    def test_mcc_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            predictions = rng.random(20) > 0.5
            labels = rng.random(20) > 0.5
            assert -1.0 <= matthews_correlation(predictions, labels) <= 1.0


class TestFitnessFunction:
    def _setup(self):
        pairs = [
            (Entity("a1", {"x": "foo"}), Entity("b1", {"x": "foo"})),
            (Entity("a2", {"x": "bar"}), Entity("b2", {"x": "bar"})),
            (Entity("a3", {"x": "foo"}), Entity("b3", {"x": "qux"})),
        ]
        labels = [True, True, False]
        return PairEvaluator(pairs), labels

    def _rule(self) -> LinkageRule:
        return LinkageRule(
            ComparisonNode("levenshtein", 1.0, PropertyNode("x"), PropertyNode("x"))
        )

    def test_perfect_rule_mcc(self):
        evaluator, labels = self._setup()
        fitness = FitnessFunction(evaluator, labels)
        assert fitness.mcc(self._rule()) == 1.0

    def test_parsimony_penalty_subtracted(self):
        evaluator, labels = self._setup()
        fitness = FitnessFunction(evaluator, labels, parsimony_weight=0.05)
        # similarity mode: 1 comparison, 0 aggregations -> penalty 0.05
        assert fitness.fitness(self._rule()) == pytest.approx(1.0 - 0.05)

    def test_parsimony_all_mode_counts_every_node(self):
        evaluator, labels = self._setup()
        fitness = FitnessFunction(
            evaluator, labels, parsimony_weight=0.05, parsimony_mode="all"
        )
        # comparison + 2 properties = 3 operators
        assert fitness.fitness(self._rule()) == pytest.approx(1.0 - 0.15)

    def test_invalid_parsimony_mode(self):
        evaluator, labels = self._setup()
        with pytest.raises(ValueError):
            FitnessFunction(evaluator, labels, parsimony_mode="bogus")

    def test_label_count_mismatch(self):
        evaluator, _ = self._setup()
        with pytest.raises(ValueError):
            FitnessFunction(evaluator, [True])

    def test_f_measure(self):
        evaluator, labels = self._setup()
        fitness = FitnessFunction(evaluator, labels)
        assert fitness.f_measure(self._rule()) == 1.0

    def test_f_measure_and_mcc_agree_on_perfection(self):
        evaluator, labels = self._setup()
        fitness = FitnessFunction(evaluator, labels)
        rule = self._rule()
        assert fitness.f_measure(rule) == fitness.mcc(rule) == 1.0
