"""Tests for the repro-experiments command line interface."""

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def smoke_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")


class TestCli:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("cora", "restaurant", "nyt", "linkedmdb"):
            assert name in output

    def test_curve_command(self, capsys):
        assert main(["curve", "restaurant"]) == 0
        output = capsys.readouterr().out
        assert "Train. F1" in output
        assert "Iter." in output

    def test_curve_with_baseline(self, capsys):
        assert main(["curve", "restaurant", "--baseline"]) == 0
        output = capsys.readouterr().out
        assert "Carvalho" in output

    def test_curve_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["curve", "unknown_dataset"])

    def test_representations_command(self, capsys):
        assert main(["representations", "--datasets", "restaurant"]) == 0
        output = capsys.readouterr().out
        for column in ("Boolean", "Linear", "Nonlin.", "Full"):
            assert column in output

    def test_seeding_command(self, capsys):
        assert main(["seeding", "--datasets", "restaurant"]) == 0
        output = capsys.readouterr().out
        assert "Random" in output and "Seeded" in output

    def test_crossover_command(self, capsys):
        assert main(["crossover", "--datasets", "restaurant"]) == 0
        output = capsys.readouterr().out
        assert "Subtree C." in output

    def test_seed_flag(self, capsys):
        assert main(["--seed", "3", "datasets"]) == 0

    def test_scale_banner(self, capsys):
        main(["datasets"])
        assert "[scale: smoke]" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLearnCommand:
    def test_learn_prints_rule_and_scores(self, capsys):
        assert main(["learn", "restaurant"]) == 0
        output = capsys.readouterr().out
        assert "learned rule" in output
        assert "train F1" in output

    def test_learn_with_prune(self, capsys):
        assert main(["learn", "restaurant", "--prune"]) == 0
        output = capsys.readouterr().out
        assert "pruned rule" in output
        assert "mcc" in output

    def test_learn_with_chart(self, capsys):
        assert main(["learn", "restaurant", "--chart"]) == 0
        output = capsys.readouterr().out
        assert "train F1" in output
        assert "+---" in output  # the chart's x axis

    def test_learn_with_silk_export(self, capsys):
        assert main(["learn", "restaurant", "--silk"]) == 0
        output = capsys.readouterr().out
        assert "<Silk>" in output
        assert "<LinkageRule>" in output

    def test_learn_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["learn", "nope"])

    def test_learn_silk_output_reimports(self, capsys):
        from repro.silk import parse_silk_config

        assert main(["learn", "restaurant", "--silk"]) == 0
        output = capsys.readouterr().out
        document = output[output.index("<Silk>"):]
        config = parse_silk_config(document)
        assert config.interlink("restaurant").rule is not None

    def test_learn_with_execute(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BLOCKER", "auto")
        assert main(["learn", "restaurant", "--execute"]) == 0
        output = capsys.readouterr().out
        assert "executed over the full sources" in output
        assert "precision=" in output

    def test_blocker_flag_sets_strategy_and_banner(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BLOCKER", "")
        assert main(["--blocker", "multiblock", "learn", "restaurant",
                     "--execute"]) == 0
        output = capsys.readouterr().out
        assert "[blocker: multiblock]" in output
        assert "executed over the full sources" in output

    def test_invalid_blocker_rejected(self):
        with pytest.raises(SystemExit):
            main(["--blocker", "bogus", "learn", "restaurant"])

    def test_cache_info_reports_both_tiers(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CACHE", str(tmp_path))
        assert main(["cache", "info"]) == 0
        output = capsys.readouterr().out
        assert "columns         : 0" in output
        assert "indexes         : 0" in output
