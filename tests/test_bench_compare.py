"""The CI bench-regression gate (``benchmarks/compare_bench.py``).

The gate runs standalone inside the ``bench-artifact`` workflow job, so
its behaviour — what fails, what is merely reported — is pinned here in
tier 1: a >threshold median slowdown fails, added/removed benchmarks
and speedups never do, and the delta table always prints every
benchmark with its ratio.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from compare_bench import (  # noqa: E402  (path set up above)
    compare,
    format_table,
    load_medians,
    main,
)


def _bench_file(tmp_path: Path, name: str, medians: dict[str, float]) -> str:
    payload = {
        "benchmarks": [
            {"name": bench, "stats": {"median": median}}
            for bench, median in medians.items()
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_load_medians(tmp_path):
    path = _bench_file(tmp_path, "a.json", {"bench_x": 0.5, "bench_y": 0.001})
    assert load_medians(path) == {"bench_x": 0.5, "bench_y": 0.001}
    empty = tmp_path / "empty.json"
    empty.write_text("{}")
    assert load_medians(str(empty)) == {}


def test_within_threshold_passes(tmp_path, capsys):
    baseline = _bench_file(tmp_path, "base.json", {"a": 1.0, "b": 0.010})
    current = _bench_file(tmp_path, "cur.json", {"a": 1.4, "b": 0.005})
    assert main([baseline, current, "--threshold", "1.5"]) == 0
    out = capsys.readouterr().out
    assert "1.40x" in out and "0.50x" in out
    assert "REGRESSION" not in out


def test_regression_fails_and_prints_delta_table(tmp_path, capsys):
    baseline = _bench_file(tmp_path, "base.json", {"a": 0.010, "b": 0.010})
    current = _bench_file(tmp_path, "cur.json", {"a": 0.016, "b": 0.010})
    assert main([baseline, current, "--threshold", "1.5"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "1.60x" in out  # the offender's ratio is in the table
    assert "1.00x" in out  # the healthy benchmark is listed too


def test_added_and_removed_benchmarks_never_fail(tmp_path, capsys):
    baseline = _bench_file(tmp_path, "base.json", {"kept": 0.01, "gone": 0.01})
    current = _bench_file(tmp_path, "cur.json", {"kept": 0.01, "fresh": 9.0})
    assert main([baseline, current]) == 0
    out = capsys.readouterr().out
    assert "new" in out and "removed" in out


def test_zero_baseline_median_counts_as_regression():
    rows, regressions = compare({"a": 0.0}, {"a": 0.001}, threshold=1.5)
    assert regressions == ["a"]
    assert any("inf" in cell for cell in rows[0])


def test_table_lists_every_benchmark():
    rows, __ = compare(
        {"a": 1.0, "b": 2.0}, {"b": 2.0, "c": 3.0}, threshold=1.5
    )
    table = format_table(rows)
    assert all(name in table for name in ("a", "b", "c"))
