"""Tests for the experiment harness."""

import os

import pytest

from repro.core.genlink import GenLinkConfig
from repro.datasets import load_dataset
from repro.experiments.aggregate import MeanStd, mean_std
from repro.experiments.protocol import run_genlink_cross_validation
from repro.experiments.scale import BENCH, PAPER, SMOKE, current_scale
from repro.experiments.tables import format_table, format_value


class TestAggregate:
    def test_mean_std(self):
        agg = mean_std([1.0, 2.0, 3.0])
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx((2 / 3) ** 0.5)
        assert agg.count == 3

    def test_single_value(self):
        agg = mean_std([5.0])
        assert agg.mean == 5.0
        assert agg.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_format(self):
        assert MeanStd(0.9686, 0.0034, 10).format() == "0.969 (0.003)"
        assert MeanStd(1.25, 0.5, 2).format(1) == "1.2 (0.5)"


class TestScale:
    def test_presets(self):
        assert SMOKE.population_size < BENCH.population_size < PAPER.population_size
        assert PAPER.population_size == 500  # Table 4
        assert PAPER.max_iterations == 50
        assert PAPER.runs == 10

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_default_is_bench(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "bench"

    def test_iteration_cap(self):
        assert SMOKE.iteration_cap(100) == SMOKE.max_iterations


class TestTables:
    def test_format_value(self):
        assert format_value(None) == ""
        assert format_value(0.5) == "0.500"
        assert format_value(3) == "3"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        table = format_table(
            ["Name", "Score"], [["cora", 0.97], ["nyt", 0.91]], title="T"
        )
        lines = table.split("\n")
        assert lines[0] == "T"
        assert "Name" in lines[1]
        assert all("  " in line for line in lines[3:])

    def test_empty_rows(self):
        table = format_table(["A"], [])
        assert "A" in table


class TestProtocol:
    def test_cross_validation_aggregates(self):
        dataset = load_dataset("restaurant", seed=2, scale=0.3)
        config = GenLinkConfig(population_size=20, max_iterations=3)
        result = run_genlink_cross_validation(
            dataset, config, runs=2, report_iterations=(0, 3), seed=1
        )
        assert result.dataset == "restaurant"
        assert result.runs == 2
        assert [row.iteration for row in result.rows] == [0, 3]
        for row in result.rows:
            assert 0.0 <= row.train_f_measure.mean <= 1.0
            assert 0.0 <= row.validation_f_measure.mean <= 1.0
            assert row.seconds.mean >= 0.0

    def test_report_iterations_clamped(self):
        dataset = load_dataset("restaurant", seed=2, scale=0.3)
        config = GenLinkConfig(population_size=20, max_iterations=2)
        result = run_genlink_cross_validation(
            dataset, config, runs=1, report_iterations=(0, 50), seed=1
        )
        assert result.rows[-1].iteration == 2

    def test_row_at(self):
        dataset = load_dataset("restaurant", seed=2, scale=0.3)
        config = GenLinkConfig(population_size=20, max_iterations=2)
        result = run_genlink_cross_validation(
            dataset, config, runs=1, report_iterations=(0, 2), seed=1
        )
        assert result.row_at(0).iteration == 0
        with pytest.raises(KeyError):
            result.row_at(99)

    def test_requires_runs(self):
        dataset = load_dataset("restaurant", seed=2, scale=0.3)
        with pytest.raises(ValueError):
            run_genlink_cross_validation(
                dataset, GenLinkConfig(), runs=0, report_iterations=(0,)
            )


class TestDriversSmoke:
    """End-to-end driver runs at the smallest scale."""

    @pytest.fixture(autouse=True)
    def smoke_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")

    def test_dataset_statistics(self):
        from repro.experiments.drivers import dataset_statistics

        rows = dataset_statistics()
        assert len(rows) == 6

    def test_learning_curve(self):
        from repro.experiments.drivers import learning_curve

        result = learning_curve("restaurant", seed=3)
        assert result.rows[-1].train_f_measure.mean > 0.5

    def test_seeding_comparison(self):
        from repro.experiments.drivers import seeding_comparison

        table = seeding_comparison(("restaurant",), seed=3)
        assert set(table["restaurant"]) == {"random", "seeded"}

    def test_cli_datasets(self, capsys):
        from repro.experiments.cli import main

        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "cora" in output
