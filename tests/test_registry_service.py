"""Registry-backed jobs end to end: reference pinning, byte-parity,
terminal resolution failures, the no-silent-zero-score gate, and the
deprecation shims of the consolidated submission surface."""

from __future__ import annotations

import warnings

import pytest

from repro.datasets import load_dataset
from repro.matching.engine import MatchingEngine
from repro.matching.incremental import dataset_rule
from repro.registry import RuleRef
from repro.service import LinkageService, run_worker

DATASET = "restaurant"
SCALE = 0.3
LINEAGE = "acme/restaurants/base"


def direct_links(rule=None, seed: int = 0, scale: float = SCALE):
    dataset = load_dataset(DATASET, seed=seed, scale=scale)
    engine = MatchingEngine()
    try:
        return engine.execute(
            rule or dataset_rule(DATASET), dataset.source_a, dataset.source_b
        )
    finally:
        engine.close()


@pytest.fixture()
def service(tmp_path):
    with LinkageService(root=tmp_path / "svc", queue="inline") as svc:
        yield svc


def _publish_active(service, rule=None, lineage: str = LINEAGE):
    version = service.registry.publish(
        lineage, rule or dataset_rule(DATASET)
    )
    service.registry.activate(version.ref)
    return version


# -- reference resolution and pinning ----------------------------------------


def test_job_by_active_ref_pins_version_and_matches_direct(service):
    version = _publish_active(service)
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=f"{LINEAGE}@active"
    )
    assert record.state == "succeeded"
    # @active was resolved exactly once, at submission: the record
    # carries the pinned version and its content hash.
    assert record.spec["rule_ref"] == f"{LINEAGE}@v1"
    assert record.spec["rule_hash"] == version.rule_hash
    assert record.result["rule_ref"] == f"{LINEAGE}@v1"
    assert service.links(record.job_id) == direct_links()


def test_pinned_job_reproduces_after_activation_flip(service):
    _publish_active(service)
    first = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=f"{LINEAGE}@active"
    )
    original = service.links(first.job_id)

    # Publish and activate a different rule; the recorded pinned ref
    # must reproduce the original links regardless.
    from repro.core.nodes import ComparisonNode, PropertyNode
    from repro.core.rule import LinkageRule

    other = service.registry.publish(
        LINEAGE,
        LinkageRule(
            ComparisonNode(
                "equality", 0.0, PropertyNode("name"), PropertyNode("name")
            )
        ),
    )
    service.registry.activate(other.ref)

    replay = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=first.spec["rule_ref"]
    )
    assert replay.state == "succeeded"
    assert service.links(replay.job_id) == original

    # ...while a fresh @active submission follows the flip.
    flipped = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=f"{LINEAGE}@active"
    )
    assert flipped.spec["rule_ref"] == f"{LINEAGE}@v2"


def test_rule_ref_accepts_ruleref_values(service):
    _publish_active(service)
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE,
        rule=RuleRef.parse(f"{LINEAGE}@v1"),
    )
    assert record.state == "succeeded"
    assert record.spec["rule_ref"] == f"{LINEAGE}@v1"


def test_unresolvable_ref_fails_terminally_without_running(service):
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule="acme/nowhere/rule@active"
    )
    assert record.state == "failed"
    assert record.error.startswith("registry:")
    # Never ran: resolution failed before any attempt started.
    assert record.attempts == 0
    assert record.spec["rule_ref"] == "acme/nowhere/rule@active"
    with pytest.raises(KeyError):
        service.links(record.job_id)


def test_active_without_activation_fails_terminally(service):
    service.registry.publish(LINEAGE, dataset_rule(DATASET))
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=f"{LINEAGE}@active"
    )
    assert record.state == "failed" and record.attempts == 0
    assert "no active version" in record.error


def test_malformed_ref_raises_instead_of_failing_job(service):
    with pytest.raises(ValueError):
        service.submit("link", dataset=DATASET, rule="not-a-ref")


def test_worker_registry_failure_is_terminal_never_retried(tmp_path):
    service = LinkageService(root=tmp_path / "svc", queue="file")
    version = _publish_active(service)
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=f"{LINEAGE}@active"
    )
    assert record.state == "queued"
    # Break the registry between submission and execution: the pinned
    # version disappears, so the worker must fail the job on its first
    # attempt — attempts budget notwithstanding.
    import shutil

    shutil.rmtree(service.rules_dir)
    run_worker(tmp_path / "svc", drain=True, max_jobs=3)
    done = service.status(record.job_id)
    assert done.state == "failed"
    assert done.attempts == 1 and done.max_attempts > 1
    assert done.error.startswith("registry:")
    service.close()


def test_worker_detects_submission_hash_mismatch(tmp_path):
    service = LinkageService(root=tmp_path / "svc", queue="file")
    _publish_active(service)
    # A spec whose recorded hash doesn't match the stored version: the
    # worker must refuse to run a version whose content drifted from
    # what the submitter pinned.
    record = service.store.create(
        "link",
        {
            "dataset": DATASET,
            "seed": 0,
            "scale": SCALE,
            "rule_ref": f"{LINEAGE}@v1",
            "rule_hash": "0" * 64,
        },
        max_attempts=3,
    )
    service.queue.submit(record.job_id)
    run_worker(tmp_path / "svc", drain=True, max_jobs=3)
    done = service.status(record.job_id)
    assert done.state == "failed" and done.attempts == 1
    assert "does not match" in done.error
    service.close()


# -- the no-silent-zero-score gate -------------------------------------------


def _gap_rule():
    """Cora's gate rule reads ``title`` — absent from restaurant."""
    return dataset_rule("cora")


def test_direct_engine_scores_gap_rule_silently_to_zero():
    """The failure mode the gate exists for: executed directly, a rule
    whose property vanished just produces zero links — nothing fails."""
    assert direct_links(rule=_gap_rule()) == []


def test_service_refuses_gap_rule_with_structured_report(service):
    from repro.core.serialization import rule_to_dict

    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule=rule_to_dict(_gap_rule())
    )
    assert record.state == "failed"
    assert record.error.startswith("schema gap:")
    report = record.result["gap_report"]
    assert report["ok"] is False
    gaps = report["gaps"]
    # Every starved node is named, with its path and a suggestion.
    assert {gap["property"] for gap in gaps} == {"title"}
    assert {gap["side"] for gap in gaps} == {"source", "target"}
    assert all(gap["path"].startswith("root.") for gap in gaps)
    assert all("comparison" in gap and "suggestion" in gap for gap in gaps)


def test_registry_gap_rule_fails_with_ref_in_report(service):
    version = service.registry.publish("acme/cora/base", _gap_rule())
    service.registry.activate(version.ref)
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule="acme/cora/base@active"
    )
    assert record.state == "failed"
    assert record.result["gap_report"]["ref"] == "acme/cora/base@v1"


# -- learn jobs publish into lineages ----------------------------------------


def test_learn_job_publishes_with_provenance(service):
    record = service.submit(
        "learn",
        dataset=DATASET,
        scale=0.2,
        population_size=4,
        iterations=1,
        publish="acme/restaurants/learned",
    )
    assert record.state == "succeeded"
    published = record.result["published"]
    assert published["ref"] == "acme/restaurants/learned@v1"
    version = service.registry.resolve(published["ref"])
    assert version.rule_hash == published["rule_hash"]
    provenance = version.provenance
    assert provenance["dataset"] == DATASET
    assert provenance["job_id"] == record.job_id
    assert set(provenance["source_fingerprints"]) == {"a", "b"}
    assert "validation_f_measure" in provenance

    # The published rule is servable: activate and run a job from it.
    service.registry.activate(version.ref)
    linked = service.submit(
        "link", dataset=DATASET, scale=0.2,
        rule="acme/restaurants/learned@active",
    )
    assert linked.state == "succeeded"


def test_publish_rejects_pinned_lineage(service):
    with pytest.raises(ValueError):
        service.submit(
            "learn", dataset=DATASET, publish="acme/restaurants/learned@v2"
        )


# -- consolidated submission surface and shims -------------------------------


def test_submit_validates_keyword_fields(service):
    with pytest.raises(ValueError):
        service.submit("link")  # no dataset
    with pytest.raises(ValueError):
        service.submit("delta", dataset=DATASET)  # no parent
    with pytest.raises(ValueError):
        service.submit("delta", parent="job-x", rule="a/b/c@v1")
    with pytest.raises(ValueError):
        service.submit("learn", dataset=DATASET, rule="a/b/c@v1")
    with pytest.raises(ValueError):
        service.submit("link", dataset=DATASET, publish="a/b/c")
    with pytest.raises(ValueError):
        service.submit("frobnicate", dataset=DATASET)


def test_submit_link_shim_warns_and_works(service):
    with pytest.warns(DeprecationWarning, match="submit_link"):
        record = service.submit_link(DATASET, seed=0, scale=SCALE)
    assert record.state == "succeeded"
    assert service.links(record.job_id) == direct_links()


def test_submit_delta_shim_warns_and_works(service):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        parent = service.submit_link(DATASET, seed=0, scale=SCALE)
    with pytest.warns(DeprecationWarning, match="submit_delta"):
        record = service.submit_delta(
            parent.job_id, seed=1, upserts=2, deletes=1
        )
    assert record.state == "succeeded"
    assert record.result["parent"] == parent.job_id


def test_submit_spec_dict_warns_and_works(service):
    with pytest.warns(DeprecationWarning, match="spec dict"):
        record = service.submit(
            "link", {"dataset": DATASET, "seed": 0, "scale": SCALE}
        )
    assert record.state == "succeeded"
    assert service.links(record.job_id) == direct_links()


def test_new_surface_emits_no_deprecation_warning(service):
    _publish_active(service)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        record = service.submit(
            "link", dataset=DATASET, scale=SCALE, rule=f"{LINEAGE}@active"
        )
        delta = service.submit("delta", parent=record.job_id, upserts=1)
    assert record.state == "succeeded" and delta.state == "succeeded"


# -- health ------------------------------------------------------------------


def test_health_reports_registry_degradations(service):
    record = service.submit(
        "link", dataset=DATASET, scale=SCALE, rule="acme/nowhere/rule@v1"
    )
    health = service.health()
    degradations = health["degradations"]
    assert isinstance(degradations, list)
    assert all(
        set(entry) == {"component", "scope", "reason"}
        for entry in degradations
    )
    registry_entries = [
        entry for entry in degradations if entry["component"] == "registry"
    ]
    assert len(registry_entries) == 1
    assert registry_entries[0]["scope"] == record.job_id
    assert registry_entries[0]["reason"].startswith("registry:")


def test_health_reports_queue_degradation_under_same_schema(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_QUEUE", raising=False)
    monkeypatch.setenv("REPRO_REDIS_URL", "redis://nowhere.invalid:1/0")
    with LinkageService(root=tmp_path / "svc", queue="redis") as svc:
        health = svc.health()
    queue_entries = [
        entry
        for entry in health["degradations"]
        if entry["component"] == "queue"
    ]
    assert len(queue_entries) == 1
    assert queue_entries[0]["scope"] == "service"
    assert queue_entries[0]["reason"] == svc.degraded_reason
