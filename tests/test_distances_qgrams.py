"""Tests for q-gram and soft-Jaccard distances (repro.distances.qgrams)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.qgrams import (
    QGramsDistance,
    SoftJaccardDistance,
    qgrams,
)

_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=0,
    max_size=16,
)


class TestQGramsFunction:
    def test_padded_grams(self):
        assert qgrams("ab") == {"^a", "ab", "b$"}

    def test_short_string_is_single_gram(self):
        assert qgrams("", q=2) == {"^$"}
        assert qgrams("x", q=3) == {"^x$"}

    def test_q3(self):
        assert qgrams("abc", q=3) == {"^ab", "abc", "bc$"}

    def test_never_empty(self):
        for value in ("", "a", "ab", "abc"):
            assert qgrams(value)


class TestQGramsDistance:
    def test_identical_strings_distance_zero(self):
        measure = QGramsDistance()
        assert measure.evaluate(("berlin",), ("berlin",)) == 0.0

    def test_case_insensitive(self):
        measure = QGramsDistance()
        assert measure.evaluate(("Berlin",), ("BERLIN",)) == 0.0

    def test_single_edit_small_distance(self):
        measure = QGramsDistance()
        d = measure.evaluate(("berlin",), ("berlim",))
        assert 0.0 < d < 0.6

    def test_disjoint_strings_distance_one(self):
        measure = QGramsDistance()
        assert measure.evaluate(("aaaa",), ("zzzz",)) == 1.0

    def test_empty_side_is_infinite(self):
        measure = QGramsDistance()
        assert measure.evaluate((), ("x",)) == INFINITE_DISTANCE

    def test_min_over_value_pairs(self):
        measure = QGramsDistance()
        assert measure.evaluate(("zzzz", "berlin"), ("berlin",)) == 0.0

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError, match="q must be"):
            QGramsDistance(q=0)

    def test_registered(self):
        from repro.distances.registry import get_measure

        assert isinstance(get_measure("qgrams"), QGramsDistance)


class TestSoftJaccardDistance:
    def test_identical_token_sets_distance_zero(self):
        measure = SoftJaccardDistance()
        assert measure.evaluate(("new york",), ("york new",)) == 0.0

    def test_typo_within_budget_still_covered(self):
        measure = SoftJaccardDistance()
        # one-edit typo in one token out of two
        d = measure.evaluate(("new yorc",), ("new york",))
        assert d == 0.0

    def test_typo_beyond_budget_counts(self):
        measure = SoftJaccardDistance(max_token_distance=0)
        d = measure.evaluate(("new yorc",), ("new york",))
        assert d == pytest.approx(0.5)

    def test_disjoint_tokens_distance_one(self):
        measure = SoftJaccardDistance()
        assert measure.evaluate(("alpha",), ("omega",)) == 1.0

    def test_empty_side_is_infinite(self):
        measure = SoftJaccardDistance()
        assert measure.evaluate(("",), ("x",)) == INFINITE_DISTANCE

    def test_negative_budget_raises(self):
        with pytest.raises(ValueError, match="max_token_distance"):
            SoftJaccardDistance(max_token_distance=-1)

    def test_softer_than_exact_jaccard(self):
        """With typos present, softJaccard is never farther than jaccard
        over the same tokens."""
        from repro.distances.jaccard import jaccard_distance

        soft = SoftJaccardDistance()
        values_a, values_b = ("new yorc city",), ("new york city",)
        tokens_a = values_a[0].split()
        tokens_b = values_b[0].split()
        assert soft.evaluate(values_a, values_b) <= jaccard_distance(
            tokens_a, tokens_b
        )

    def test_registered(self):
        from repro.distances.registry import get_measure

        assert isinstance(get_measure("softJaccard"), SoftJaccardDistance)


# -- property-based -----------------------------------------------------------


@given(a=_words, b=_words)
@settings(max_examples=80, deadline=None)
def test_qgrams_distance_symmetric_and_bounded(a, b):
    measure = QGramsDistance()
    d_ab = measure.evaluate((a,), (b,))
    d_ba = measure.evaluate((b,), (a,))
    assert d_ab == d_ba
    assert 0.0 <= d_ab <= 1.0
    if a == b:
        assert d_ab == 0.0


@given(a=_words.filter(bool), b=_words.filter(bool))
@settings(max_examples=60, deadline=None)
def test_soft_jaccard_symmetric_and_bounded(a, b):
    measure = SoftJaccardDistance()
    d_ab = measure.evaluate((a,), (b,))
    d_ba = measure.evaluate((b,), (a,))
    assert d_ab == pytest.approx(d_ba)
    assert 0.0 <= d_ab <= 1.0


@given(word=_words.filter(lambda w: len(w) >= 3))
@settings(max_examples=60, deadline=None)
def test_single_substitution_keeps_qgrams_distance_under_one(word):
    """One substituted character always leaves shared padded bigrams
    for strings of length >= 3 (the MultiBlock q-gram index relies on
    this in practice)."""
    mutated = "z" + word[1:]
    measure = QGramsDistance()
    if mutated != word:
        assert measure.evaluate((word,), (mutated,)) < 1.0
