"""Crash-consistency gates: SIGKILL a worker mid-job, assert recovery.

These tests run real worker subprocesses with a ``REPRO_FAULTS`` crash
rule in their environment, so the kill is a genuine ``SIGKILL`` — no
``finally`` blocks, no atexit, exactly what a power cut or OOM kill
leaves behind. The gates:

- a worker killed **between claim and execution** leaves a claimed
  ticket plus a running record; the reaper requeues it after the lease
  and a healthy worker converges to links byte-identical to an
  undisturbed direct run;
- a worker killed **inside a store write** additionally leaves the
  persistent cache mid-publication; the atomic-rename discipline means
  the recovery run never reads torn bytes and still converges exactly;
- a seeded **chaos soak** (two workers, probabilistic store faults and
  claim delays) drains every job exactly once with byte-identical
  links and an empty queue — zero lost, zero duplicated.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.service import JobStore, LinkageService, run_worker
from tests.test_service import DATASET, SCALE, direct_links

SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Lease used throughout: long enough for heartbeats to be orderly,
#: short enough that recovery tests stay fast.
LEASE = 0.5


def _spawn_worker(
    root,
    worker_id: str,
    cache_dir: str,
    fault_plan: str | None = None,
    fault_seed: int = 0,
) -> subprocess.Popen:
    """Start a draining worker in a fresh interpreter. The fault plan
    travels via the environment, so only the subprocess injects."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_FAULTS_SEED", None)
    if fault_plan is not None:
        env["REPRO_FAULTS"] = fault_plan
        env["REPRO_FAULTS_SEED"] = str(fault_seed)
    code = (
        "import sys\n"
        "from repro.service.worker import run_worker\n"
        "run_worker(sys.argv[1], worker_id=sys.argv[2],\n"
        "           cache_dir=sys.argv[3], drain=True,\n"
        f"           lease={LEASE}, poll_interval=0.05,\n"
        "           backoff_base=0.05)\n"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code, str(root), worker_id, cache_dir],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _recover_and_drain(service) -> None:
    """Run a healthy in-process worker until the queue is empty (the
    reaper inside the worker loop requeues the crashed attempt)."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        run_worker(
            service.root,
            worker_id="recovery",
            cache_dir=service.cache_dir,
            drain=True,
            lease=LEASE,
            poll_interval=0.05,
            backoff_base=0.05,
        )
        # Drain mode exits while a requeued ticket is still backing
        # off; loop until the store agrees everything is terminal.
        states = service.store.state_counts()
        if states["queued"] == 0 and states["running"] == 0:
            return
        time.sleep(0.1)
    raise AssertionError("recovery did not converge within 60s")


def test_sigkill_before_execution_recovers_to_identical_links(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, scale=SCALE)

    # The worker.execute seam sits after the queued->running transition:
    # the kill lands with the claim taken and the record running.
    proc = _spawn_worker(
        tmp_path, "doomed", service.cache_dir,
        fault_plan="worker.execute:crash@n=1",
    )
    proc.wait(timeout=120)
    assert proc.returncode == -signal.SIGKILL

    crashed = service.status(record.job_id)
    assert crashed.state == "running" and crashed.worker == "doomed"
    assert len(service.queue.claimed()) == 1

    time.sleep(LEASE + 0.3)  # let the dead worker's lease expire
    _recover_and_drain(service)

    done = service.status(record.job_id)
    assert done.state == "succeeded"
    assert done.attempts == 2 and done.worker == "recovery"
    assert done.error is None
    assert service.links(record.job_id) == direct_links()
    assert service.queue.depth() == 0 and not service.queue.claimed()


def test_sigkill_inside_a_store_write_recovers_to_identical_links(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, scale=SCALE)

    # The store.write seam fires with the temp file open and unpublished
    # — the kill leaves the persistent cache mid-write.
    proc = _spawn_worker(
        tmp_path, "doomed", service.cache_dir,
        fault_plan="store.write:crash@n=1",
    )
    proc.wait(timeout=120)
    assert proc.returncode == -signal.SIGKILL

    time.sleep(LEASE + 0.3)
    _recover_and_drain(service)

    done = service.status(record.job_id)
    assert done.state == "succeeded" and done.attempts == 2
    assert service.links(record.job_id) == direct_links()
    # The recovery run read the half-written cache dir without
    # inheriting corruption: its own links prove semantic recovery, and
    # a warm follow-up job over the published blobs stays identical.
    follow_up = service.submit("link", dataset=DATASET, scale=SCALE)
    run_worker(
        tmp_path, worker_id="warm", cache_dir=service.cache_dir,
        drain=True, lease=LEASE, poll_interval=0.05,
    )
    assert service.links(follow_up.job_id) == direct_links()


def test_seeded_chaos_soak_drains_without_loss_or_duplication(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    jobs = [
        service.submit("link", dataset=DATASET, seed=0, scale=SCALE),
        service.submit("link", dataset=DATASET, seed=1, scale=SCALE),
        service.submit("link", dataset=DATASET, seed=0, scale=SCALE),
    ]

    plan = (
        "store.read:io_error@0.2;"
        "store.write:io_error@0.2;"
        "queue.claim:delay@0.5:10ms"
    )
    workers = [
        _spawn_worker(tmp_path, f"chaos-{i}", service.cache_dir,
                      fault_plan=plan, fault_seed=7)
        for i in range(2)
    ]
    for proc in workers:
        proc.wait(timeout=240)
        assert proc.returncode == 0, proc.stderr.read().decode()

    # Zero lost, zero duplicated: every submitted job has exactly one
    # record, every record is terminal-succeeded on its first attempt
    # (store faults degrade the cache, they never fail the job), and
    # nothing is left queued or claimed.
    store = JobStore(tmp_path)
    assert store.state_counts() == {
        "queued": 0, "running": 0, "succeeded": 3, "failed": 0,
    }
    for submitted in jobs:
        record = store.get(submitted.job_id)
        assert record.state == "succeeded" and record.attempts == 1
    assert service.queue.depth() == 0 and not service.queue.claimed()

    # Byte-parity held through the chaos.
    oracles = {0: direct_links(seed=0), 1: direct_links(seed=1)}
    for submitted in jobs:
        seed = submitted.spec["seed"]
        assert service.links(submitted.job_id) == oracles[seed]
