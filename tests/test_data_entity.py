"""Tests for the Entity data model."""

import pytest

from repro.data.entity import Entity


class TestEntity:
    def test_single_string_value_normalised_to_tuple(self):
        entity = Entity("e1", {"name": "Berlin"})
        assert entity.values("name") == ("Berlin",)

    def test_multi_valued_property(self):
        entity = Entity("e1", {"synonym": ("a", "b")})
        assert entity.values("synonym") == ("a", "b")

    def test_missing_property_is_empty_tuple(self):
        entity = Entity("e1", {"name": "x"})
        assert entity.values("other") == ()

    def test_empty_values_dropped(self):
        entity = Entity("e1", {"name": "", "kept": "v"})
        assert not entity.has("name")
        assert entity.has("kept")

    def test_uid_required(self):
        with pytest.raises(ValueError):
            Entity("", {"name": "x"})

    def test_property_names(self):
        entity = Entity("e1", {"b": "1", "a": "2"})
        assert set(entity.property_names()) == {"a", "b"}

    def test_equality_by_uid_and_content(self):
        assert Entity("e1", {"a": "1"}) == Entity("e1", {"a": "1"})
        assert Entity("e1", {"a": "1"}) != Entity("e1", {"a": "2"})
        assert Entity("e1", {"a": "1"}) != Entity("e2", {"a": "1"})

    def test_hash_by_uid(self):
        assert hash(Entity("e1", {})) == hash(Entity("e1", {"a": "1"}))

    def test_properties_mapping_readonly(self):
        entity = Entity("e1", {"a": "1"})
        with pytest.raises(TypeError):
            entity.properties["b"] = ("2",)  # type: ignore[index]

    def test_values_coerced_to_str(self):
        entity = Entity("e1", {"n": (42,)})  # type: ignore[dict-item]
        assert entity.values("n") == ("42",)

    def test_repr_contains_uid(self):
        assert "e1" in repr(Entity("e1", {"a": "1"}))
