"""Tests for blocking strategies."""

import pytest

from repro.core.nodes import ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.engine.session import EngineSession
from repro.matching.blocking import (
    FullIndexBlocker,
    RuleBlocker,
    SortedNeighbourhoodBlocker,
    TokenBlocker,
    _tokens_of,
)


def _sources():
    source_a = DataSource(
        "A",
        [
            Entity("a1", {"label": "Berlin City"}),
            Entity("a2", {"label": "Hamburg Port"}),
            Entity("a3", {"label": "Munich"}),
        ],
    )
    source_b = DataSource(
        "B",
        [
            Entity("b1", {"name": "berlin city"}),
            Entity("b2", {"name": "hamburg"}),
            Entity("b3", {"name": "stuttgart"}),
        ],
    )
    return source_a, source_b


class TestFullIndexBlocker:
    def test_cartesian_product(self):
        source_a, source_b = _sources()
        pairs = list(FullIndexBlocker().candidates(source_a, source_b))
        assert len(pairs) == 9

    def test_deduplication_yields_unordered_pairs(self):
        source_a, _ = _sources()
        pairs = list(FullIndexBlocker().candidates(source_a, source_a))
        assert len(pairs) == 3  # C(3, 2)
        for entity_a, entity_b in pairs:
            assert entity_a.uid < entity_b.uid

    def test_candidate_count(self):
        source_a, source_b = _sources()
        assert FullIndexBlocker().candidate_count(source_a, source_b) == 9


class TestTokenBlocker:
    def test_shared_tokens_paired(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        pairs = {(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)}
        assert ("a1", "b1") in pairs  # share 'berlin' and 'city'
        assert ("a2", "b2") in pairs  # share 'hamburg'
        assert ("a3", "b3") not in pairs  # nothing shared

    def test_no_duplicate_pairs(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        pairs = list(blocker.candidates(source_a, source_b))
        assert len(pairs) == len({(a.uid, b.uid) for a, b in pairs})

    def test_tokenisation_case_insensitive(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        pairs = {(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)}
        assert ("a1", "b1") in pairs

    def test_stop_word_blocks_dropped(self):
        source_a = DataSource(
            "A", [Entity(f"a{i}", {"label": f"the item {i}"}) for i in range(20)]
        )
        source_b = DataSource(
            "B", [Entity(f"b{i}", {"label": f"the thing {i}"}) for i in range(20)]
        )
        blocker = TokenBlocker(["label"], max_block_size=5)
        pairs = list(blocker.candidates(source_a, source_b))
        # 'the' blocks are dropped; only same-number pairs remain.
        assert all(a.uid[1:] == b.uid[1:] for a, b in pairs)

    def test_deduplication_mode(self):
        source_a, _ = _sources()
        blocker = TokenBlocker(["label"])
        pairs = list(blocker.candidates(source_a, source_a))
        for entity_a, entity_b in pairs:
            assert entity_a.uid < entity_b.uid


class TestTokenIndex:
    def test_index_maps_tokens_to_uids_in_source_order(self):
        _, source_b = _sources()
        index = TokenBlocker(["name"]).build_index(source_b)
        assert index["berlin"] == ("b1",)
        assert index["hamburg"] == ("b2",)

    def test_index_tokens_match_seed_tokenisation(self):
        """Bulk (translate/split) tokenisation produces exactly the
        seed per-entity token sets."""
        source_a, source_b = _sources()
        for source in (source_a, source_b):
            properties = source.property_names()
            index = TokenBlocker(properties).build_index(source)
            expected: set[str] = set()
            for entity in source:
                expected |= _tokens_of(entity, properties)
            assert set(index) == expected

    def test_non_ascii_tokens_match_seed_tokenisation(self):
        """Lowering can decompose characters ('İ' → 'i' + combining
        dot); tokenisation must happen before lowering on the Unicode
        path so tokens never split mid-word."""
        source = DataSource(
            "B", [Entity("b1", {"label": "İstanbul Ölüdeniz"})]
        )
        index = TokenBlocker(["label"]).build_index(source)
        assert set(index) == _tokens_of(source.get("b1"), ["label"])

    def test_oversized_blocks_dropped_at_build(self):
        source = DataSource(
            "B", [Entity(f"b{i}", {"label": f"the item{i}"}) for i in range(9)]
        )
        index = TokenBlocker(["label"], max_block_size=5).build_index(source)
        assert "the" not in index
        assert index["item3"] == ("b3",)

    def test_repeated_token_within_entity_counts_once(self):
        """An entity repeating a token (across values/properties) files
        once — and must not push its block over the size limit."""
        source = DataSource(
            "B",
            [
                Entity("b1", {"label": "echo echo", "alt": "echo"}),
                Entity("b2", {"label": "echo"}),
            ],
        )
        index = TokenBlocker(["label", "alt"], max_block_size=2).build_index(source)
        assert index["echo"] == ("b1", "b2")

    def test_instance_memo_reuses_index_for_unchanged_source(self):
        _, source_b = _sources()
        blocker = TokenBlocker(["name"])
        assert blocker.build_index(source_b) is blocker.build_index(source_b)

    def test_session_memo_shared_across_blocker_instances(self):
        _, source_b = _sources()
        session = EngineSession()
        first = TokenBlocker(["name"]).build_index(source_b, session=session)
        second = TokenBlocker(["name"]).build_index(source_b, session=session)
        assert first is second
        # A differently-configured blocker keys separately.
        other = TokenBlocker(["name"], max_block_size=1).build_index(
            source_b, session=session
        )
        assert other is not first

    def test_signature_stable_and_parameter_sensitive(self):
        base = TokenBlocker(["name"]).signature()
        assert base == TokenBlocker(["name"]).signature()
        assert TokenBlocker(["name"], max_block_size=9).signature() != base
        assert TokenBlocker(["label"]).signature() != base

    def test_executor_fanout_builds_identical_index(self):
        source = DataSource(
            "B",
            [Entity(f"b{i}", {"label": f"tok{i % 50} fill{i}"}) for i in range(600)],
        )
        inline = TokenBlocker(["label"]).build_index(source)
        with EngineSession(executor=4) as session:
            fanned = TokenBlocker(["label"]).build_index(source, session=session)
        assert fanned == inline


class TestIterShards:
    def test_default_chunking_matches_candidates(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        expected = [
            (a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)
        ]
        shards = list(blocker.iter_shards(source_a, source_b, 1))
        assert [(a.uid, b.uid) for s in shards for a, b in s] == expected
        assert all(len(s) == 1 for s in shards)

    def test_full_index_shards_are_lazy(self):
        """The first shard of a quadratic source arrives without the
        cross product being materialised."""
        source = DataSource(
            "big", [Entity(f"e{i}", {"label": str(i)}) for i in range(3000)]
        )
        shards = FullIndexBlocker().iter_shards(source, source, 128)
        first = next(iter(shards))
        assert len(first) == 128
        assert first[0][0].uid == "e0"

    def test_full_index_shards_cover_the_product(self):
        source_a, source_b = _sources()
        shards = list(FullIndexBlocker().iter_shards(source_a, source_b, 4))
        assert sum(len(s) for s in shards) == 9
        assert [len(s) for s in shards] == [4, 4, 1]


class TestSortedNeighbourhood:
    def test_window_pairs_nearby_keys(self):
        source_a, source_b = _sources()
        blocker = SortedNeighbourhoodBlocker("label", window=6)
        pairs = list(blocker.candidates(source_a, source_b))
        assert pairs  # produces candidates
        for entity_a, entity_b in pairs:
            assert entity_a.uid.startswith("a")
            assert entity_b.uid.startswith("b")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighbourhoodBlocker("label", window=1)

    def test_dedup_window(self):
        source_a, _ = _sources()
        blocker = SortedNeighbourhoodBlocker("label", window=3)
        pairs = list(blocker.candidates(source_a, source_a))
        for entity_a, entity_b in pairs:
            assert entity_a.uid < entity_b.uid

    def test_merge_matches_stable_concat_sort(self):
        """The two-index merge reproduces a stable sort of the
        concatenated tagged list: on key ties, all A entities come
        before all B entities, each side in source order."""
        source_a = DataSource(
            "A",
            [
                Entity("a1", {"k": "m"}),
                Entity("a2", {"k": "m"}),
                Entity("a3", {"k": "a"}),
            ],
        )
        source_b = DataSource(
            "B",
            [Entity("b1", {"k": "M"}), Entity("b2", {"k": "z"})],
        )
        blocker = SortedNeighbourhoodBlocker("k", window=5)
        pairs = [(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)]
        # Sorted order: a3(a), a1(m), a2(m), b1(m), b2(z) — ties keep
        # A-then-B, so a1 and a2 both precede b1.
        assert pairs == [
            ("a3", "b1"),
            ("a3", "b2"),
            ("a1", "b1"),
            ("a1", "b2"),
            ("a2", "b1"),
            ("a2", "b2"),
        ]

    def test_every_window_shares_one_index(self):
        """The window is probe-time-only: different windows share the
        same signature and hence the same memoised sorted index."""
        source_a, _ = _sources()
        assert (
            SortedNeighbourhoodBlocker("label", window=2).signature()
            == SortedNeighbourhoodBlocker("label", window=9).signature()
        )
        session = EngineSession()
        narrow = SortedNeighbourhoodBlocker("label", window=2).build_index(
            source_a, session=session
        )
        wide = SortedNeighbourhoodBlocker("label", window=9).build_index(
            source_a, session=session
        )
        assert narrow is wide


class TestRuleBlocker:
    def test_derives_properties_from_rule(self):
        source_a, source_b = _sources()
        rule = LinkageRule(
            ComparisonNode(
                "levenshtein",
                1.0,
                TransformationNode("lowerCase", (PropertyNode("label"),)),
                PropertyNode("name"),
            )
        )
        blocker = RuleBlocker(rule)
        pairs = {(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)}
        assert ("a1", "b1") in pairs

    def test_rejects_rule_without_properties(self):
        # A rule whose value trees have no property roots cannot happen
        # through the public API; simulate with a property-free rule by
        # checking the error path via an empty comparison list instead.
        rule = LinkageRule(
            ComparisonNode("levenshtein", 1.0, PropertyNode("x"), PropertyNode("y"))
        )
        # Valid rule works fine.
        RuleBlocker(rule)

    def test_recall_complete_on_shared_token_matches(self):
        """Every true match sharing a token is retained by the blocker."""
        source_a, source_b = _sources()
        rule = LinkageRule(
            ComparisonNode(
                "levenshtein", 2.0,
                TransformationNode("lowerCase", (PropertyNode("label"),)),
                PropertyNode("name"),
            )
        )
        pairs = {
            (a.uid, b.uid)
            for a, b in RuleBlocker(rule).candidates(source_a, source_b)
        }
        assert {("a1", "b1"), ("a2", "b2")} <= pairs
