"""Tests for blocking strategies."""

import pytest

from repro.core.nodes import ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.matching.blocking import (
    FullIndexBlocker,
    RuleBlocker,
    SortedNeighbourhoodBlocker,
    TokenBlocker,
)


def _sources():
    source_a = DataSource(
        "A",
        [
            Entity("a1", {"label": "Berlin City"}),
            Entity("a2", {"label": "Hamburg Port"}),
            Entity("a3", {"label": "Munich"}),
        ],
    )
    source_b = DataSource(
        "B",
        [
            Entity("b1", {"name": "berlin city"}),
            Entity("b2", {"name": "hamburg"}),
            Entity("b3", {"name": "stuttgart"}),
        ],
    )
    return source_a, source_b


class TestFullIndexBlocker:
    def test_cartesian_product(self):
        source_a, source_b = _sources()
        pairs = list(FullIndexBlocker().candidates(source_a, source_b))
        assert len(pairs) == 9

    def test_deduplication_yields_unordered_pairs(self):
        source_a, _ = _sources()
        pairs = list(FullIndexBlocker().candidates(source_a, source_a))
        assert len(pairs) == 3  # C(3, 2)
        for entity_a, entity_b in pairs:
            assert entity_a.uid < entity_b.uid

    def test_candidate_count(self):
        source_a, source_b = _sources()
        assert FullIndexBlocker().candidate_count(source_a, source_b) == 9


class TestTokenBlocker:
    def test_shared_tokens_paired(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        pairs = {(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)}
        assert ("a1", "b1") in pairs  # share 'berlin' and 'city'
        assert ("a2", "b2") in pairs  # share 'hamburg'
        assert ("a3", "b3") not in pairs  # nothing shared

    def test_no_duplicate_pairs(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        pairs = list(blocker.candidates(source_a, source_b))
        assert len(pairs) == len({(a.uid, b.uid) for a, b in pairs})

    def test_tokenisation_case_insensitive(self):
        source_a, source_b = _sources()
        blocker = TokenBlocker(["label"], ["name"])
        pairs = {(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)}
        assert ("a1", "b1") in pairs

    def test_stop_word_blocks_dropped(self):
        source_a = DataSource(
            "A", [Entity(f"a{i}", {"label": f"the item {i}"}) for i in range(20)]
        )
        source_b = DataSource(
            "B", [Entity(f"b{i}", {"label": f"the thing {i}"}) for i in range(20)]
        )
        blocker = TokenBlocker(["label"], max_block_size=5)
        pairs = list(blocker.candidates(source_a, source_b))
        # 'the' blocks are dropped; only same-number pairs remain.
        assert all(a.uid[1:] == b.uid[1:] for a, b in pairs)

    def test_deduplication_mode(self):
        source_a, _ = _sources()
        blocker = TokenBlocker(["label"])
        pairs = list(blocker.candidates(source_a, source_a))
        for entity_a, entity_b in pairs:
            assert entity_a.uid < entity_b.uid


class TestSortedNeighbourhood:
    def test_window_pairs_nearby_keys(self):
        source_a, source_b = _sources()
        blocker = SortedNeighbourhoodBlocker("label", window=6)
        pairs = list(blocker.candidates(source_a, source_b))
        assert pairs  # produces candidates
        for entity_a, entity_b in pairs:
            assert entity_a.uid.startswith("a")
            assert entity_b.uid.startswith("b")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighbourhoodBlocker("label", window=1)

    def test_dedup_window(self):
        source_a, _ = _sources()
        blocker = SortedNeighbourhoodBlocker("label", window=3)
        pairs = list(blocker.candidates(source_a, source_a))
        for entity_a, entity_b in pairs:
            assert entity_a.uid < entity_b.uid


class TestRuleBlocker:
    def test_derives_properties_from_rule(self):
        source_a, source_b = _sources()
        rule = LinkageRule(
            ComparisonNode(
                "levenshtein",
                1.0,
                TransformationNode("lowerCase", (PropertyNode("label"),)),
                PropertyNode("name"),
            )
        )
        blocker = RuleBlocker(rule)
        pairs = {(a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)}
        assert ("a1", "b1") in pairs

    def test_rejects_rule_without_properties(self):
        # A rule whose value trees have no property roots cannot happen
        # through the public API; simulate with a property-free rule by
        # checking the error path via an empty comparison list instead.
        rule = LinkageRule(
            ComparisonNode("levenshtein", 1.0, PropertyNode("x"), PropertyNode("y"))
        )
        # Valid rule works fine.
        RuleBlocker(rule)

    def test_recall_complete_on_shared_token_matches(self):
        """Every true match sharing a token is retained by the blocker."""
        source_a, source_b = _sources()
        rule = LinkageRule(
            ComparisonNode(
                "levenshtein", 2.0,
                TransformationNode("lowerCase", (PropertyNode("label"),)),
                PropertyNode("name"),
            )
        )
        pairs = {
            (a.uid, b.uid)
            for a, b in RuleBlocker(rule).candidates(source_a, source_b)
        }
        assert {("a1", "b1"), ("a2", "b2")} <= pairs
