"""Tests for the noise models and vocabularies behind the datasets."""

import random

import pytest

from repro.datasets import noise, vocab
from repro.datasets.fillers import add_fillers, filler_value
from repro.distances.dates import parse_date
from repro.distances.geographic import haversine_metres, parse_point
from repro.distances.levenshtein import levenshtein


@pytest.fixture
def rng():
    return random.Random(99)


class TestTypo:
    def test_single_edit_within_levenshtein_two(self, rng):
        # A transposition costs two classic Levenshtein operations.
        for _ in range(50):
            word = "reference"
            assert levenshtein(word, noise.typo(word, rng, edits=1)) <= 2.0

    def test_multiple_edits_bounded(self, rng):
        for _ in range(30):
            corrupted = noise.typo("reference", rng, edits=3)
            assert levenshtein("reference", corrupted) <= 6.0

    def test_empty_string_survives(self, rng):
        assert isinstance(noise.typo("", rng), str)


class TestCaseAndTokens:
    def test_case_noise_changes_only_case(self, rng):
        for _ in range(20):
            value = "Mixed Case Words"
            assert noise.case_noise(value, rng).lower() == value.lower()

    def test_shuffle_tokens_preserves_token_set(self, rng):
        value = "alpha beta gamma delta"
        shuffled = noise.shuffle_tokens(value, rng)
        assert sorted(shuffled.split()) == sorted(value.split())

    def test_shuffle_single_token_noop(self, rng):
        assert noise.shuffle_tokens("single", rng) == "single"

    def test_drop_token_removes_exactly_one(self, rng):
        value = "alpha beta gamma"
        dropped = noise.drop_token(value, rng)
        assert len(dropped.split()) == 2

    def test_drop_token_keeps_last(self, rng):
        assert noise.drop_token("only", rng) == "only"


class TestNameFormats:
    def test_abbreviate_contains_last_name(self, rng):
        for _ in range(20):
            rendered = noise.abbreviate_name("John", "Smith", rng)
            assert "Smith" in rendered

    def test_author_list_contains_all_last_names(self, rng):
        names = [("John", "Smith"), ("Mary", "Davis")]
        rendered = noise.author_list(names, rng)
        assert "Smith" in rendered and "Davis" in rendered


class TestFormats:
    def test_date_format_always_parseable(self, rng):
        for _ in range(40):
            rendered = noise.date_format(1994, 5, 20, rng)
            assert parse_date(rendered) is not None

    def test_wkt_point_round_trips(self):
        assert parse_point(noise.wkt_point(52.52, 13.405)) == pytest.approx(
            (52.52, 13.405), abs=1e-4
        )

    def test_latlon_pair_round_trips(self):
        assert parse_point(noise.latlon_pair(52.52, 13.405)) == pytest.approx(
            (52.52, 13.405), abs=1e-4
        )

    def test_coordinate_jitter_bounded(self, rng):
        for _ in range(20):
            lat, lon = noise.coordinate_jitter(52.0, 13.0, rng, max_metres=500.0)
            # Diagonal jitter of 500m in both axes is < 1500m total.
            assert haversine_metres(52.0, 13.0, lat, lon) < 1500.0

    def test_uri_wrap(self):
        assert (
            noise.uri_wrap("New York City")
            == "http://dbpedia.org/resource/New_York_City"
        )

    def test_punctuation_noise_keeps_tokens(self, rng):
        value = "beta blocker drug"
        noisy = noise.punctuation_noise(value, rng)
        for token in value.split():
            assert token in noisy


class TestVocab:
    def test_paper_title_word_count(self, rng):
        for _ in range(20):
            title = vocab.paper_title(rng, words=6)
            # connector word adds one token.
            assert 5 <= len(title.split()) <= 8

    def test_venue_abbreviations_share_tokens(self):
        for full, short in vocab.VENUES:
            full_tokens = {t.lower().strip(".") for t in full.split()}
            short_tokens = {t.lower().strip(".") for t in short.split()}
            assert full_tokens & short_tokens, (full, short)

    def test_phone_number_formats(self, rng):
        dashed, dotted = vocab.phone_number(rng, area=310)
        assert dashed.startswith("310-")
        assert dotted.startswith("310/")

    def test_drug_name_is_lowercase_word(self, rng):
        for _ in range(20):
            name = vocab.drug_name(rng)
            assert name.isalpha() and name == name.lower()

    def test_cas_number_shape(self, rng):
        import re

        assert re.match(r"^\d+-\d{2}-\d$", vocab.cas_number(rng))

    def test_atc_code_shape(self, rng):
        import re

        assert re.match(r"^[A-Z]\d{2}[A-J]{2}\d{2}$", vocab.atc_code(rng))

    def test_street_address_forms(self, rng):
        full, short = vocab.street_address(rng)
        assert full.split()[0] == short.split()[0]  # same house number


class TestFillers:
    def test_sides_never_levenshtein_compatible(self, rng):
        """Cross-side filler words must not trip Algorithm 2."""
        from repro.datasets.fillers import _FILLER_WORDS_A, _FILLER_WORDS_B

        for a in _FILLER_WORDS_A:
            for b in _FILLER_WORDS_B:
                assert levenshtein(a, b, bound=1) > 1.0, (a, b)

    def test_add_fillers_presence(self, rng):
        record: dict = {}
        add_fillers(record, "p", 100, presence=0.5, rng=rng)
        assert 25 <= len(record) <= 75

    def test_add_fillers_zero_presence(self, rng):
        record: dict = {}
        add_fillers(record, "p", 50, presence=0.0, rng=rng)
        assert record == {}

    def test_filler_value_nonempty(self, rng):
        for side in (0, 1):
            for _ in range(20):
                assert filler_value(rng, side=side)
