"""Tests for the persistent distance-column store: content-hash keys,
corruption/partial-write recovery, snapshot invalidation, concurrent
writers, and warm-rerun reuse over the bundled datasets."""

from __future__ import annotations

import os
import threading
from unittest import mock

import numpy as np
import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import load_dataset
from repro.engine import CACHE_ENV, ColumnStore, EngineSession, resolve_store
from repro.engine.store import (
    StoreStats,
    column_key,
    index_key,
    pairs_fingerprint,
)
from repro.matching import FullIndexBlocker, MatchingEngine


def _comparison(metric="levenshtein", threshold=2.0, prop="name"):
    return ComparisonNode(
        metric,
        threshold,
        TransformationNode("lowerCase", (PropertyNode(prop),)),
        TransformationNode("lowerCase", (PropertyNode(prop),)),
    )


def _pairs(n=6):
    return [
        (
            Entity(f"a{i}", {"name": f"entity {i}", "year": str(1990 + i)}),
            Entity(f"b{i}", {"name": f"entity {i % 2}", "year": str(1990 + i)}),
        )
        for i in range(n)
    ]


class TestFingerprints:
    def test_entity_fingerprint_is_content_based(self):
        a = Entity("x", {"name": "Berlin", "year": "1990"})
        b = Entity("x", {"year": "1990", "name": "Berlin"})  # order-free
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() == a.fingerprint()  # cached, stable

    def test_entity_fingerprint_changes_with_content(self):
        base = Entity("x", {"name": "Berlin"})
        assert base.fingerprint() != Entity("y", {"name": "Berlin"}).fingerprint()
        assert base.fingerprint() != Entity("x", {"name": "Bonn"}).fingerprint()
        assert (
            base.fingerprint()
            != Entity("x", {"name": ("Berlin", "Bonn")}).fingerprint()
        )

    def test_entity_fingerprint_survives_pickle(self):
        import pickle

        entity = Entity("x", {"name": "Berlin"})
        clone = pickle.loads(pickle.dumps(entity))
        assert clone.fingerprint() == entity.fingerprint()

    def test_source_fingerprint_excludes_name_tracks_content(self):
        entities = [Entity(f"e{i}", {"name": f"n{i}"}) for i in range(3)]
        a = DataSource("a", entities)
        b = DataSource("b", entities)
        assert a.fingerprint() == b.fingerprint()
        b.add(Entity("extra", {"name": "x"}))
        assert a.fingerprint() != b.fingerprint()

    def test_pairs_fingerprint_is_order_sensitive(self):
        pairs = _pairs(3)
        assert pairs_fingerprint(pairs) == pairs_fingerprint(list(pairs))
        assert pairs_fingerprint(pairs) != pairs_fingerprint(pairs[::-1])

    def test_fingerprint_encoding_is_injective(self):
        # A value containing a would-be separator must not collide with
        # the multi-value split of the same text (length-prefixed
        # encoding), nor values straddling the name/value boundary.
        joined = Entity("u", {"p": ("a\x1eb",)})
        split = Entity("u", {"p": ("a", "b")})
        assert joined.fingerprint() != split.fingerprint()
        assert (
            Entity("u", {"ab": ("c",)}).fingerprint()
            != Entity("u", {"a": ("bc",)}).fingerprint()
        )


class TestResolveStore:
    def test_none_without_env_disables(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(CACHE_ENV, None)
            assert resolve_store(None) is None

    def test_env_enables(self, tmp_path):
        with mock.patch.dict(os.environ, {CACHE_ENV: str(tmp_path)}):
            store = resolve_store(None)
        assert isinstance(store, ColumnStore)
        assert store.root == tmp_path

    def test_empty_string_forces_off_despite_env(self, tmp_path):
        with mock.patch.dict(os.environ, {CACHE_ENV: str(tmp_path)}):
            assert resolve_store("") is None

    def test_passthrough_and_type_errors(self, tmp_path):
        store = ColumnStore(tmp_path)
        assert resolve_store(store) is store
        with pytest.raises(TypeError):
            resolve_store(123)


class TestColumnStore:
    def test_roundtrip_is_bit_exact_and_read_only(self, tmp_path):
        store = ColumnStore(tmp_path)
        column = np.array([0.0, 0.5, 1e9, np.pi], dtype=np.float64)
        assert store.save("k" * 64, column)
        loaded = store.load("k" * 64, 4)
        assert loaded is not None
        assert loaded.dtype == np.float64
        assert np.array_equal(
            loaded.view(np.uint64), column.view(np.uint64)
        )  # bit-identical, not just value-equal
        assert not loaded.flags.writeable
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 0, 1)

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ColumnStore(tmp_path)
        assert store.load("0" * 64, 4) is None
        assert store.stats().misses == 1
        assert store.stats().invalid == 0

    def test_truncated_blob_rebuilds_instead_of_crashing(self, tmp_path):
        store = ColumnStore(tmp_path)
        key = "a" * 64
        store.save(key, np.zeros(128, dtype=np.float64))
        [path] = list(tmp_path.glob("columns-v*/*/*.npy"))
        path.write_bytes(path.read_bytes()[:40])  # partial write
        assert store.load(key, 128) is None
        assert store.stats().invalid == 1
        assert not path.exists()  # corrupt blob dropped...
        store.save(key, np.ones(128, dtype=np.float64))  # ...and rebuilt
        loaded = store.load(key, 128)
        assert loaded is not None and float(loaded[0]) == 1.0

    def test_garbage_blob_is_invalid(self, tmp_path):
        store = ColumnStore(tmp_path)
        key = "b" * 64
        path = tmp_path / "columns-v1" / key[:2] / f"{key}.npy"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npy file at all")
        assert store.load(key, 4) is None
        assert store.stats().invalid == 1

    def test_wrong_row_count_is_invalid(self, tmp_path):
        store = ColumnStore(tmp_path)
        key = "c" * 64
        store.save(key, np.zeros(4, dtype=np.float64))
        assert store.load(key, 8) is None
        assert store.stats().invalid == 1

    def test_save_failure_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        store = ColumnStore(blocker / "nested")  # parent is a file
        assert store.save("d" * 64, np.zeros(2, dtype=np.float64)) is False
        assert store.load("d" * 64, 2) is None  # miss, no crash

    def test_describe_clear_and_gc(self, tmp_path):
        store = ColumnStore(tmp_path)
        for index in range(4):
            store.save(str(index) * 64, np.zeros(16, dtype=np.float64))
        info = store.describe()
        assert info["entries"] == 4 and info["bytes"] > 0

        # Age-based GC: backdate two blobs beyond the window.
        entries = sorted(store.entries(), key=lambda e: e.key)
        for entry in entries[:2]:
            os.utime(entry.path, (0, 0))
        result = store.gc(max_age_days=1.0)
        assert result.removed == 2 and result.kept == 2

        # Size-based GC: shrink to one blob's worth of bytes.
        result = store.gc(max_bytes=entries[2].nbytes)
        assert result.removed == 1 and result.kept == 1

        assert store.clear() == 1
        assert store.describe()["entries"] == 0

    def test_stats_merged(self):
        a = StoreStats(1, 2, 3, 0, 10, 20)
        b = StoreStats(4, 0, 1, 1, 5, 5)
        merged = StoreStats.merged([a, b])
        assert merged == StoreStats(5, 2, 4, 1, 15, 25)
        assert StoreStats.merged([]) is None
        assert a.hit_rate == pytest.approx(1 / 3)


class TestSessionTier:
    def test_warm_session_loads_all_columns(self, tmp_path):
        pairs = _pairs()
        rules = [_comparison(), _comparison("jaro", 0.3, "year")]

        def scores(session):
            context = session.context(pairs)
            return [context.scores(rule) for rule in rules]

        cold = EngineSession(store=str(tmp_path))
        cold_scores = scores(cold)
        assert cold.stats().store.writes == 2
        assert cold.stats().store.hits == 0

        warm = EngineSession(store=str(tmp_path))
        warm_scores = scores(warm)
        stats = warm.stats()
        assert stats.store.hits == 2 and stats.store.misses == 0
        assert stats.store.writes == 0  # nothing rebuilt
        for cold_vector, warm_vector in zip(cold_scores, warm_scores):
            assert np.array_equal(
                np.asarray(cold_vector).view(np.uint64),
                np.asarray(warm_vector).view(np.uint64),
            )

    def test_threshold_mutations_share_one_persisted_column(self, tmp_path):
        cold = EngineSession(store=str(tmp_path))
        context = cold.context(_pairs())
        for threshold in (1.0, 2.0, 3.0):
            context.scores(_comparison(threshold=threshold))
        stats = cold.stats().store
        # Threshold-free keying: one store lookup, one blob, however
        # many thresholds the GP mutates over the same comparison.
        assert stats.lookups == 1 and stats.writes == 1

    def test_source_change_invalidates(self, tmp_path):
        node = _comparison()
        pairs = _pairs()
        EngineSession(store=str(tmp_path)).context(pairs).scores(node)

        changed = [
            (Entity("a0", {"name": "CHANGED", "year": "1990"}), pairs[0][1])
        ] + pairs[1:]
        session = EngineSession(store=str(tmp_path))
        session.context(changed).scores(node)
        stats = session.stats().store
        assert stats.hits == 0 and stats.misses == 1

    def test_engine_stats_store_none_without_cache(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(CACHE_ENV, None)
            session = EngineSession()
        assert session.store is None
        assert session.stats().store is None

    def test_env_var_enables_store(self, tmp_path):
        with mock.patch.dict(os.environ, {CACHE_ENV: str(tmp_path)}):
            session = EngineSession()
        assert session.store is not None
        assert session.store.root == tmp_path

    def test_reconfigured_measure_does_not_hit_stale_columns(self, tmp_path):
        from repro.distances.qgrams import QGramsDistance
        from repro.distances.registry import DistanceRegistry

        node = ComparisonNode(
            "qgrams", 0.5, PropertyNode("name"), PropertyNode("name")
        )
        pairs = _pairs()
        EngineSession(store=str(tmp_path)).context(pairs).scores(node)

        # Same metric *name*, different configuration: the store key
        # records the measure's class + scalar config, so this must
        # rebuild instead of serving the q=2 column.
        registry = DistanceRegistry()
        registry.register(QGramsDistance(q=3))
        session = EngineSession(distances=registry, store=str(tmp_path))
        session.context(pairs).scores(node)
        stats = session.stats().store
        assert stats.hits == 0 and stats.misses == 1

    def test_population_scores_persist_through_store(self, tmp_path):
        rules = [
            AggregationNode(
                "max", (_comparison(), _comparison("jaro", 0.3, "year"))
            ),
            _comparison(threshold=1.5),
        ]
        pairs = _pairs()
        cold = EngineSession(store=str(tmp_path))
        cold_vectors = cold.context(pairs).population_scores(rules)
        assert cold.stats().store.writes == 2  # two unique ops

        warm = EngineSession(store=str(tmp_path))
        warm_vectors = warm.context(pairs).population_scores(rules)
        assert warm.stats().store.hits == 2
        for cold_vector, warm_vector in zip(cold_vectors, warm_vectors):
            np.testing.assert_array_equal(cold_vector, warm_vector)


class TestIndexTier:
    def test_save_load_roundtrip(self, tmp_path):
        store = ColumnStore(tmp_path)
        payload = {"berlin": ("b1", "b3"), "bonn": ("b2",), 7: ("b4",)}
        key = index_key("fp", "token-index:v1")
        assert store.save_index(key, payload)
        loaded = store.load_index(key)
        assert loaded == payload
        stats = store.stats()
        assert stats.index_writes == 1
        assert stats.index_hits == 1
        assert stats.index_misses == 0
        assert stats.bytes_written > 0 and stats.bytes_read > 0

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ColumnStore(tmp_path)
        assert store.load_index(index_key("fp", "nope")) is None
        assert store.stats().index_misses == 1

    def test_corrupt_blob_discarded_and_counted(self, tmp_path):
        store = ColumnStore(tmp_path)
        key = index_key("fp", "tok")
        assert store.save_index(key, {"a": ("x",)})
        path = store._index_path(key)
        path.write_bytes(b"\x80\x05garbage-truncated")
        assert store.load_index(key) is None
        assert not path.exists()  # dropped so a rebuild can replace it
        stats = store.stats()
        assert stats.index_invalid == 1
        assert stats.index_misses == 1

    def test_index_keys_separate_sources_and_blockers(self):
        assert index_key("fp1", "tok") != index_key("fp2", "tok")
        assert index_key("fp1", "tok") != index_key("fp1", "snb")

    def test_describe_and_clear_cover_indexes(self, tmp_path):
        store = ColumnStore(tmp_path)
        store.save(column_key("fp", "op"), np.zeros(4))
        store.save_index(index_key("fp", "tok"), {"a": ("x",)})
        info = store.describe()
        assert info["columns"] == 1
        assert info["indexes"] == 1
        assert info["entries"] == 2
        assert store.clear() == 2
        assert store.describe()["entries"] == 0

    def test_gc_evicts_cold_indexes(self, tmp_path):
        store = ColumnStore(tmp_path)
        store.save_index(index_key("fp", "cold"), {"a": ("x",)})
        old = store._index_path(index_key("fp", "cold"))
        stale = 10 * 86400
        os.utime(old, (old.stat().st_atime - stale, old.stat().st_mtime - stale))
        store.save_index(index_key("fp", "hot"), {"b": ("y",)})
        result = store.gc(max_age_days=1.0)
        assert result.removed == 1
        assert store.load_index(index_key("fp", "hot")) is not None

    def test_stats_delta_and_merge_cover_index_counters(self, tmp_path):
        store = ColumnStore(tmp_path)
        baseline = store.stats()
        store.save_index(index_key("fp", "tok"), {"a": ("x",)})
        store.load_index(index_key("fp", "tok"))
        delta = store.stats().delta(baseline)
        assert (delta.index_writes, delta.index_hits) == (1, 1)
        merged = StoreStats.merged([delta, delta])
        assert merged.index_hits == 2
        assert merged.index_writes == 2

    def test_unreadable_directory_degrades_to_cold(self, tmp_path):
        store = ColumnStore(tmp_path / "missing")
        with mock.patch("tempfile.mkstemp", side_effect=OSError("full")):
            assert not store.save_index(index_key("fp", "tok"), {"a": ()})
        assert store.load_index(index_key("fp", "tok")) is None

    def test_unpicklable_payload_is_skipped(self, tmp_path):
        store = ColumnStore(tmp_path)
        assert not store.save_index(index_key("fp", "bad"), lambda: None)
        assert store.stats().index_writes == 0


class TestConcurrentWriters:
    def test_racing_threads_leave_a_valid_blob(self, tmp_path):
        store = ColumnStore(tmp_path)
        column = np.linspace(0.0, 1.0, 257)
        key = column_key("fp", "op")
        errors: list[BaseException] = []

        def writer():
            try:
                for _ in range(25):
                    assert store.save(key, column)
                    loaded = store.load(key, 257)
                    if loaded is not None:
                        np.testing.assert_array_equal(loaded, column)
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats().invalid == 0
        np.testing.assert_array_equal(store.load(key, 257), column)

    def test_delta_writers_gc_and_readers_agree_per_epoch(self, tmp_path):
        """Racing apply_delta writers, gc eviction and warm readers
        never observe a mixed-epoch index.

        Epoch fingerprints are deterministic functions of the parent
        fingerprint and the delta content, so independent replays of
        the same delta script land on the same chain. One thread
        advances its replay epoch by epoch, building (and patching)
        indexes into a shared store; reader threads hold frozen
        replays pinned at every intermediate epoch and keep resolving
        their index through the same store while a gc thread evicts
        everything it can. Every resolved index — fresh build, store
        hit, or lineage patch, with files vanishing underneath — must
        equal the cold reference for exactly that epoch.
        """
        from repro.matching.blocking import TokenBlocker

        blocker = TokenBlocker(["name"])
        base = [
            Entity(f"e{i}", {"name": f"alpha{i % 4} beta{i % 3}"})
            for i in range(24)
        ]
        script = [
            (
                [
                    Entity(f"e{step}", {"name": f"gamma{step} beta{step % 3}"}),
                    Entity(f"n{step}", {"name": f"alpha{step % 4} delta{step}"}),
                ],
                [f"e{20 - step}"],
            )
            for step in range(4)
        ]

        def replay(steps: int) -> DataSource:
            source = DataSource("S", [Entity(e.uid, dict(e.properties)) for e in base])
            for upserts, deletes in script[:steps]:
                source.apply_delta(
                    [Entity(e.uid, dict(e.properties)) for e in upserts],
                    deletes,
                )
            return source

        # Cold references per epoch: store-less builds over one replay.
        expected = {}
        for steps in range(len(script) + 1):
            source = replay(steps)
            expected[source.fingerprint()] = blocker.build_index(
                source, session=EngineSession()
            )
        assert len(expected) == len(script) + 1  # all epochs distinct

        store = ColumnStore(tmp_path)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                source = replay(0)
                for steps, (upserts, deletes) in enumerate(script, start=1):
                    source.apply_delta(
                        [Entity(e.uid, dict(e.properties)) for e in upserts],
                        deletes,
                    )
                    for _ in range(5):
                        index = blocker.build_index(
                            source, session=EngineSession(store=store)
                        )
                        assert index == expected[source.fingerprint()], steps
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)
            finally:
                stop.set()

        def reader(steps: int):
            source = replay(steps)
            fingerprint = source.fingerprint()
            try:
                while not stop.is_set():
                    index = blocker.build_index(
                        source, session=EngineSession(store=store)
                    )
                    assert index == expected[fingerprint], steps
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)

        def collector():
            try:
                while not stop.is_set():
                    store.gc(max_age_days=0.0)
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)

        threads = [threading.Thread(target=writer)]
        threads += [
            threading.Thread(target=reader, args=(steps,))
            for steps in range(len(script) + 1)
        ]
        threads.append(threading.Thread(target=collector))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_process_pool_shards_share_one_store(self, tmp_path):
        rule = LinkageRule(_comparison(prop="name"))
        source_a = DataSource(
            "A",
            [Entity(f"a{i}", {"name": f"entity {i % 7}"}) for i in range(40)],
        )
        source_b = DataSource(
            "B",
            [Entity(f"b{i}", {"name": f"Entity {i % 5}"}) for i in range(40)],
        )

        def run(workers):
            engine = MatchingEngine(
                blocker=FullIndexBlocker(),
                batch_size=256,
                workers=workers,
                cache_dir=str(tmp_path),
            )
            try:
                links = engine.execute(rule, source_a, source_b)
            finally:
                engine.close()
            return links, engine.last_run_stats()

        cold_links, cold_stats = run("process:2")
        assert cold_stats.store is not None
        assert cold_stats.store.writes > 0
        assert cold_stats.store.invalid == 0

        warm_links, warm_stats = run(0)  # serial run reads workers' blobs
        assert warm_links == cold_links
        assert warm_stats.store.misses == 0
        assert warm_stats.store.hits == warm_stats.store.lookups > 0

    def test_reused_process_engine_reports_per_run_stats(self, tmp_path):
        rule = LinkageRule(_comparison(prop="name"))
        source_a = DataSource(
            "A",
            [Entity(f"a{i}", {"name": f"entity {i % 7}"}) for i in range(30)],
        )
        source_b = DataSource(
            "B",
            [Entity(f"b{i}", {"name": f"Entity {i % 5}"}) for i in range(30)],
        )
        engine = MatchingEngine(
            blocker=FullIndexBlocker(),
            batch_size=256,
            workers="process:2",
            cache_dir=str(tmp_path),
        )
        try:
            cold_links = engine.execute(rule, source_a, source_b)
            cold_store = engine.last_run_stats().store
            warm_links = engine.execute(rule, source_a, source_b)
            warm_stats = engine.last_run_stats()
        finally:
            engine.close()
        assert warm_links == cold_links
        assert cold_store.writes > 0
        # Per-run deltas: worker sessions survive between runs, but the
        # second run's stats must not fold in the first run's misses.
        store = warm_stats.store
        assert store.writes == 0
        # The rerun resolves every column without building one: shards
        # either hit the worker's in-memory caches or load from disk.
        assert store.misses == 0
        assert store.hits + warm_stats.columns.hits > 0


class TestPerRunStats:
    def test_shared_session_runs_report_deltas(self, tmp_path):
        dataset_pairs = _pairs(12)
        rule = LinkageRule(_comparison())
        source_a = DataSource("A", [a for a, _ in dataset_pairs])
        source_b = DataSource("B", [b for _, b in dataset_pairs])
        session = EngineSession(store=str(tmp_path))
        engine = MatchingEngine(
            blocker=FullIndexBlocker(), batch_size=64, session=session
        )
        engine.execute(rule, source_a, source_b)
        cold = engine.last_run_stats()
        assert cold.store.misses > 0 and cold.values.misses > 0

        engine.execute(rule, source_a, source_b)
        warm = engine.last_run_stats()
        # Second run on the same session: store hits short-circuit the
        # whole distance pass (no value transformations run at all),
        # and the counters are this run's only — not the cold run's
        # misses folded in.
        assert warm.values.misses == 0
        assert warm.store.hits > 0
        assert warm.store.misses == 0 and warm.store.writes == 0


def _dataset_rule(name: str) -> LinkageRule:
    """A hand-built multi-comparison rule over the dataset's schema
    (learning is not under test here — column persistence is)."""
    if name == "restaurant":
        children = (
            _comparison("levenshtein", 2.0, "name"),
            _comparison("jaro", 0.4, "address"),
            ComparisonNode(
                "equality", 0.0, PropertyNode("city"), PropertyNode("city")
            ),
        )
    else:  # cora
        children = (
            _comparison("levenshtein", 3.0, "title"),
            _comparison("jaro", 0.4, "author"),
            ComparisonNode(
                "equality", 0.0, PropertyNode("date"), PropertyNode("date")
            ),
        )
    return LinkageRule(AggregationNode("wmean", children))


class TestWarmRerun:
    """The PR's acceptance bar: a warm rerun over restaurant/cora is
    byte-identical and skips >= 90% of distance-column builds."""

    @pytest.mark.parametrize("name", ["restaurant", "cora"])
    def test_warm_rerun_byte_identical_and_skips_builds(self, tmp_path, name):
        dataset = load_dataset(name, seed=0, scale=0.06)
        rule = _dataset_rule(name)

        def run():
            engine = MatchingEngine(
                blocker=FullIndexBlocker(),
                batch_size=512,
                cache_dir=str(tmp_path),
            )
            try:
                links = engine.execute(rule, dataset.source_a, dataset.source_b)
            finally:
                engine.close()
            return links, engine.last_run_stats()

        cold_links, cold_stats = run()
        assert cold_stats.store is not None
        assert cold_stats.store.hits == 0
        assert cold_stats.store.writes == cold_stats.store.misses > 0

        warm_links, warm_stats = run()
        # Byte-identical: GeneratedLink equality compares the float
        # scores exactly, and order is part of the contract.
        assert warm_links == cold_links
        store = warm_stats.store
        assert store.lookups == cold_stats.store.lookups
        # Every store miss is a distance-column build; the rerun must
        # skip >= 90% of them (it actually skips all of them).
        assert store.hits / store.lookups >= 0.9
        assert store.misses == 0

    def test_warm_rerun_stats_distinguish_tiers(self, tmp_path):
        dataset = load_dataset("restaurant", seed=0, scale=0.06)
        engine = MatchingEngine(
            blocker=FullIndexBlocker(), batch_size=512, cache_dir=str(tmp_path)
        )
        try:
            engine.execute(_dataset_rule("restaurant"), dataset.source_a,
                           dataset.source_b)
        finally:
            engine.close()
        stats = engine.last_run_stats()
        # All four tiers reported separately (the old API folded
        # everything into one value-cache snapshot).
        assert stats.values is not None and stats.values.lookups > 0
        assert stats.columns is not None and stats.columns.capacity > 0
        assert stats.scores is not None and stats.scores.misses > 0
        assert stats.store is not None and stats.store.writes > 0
        assert stats.value_stats is stats.values  # compat alias
