"""The docs environment-variable table stays in sync with the code.

``docs/index.md`` carries the single reference table of every
``REPRO_*`` environment variable the system reads. This meta-test
scans the source tree for ``REPRO_[A-Z_]+`` tokens and asserts the
two sets are identical — adding an ambient knob without documenting
it fails CI, as does documenting one that no longer exists. A second
check keeps the docs manual's relative links resolvable.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
SRC = REPO / "src"

ENV_VAR = re.compile(r"REPRO_[A-Z][A-Z_]*")


def _documented_variables() -> set[str]:
    """Variable names from the index table's first column."""
    names: set[str] = set()
    for line in (DOCS / "index.md").read_text().splitlines():
        match = re.match(r"\|\s*`(REPRO_[A-Z_]+)`\s*\|", line)
        if match:
            names.add(match.group(1))
    return names


def _source_variables() -> set[str]:
    """Every REPRO_* token read anywhere under src/."""
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        names.update(ENV_VAR.findall(path.read_text()))
    return names


def test_env_table_matches_source():
    documented = _documented_variables()
    in_source = _source_variables()
    assert documented, "no REPRO_* rows parsed from docs/index.md"
    missing = in_source - documented
    stale = documented - in_source
    assert not missing, f"env vars read by src/ but absent from docs/index.md: {sorted(missing)}"
    assert not stale, f"env vars documented but never read by src/: {sorted(stale)}"


def test_docs_cross_links_resolve():
    """Every relative .md link inside docs/ points at a real file."""
    link = re.compile(r"\]\(([A-Za-z0-9_./-]+\.md)(?:#[A-Za-z0-9_-]+)?\)")
    broken: list[str] = []
    for page in sorted(DOCS.glob("*.md")):
        for target in link.findall(page.read_text()):
            if not (DOCS / target).exists():
                broken.append(f"{page.name} -> {target}")
    assert not broken, f"broken docs links: {broken}"
