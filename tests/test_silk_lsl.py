"""Tests for Silk-LSL rule serialisation (repro.silk.lsl)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.silk.lsl import (
    AGGREGATION_TO_SILK,
    METRIC_TO_SILK,
    SILK_TO_METRIC,
    TRANSFORM_TO_SILK,
    LslError,
    rule_from_lsl,
    rule_to_lsl,
)


def simple_rule() -> LinkageRule:
    """The paper's Figure 2 city rule: min(levenshtein labels, geo)."""
    label = ComparisonNode(
        metric="levenshtein",
        threshold=1.0,
        source=TransformationNode("lowerCase", (PropertyNode("label"),)),
        target=TransformationNode("lowerCase", (PropertyNode("label"),)),
    )
    geo = ComparisonNode(
        metric="geographic",
        threshold=50.0,
        source=PropertyNode("point"),
        target=PropertyNode("coord"),
    )
    return LinkageRule(AggregationNode(function="min", operators=(label, geo)))


class TestEmit:
    def test_root_element(self):
        text = rule_to_lsl(simple_rule())
        element = ET.fromstring(text)
        assert element.tag == "LinkageRule"
        assert element[0].tag == "Aggregate"
        assert element[0].get("type") == "min"

    def test_metric_names_translated(self):
        text = rule_to_lsl(simple_rule())
        assert 'metric="levenshteinDistance"' in text
        assert 'metric="wgs84"' in text
        assert "levenshtein\"" not in text.replace("levenshteinDistance", "")

    def test_paths_carry_variables(self):
        text = rule_to_lsl(simple_rule())
        assert 'path="?a/label"' in text
        assert 'path="?b/label"' in text
        assert 'path="?a/point"' in text
        assert 'path="?b/coord"' in text

    def test_custom_variables(self):
        text = rule_to_lsl(simple_rule(), source_var="x", target_var="y")
        assert 'path="?x/label"' in text
        assert 'path="?y/coord"' in text

    def test_integral_threshold_is_compact(self):
        text = rule_to_lsl(simple_rule())
        assert 'threshold="1"' in text
        assert 'threshold="50"' in text

    def test_wmean_is_average(self):
        rule = LinkageRule(
            AggregationNode(
                function="wmean",
                operators=(
                    ComparisonNode(
                        metric="jaccard",
                        threshold=0.4,
                        source=PropertyNode("p"),
                        target=PropertyNode("q"),
                        weight=3,
                    ),
                    ComparisonNode(
                        metric="equality",
                        threshold=0.0,
                        source=PropertyNode("r"),
                        target=PropertyNode("s"),
                    ),
                ),
            )
        )
        text = rule_to_lsl(rule)
        assert '<Aggregate type="average"' in text
        assert 'weight="3"' in text

    def test_transformation_params_emitted(self):
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode(
                    "replace",
                    (PropertyNode("name"),),
                    params=(("replacement", " "), ("search", "-")),
                ),
                target=PropertyNode("name"),
            )
        )
        text = rule_to_lsl(rule)
        # 'replacement' translates to Silk's parameter name 'replace'.
        assert '<Param name="replace" value=" " />' in text or (
            '<Param name="replace" value=" "/>' in text
        )
        assert 'name="search"' in text

    def test_concatenate_is_concat(self):
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=2.0,
                source=TransformationNode(
                    "concatenate",
                    (PropertyNode("firstName"), PropertyNode("lastName")),
                ),
                target=PropertyNode("name"),
            )
        )
        text = rule_to_lsl(rule)
        assert 'function="concat"' in text


class TestParse:
    def test_round_trip_simple(self):
        rule = simple_rule()
        assert rule_from_lsl(rule_to_lsl(rule)) == rule

    def test_parse_bare_compare(self):
        text = """
        <Compare metric="jaccard" threshold="0.5">
          <Input path="?a/tags"/>
          <Input path="?b/tags"/>
        </Compare>
        """
        rule = rule_from_lsl(text)
        assert isinstance(rule.root, ComparisonNode)
        assert rule.root.metric == "jaccard"
        assert rule.root.threshold == 0.5

    def test_parse_swapped_inputs(self):
        text = """
        <Compare metric="equality" threshold="0">
          <Input path="?b/id"/>
          <Input path="?a/id"/>
        </Compare>
        """
        rule = rule_from_lsl(text)
        assert rule.root.source == PropertyNode("id")
        assert rule.root.target == PropertyNode("id")

    def test_unknown_metric_passes_through(self):
        text = """
        <Compare metric="substring" threshold="0.3">
          <Input path="?a/x"/><Input path="?b/y"/>
        </Compare>
        """
        rule = rule_from_lsl(text)
        assert rule.root.metric == "substring"

    def test_missing_threshold_raises(self):
        text = '<Compare metric="equality"><Input path="?a/x"/><Input path="?b/y"/></Compare>'
        with pytest.raises(LslError, match="threshold"):
            rule_from_lsl(text)

    def test_wrong_input_count_raises(self):
        text = '<Compare metric="equality" threshold="0"><Input path="?a/x"/></Compare>'
        with pytest.raises(LslError, match="exactly 2"):
            rule_from_lsl(text)

    def test_mixed_variable_subtree_raises(self):
        text = """
        <Compare metric="levenshteinDistance" threshold="1">
          <TransformInput function="concat">
            <Input path="?a/first"/><Input path="?b/last"/>
          </TransformInput>
          <Input path="?b/name"/>
        </Compare>
        """
        with pytest.raises(LslError, match="exactly one"):
            rule_from_lsl(text)

    def test_unknown_variable_raises(self):
        text = """
        <Compare metric="equality" threshold="0">
          <Input path="?z/x"/><Input path="?b/y"/>
        </Compare>
        """
        with pytest.raises(LslError, match="variables"):
            rule_from_lsl(text)

    def test_bad_path_raises(self):
        text = '<Compare metric="equality" threshold="0"><Input path="label"/><Input path="?b/y"/></Compare>'
        with pytest.raises(LslError, match="path"):
            rule_from_lsl(text)

    def test_unsupported_aggregation_raises(self):
        text = """
        <Aggregate type="quadraticMean">
          <Compare metric="equality" threshold="0">
            <Input path="?a/x"/><Input path="?b/y"/>
          </Compare>
        </Aggregate>
        """
        with pytest.raises(LslError, match="quadraticMean"):
            rule_from_lsl(text)

    def test_empty_aggregate_raises(self):
        with pytest.raises(LslError, match="no operators"):
            rule_from_lsl('<Aggregate type="min"></Aggregate>')

    def test_malformed_xml_raises(self):
        with pytest.raises(LslError, match="not well-formed"):
            rule_from_lsl("<LinkageRule><Compare>")

    def test_zero_weight_raises(self):
        text = """
        <Compare metric="equality" threshold="0" weight="0">
          <Input path="?a/x"/><Input path="?b/y"/>
        </Compare>
        """
        with pytest.raises(LslError, match="weight"):
            rule_from_lsl(text)

    def test_nested_aggregation_round_trip(self):
        inner = AggregationNode(
            function="max",
            operators=(
                ComparisonNode(
                    metric="date",
                    threshold=364.0,
                    source=PropertyNode("date"),
                    target=PropertyNode("released"),
                ),
                ComparisonNode(
                    metric="equality",
                    threshold=0.0,
                    source=PropertyNode("year"),
                    target=PropertyNode("year"),
                ),
            ),
            weight=2,
        )
        outer = AggregationNode(
            function="wmean",
            operators=(
                inner,
                ComparisonNode(
                    metric="jaroWinkler",
                    threshold=0.2,
                    source=PropertyNode("title"),
                    target=PropertyNode("label"),
                    weight=5,
                ),
            ),
        )
        rule = LinkageRule(outer)
        assert rule_from_lsl(rule_to_lsl(rule)) == rule


# -- property-based round trip ------------------------------------------------

_property_names = st.sampled_from(
    ["label", "name", "title", "date", "point", "rdfs:label", "foaf:name"]
)
_metrics = st.sampled_from(sorted(METRIC_TO_SILK))
_unary_transforms = st.sampled_from(
    sorted(set(TRANSFORM_TO_SILK) - {"concatenate", "replace"})
)
_weights = st.integers(min_value=1, max_value=9)
_thresholds = st.one_of(
    st.integers(min_value=0, max_value=500).map(float),
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
)


@st.composite
def _value_nodes(draw, max_depth=3):
    if max_depth == 0 or draw(st.booleans()):
        return PropertyNode(draw(_property_names))
    if max_depth >= 2 and draw(st.integers(0, 3)) == 0:
        left = draw(_value_nodes(max_depth=max_depth - 1))
        right = draw(_value_nodes(max_depth=max_depth - 1))
        return TransformationNode("concatenate", (left, right))
    inner = draw(_value_nodes(max_depth=max_depth - 1))
    return TransformationNode(draw(_unary_transforms), (inner,))


@st.composite
def _comparison_nodes(draw):
    return ComparisonNode(
        metric=draw(_metrics),
        threshold=draw(_thresholds),
        source=draw(_value_nodes()),
        target=draw(_value_nodes()),
        weight=draw(_weights),
    )


@st.composite
def _similarity_nodes(draw, max_depth=3):
    if max_depth == 0 or draw(st.booleans()):
        return draw(_comparison_nodes())
    children = draw(
        st.lists(_similarity_nodes(max_depth=max_depth - 1), min_size=1, max_size=3)
    )
    return AggregationNode(
        function=draw(st.sampled_from(sorted(AGGREGATION_TO_SILK))),
        operators=tuple(children),
        weight=draw(_weights),
    )


@given(node=_similarity_nodes())
@settings(max_examples=120, deadline=None)
def test_lsl_round_trip_random_rules(node):
    rule = LinkageRule(node)
    assert rule_from_lsl(rule_to_lsl(rule)) == rule


@given(node=_similarity_nodes())
@settings(max_examples=40, deadline=None)
def test_lsl_output_is_well_formed_xml(node):
    text = rule_to_lsl(LinkageRule(node))
    element = ET.fromstring(text)
    assert element.tag == "LinkageRule"


def test_metric_maps_are_bijective():
    assert len(SILK_TO_METRIC) == len(METRIC_TO_SILK)
    assert set(SILK_TO_METRIC.values()) == set(METRIC_TO_SILK)
