"""Tests for reference links and splits."""

import random

import pytest

from repro.data.entity import Entity
from repro.data.reference_links import (
    ReferenceLinkSet,
    generate_negative_links,
)
from repro.data.source import DataSource
from repro.data.splits import cross_validation_folds, train_validation_split


class TestReferenceLinkSet:
    def test_counts(self):
        links = ReferenceLinkSet([("a", "b")], [("a", "c"), ("d", "b")])
        assert len(links) == 3
        assert len(links.positive) == 1
        assert len(links.negative) == 2

    def test_duplicates_removed(self):
        links = ReferenceLinkSet([("a", "b"), ("a", "b")], [])
        assert len(links.positive) == 1

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            ReferenceLinkSet([("a", "b")], [("a", "b")])

    def test_iteration_positives_first(self):
        links = ReferenceLinkSet([("a", "b")], [("c", "d")])
        assert list(links) == [(("a", "b"), True), (("c", "d"), False)]

    def test_labelled_pairs(self):
        source_a = DataSource("A", [Entity("a", {"x": "1"})])
        source_b = DataSource("B", [Entity("b", {"x": "1"}), Entity("c", {"x": "2"})])
        links = ReferenceLinkSet([("a", "b")], [("a", "c")])
        pairs, labels = links.labelled_pairs(source_a, source_b)
        assert [(p[0].uid, p[1].uid) for p in pairs] == [("a", "b"), ("a", "c")]
        assert labels == [True, False]

    def test_subset(self):
        links = ReferenceLinkSet([("a", "b"), ("c", "d")], [("a", "d")])
        subset = links.subset([0, 2])
        assert subset.positive == [("a", "b")]
        assert subset.negative == [("a", "d")]

    def test_shuffled_preserves_content(self):
        links = ReferenceLinkSet([("a", "b"), ("c", "d")], [("a", "d"), ("c", "b")])
        shuffled = links.shuffled(random.Random(3))
        assert set(shuffled.positive) == set(links.positive)
        assert set(shuffled.negative) == set(links.negative)

    def test_with_negatives(self):
        links = ReferenceLinkSet([("a", "b")])
        extended = links.with_negatives([("a", "c")])
        assert extended.negative == [("a", "c")]


class TestGenerateNegativeLinks:
    def test_cross_pairing_scheme(self):
        positive = [("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")]
        negatives = generate_negative_links(positive, random.Random(0))
        for uid_a, uid_b in negatives:
            # Every negative is a cross-combination of two positives.
            assert any(uid_a == p[0] for p in positive)
            assert any(uid_b == p[1] for p in positive)
            assert (uid_a, uid_b) not in positive

    def test_balanced_count_by_default(self):
        positive = [(f"a{i}", f"b{i}") for i in range(20)]
        negatives = generate_negative_links(positive, random.Random(1))
        assert len(negatives) == len(positive)

    def test_explicit_count(self):
        positive = [(f"a{i}", f"b{i}") for i in range(10)]
        negatives = generate_negative_links(positive, random.Random(1), count=5)
        assert len(negatives) == 5

    def test_no_duplicates(self):
        positive = [(f"a{i}", f"b{i}") for i in range(15)]
        negatives = generate_negative_links(positive, random.Random(2))
        assert len(negatives) == len(set(negatives))

    def test_single_positive_yields_nothing(self):
        assert generate_negative_links([("a", "b")], random.Random(0)) == []


class TestSplits:
    def _links(self, n: int = 20) -> ReferenceLinkSet:
        positive = [(f"a{i}", f"b{i}") for i in range(n)]
        negative = [(f"a{i}", f"b{(i + 1) % n}") for i in range(n)]
        return ReferenceLinkSet(positive, negative)

    def test_train_validation_split_is_partition(self):
        links = self._links()
        train, validation = train_validation_split(links, random.Random(0))
        assert set(train.positive) | set(validation.positive) == set(links.positive)
        assert set(train.positive) & set(validation.positive) == set()
        assert set(train.negative) | set(validation.negative) == set(links.negative)

    def test_split_is_stratified(self):
        train, validation = train_validation_split(self._links(), random.Random(0))
        assert len(train.positive) == 10
        assert len(train.negative) == 10

    def test_split_fraction(self):
        train, _ = train_validation_split(
            self._links(), random.Random(0), train_fraction=0.75
        )
        assert len(train.positive) == 15

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_validation_split(self._links(), random.Random(0), train_fraction=1.5)

    def test_cross_validation_folds_cover_everything(self):
        links = self._links(12)
        folds = list(cross_validation_folds(links, 3, random.Random(0)))
        assert len(folds) == 3
        all_validation_positives = set()
        for train, validation in folds:
            assert set(train.positive) & set(validation.positive) == set()
            all_validation_positives.update(validation.positive)
        assert all_validation_positives == set(links.positive)

    def test_folds_minimum(self):
        with pytest.raises(ValueError):
            list(cross_validation_folds(self._links(), 1, random.Random(0)))
