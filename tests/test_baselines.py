"""Tests for the Carvalho GP and linear classifier baselines."""

import random

import numpy as np
import pytest

from repro.baselines.carvalho import (
    BinaryOp,
    CarvalhoConfig,
    CarvalhoGP,
    Constant,
    FeatureRef,
    SimilarityFeatures,
)
from repro.baselines.linear import LinearClassifier, LinearConfig
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


def _task(n: int = 16):
    words = [
        "berlin", "hamburg", "munich", "cologne", "frankfurt", "stuttgart",
        "dortmund", "essen", "leipzig", "bremen", "dresden", "hannover",
        "nuremberg", "duisburg", "bochum", "wuppertal",
    ][:n]
    source_a = DataSource("A")
    source_b = DataSource("B")
    positive = []
    for i, word in enumerate(words):
        source_a.add(Entity(f"a{i}", {"label": word}))
        source_b.add(Entity(f"b{i}", {"name": word}))
        positive.append((f"a{i}", f"b{i}"))
    negative = [(f"a{i}", f"b{(i + 5) % n}") for i in range(n)]
    return source_a, source_b, ReferenceLinkSet(positive, negative)


class TestSimilarityFeatures:
    def test_matrix_shape(self):
        source_a, source_b, links = _task(4)
        pairs, _ = links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures([("label", "name")], pairs)
        assert features.matrix.shape == (len(pairs), 5)  # 5 similarity functions

    def test_feature_values_in_unit_interval(self):
        source_a, source_b, links = _task(4)
        pairs, _ = links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures([("label", "name")], pairs)
        assert np.all(features.matrix >= 0.0)
        assert np.all(features.matrix <= 1.0)

    def test_identical_pairs_have_similarity_one(self):
        source_a, source_b, links = _task(4)
        pairs, labels = links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures([("label", "name")], pairs)
        exact_column = features.names.index("exact(label,name)")
        for row, label in enumerate(labels):
            if label:
                assert features.matrix[row, exact_column] == 1.0

    def test_requires_attribute_pairs(self):
        with pytest.raises(ValueError):
            SimilarityFeatures([], [])


class TestExpressionTrees:
    def _features(self):
        source_a, source_b, links = _task(4)
        pairs, _ = links.labelled_pairs(source_a, source_b)
        return SimilarityFeatures([("label", "name")], pairs)

    def test_constant(self):
        features = self._features()
        assert np.all(Constant(0.7).evaluate(features) == 0.7)

    def test_feature_ref(self):
        features = self._features()
        column = FeatureRef(0).evaluate(features)
        assert column.shape == (len(features),)

    def test_arithmetic(self):
        features = self._features()
        tree = BinaryOp("+", Constant(1.0), Constant(2.0))
        assert np.all(tree.evaluate(features) == 3.0)

    def test_protected_division(self):
        features = self._features()
        tree = BinaryOp("/", Constant(1.0), Constant(0.0))
        assert np.all(tree.evaluate(features) == 1.0)

    def test_size(self):
        tree = BinaryOp("*", Constant(1.0), BinaryOp("+", FeatureRef(0), Constant(2.0)))
        assert tree.size() == 5

    def test_render(self):
        features = self._features()
        tree = BinaryOp("+", FeatureRef(0), Constant(0.5))
        text = tree.render(features.names)
        assert "+" in text and "0.5" in text


class TestCarvalhoGP:
    def test_learns_simple_task(self):
        source_a, source_b, links = _task()
        learner = CarvalhoGP(CarvalhoConfig(population_size=40, max_generations=15))
        result = learner.learn(source_a, source_b, links, rng=1)
        assert result.train_f_measure >= 0.95

    def test_validation_evaluation(self):
        source_a, source_b, links = _task()
        learner = CarvalhoGP(CarvalhoConfig(population_size=40, max_generations=10))
        result = learner.learn(source_a, source_b, links, rng=1)
        score = learner.evaluate(result, source_a, source_b, links)
        assert score == pytest.approx(result.train_f_measure, abs=0.15)

    def test_history_recorded(self):
        source_a, source_b, links = _task()
        learner = CarvalhoGP(CarvalhoConfig(population_size=20, max_generations=5))
        result = learner.learn(source_a, source_b, links, rng=2)
        assert len(result.history) >= 1
        assert all(0.0 <= f1 <= 1.0 for f1 in result.history)

    def test_deterministic(self):
        source_a, source_b, links = _task()
        config = CarvalhoConfig(population_size=20, max_generations=5)
        r1 = CarvalhoGP(config).learn(source_a, source_b, links, rng=9)
        r2 = CarvalhoGP(config).learn(source_a, source_b, links, rng=9)
        assert r1.train_f_measure == r2.train_f_measure

    def test_render_result(self):
        source_a, source_b, links = _task()
        learner = CarvalhoGP(CarvalhoConfig(population_size=20, max_generations=3))
        result = learner.learn(source_a, source_b, links, rng=4)
        assert isinstance(result.render(), str)


class TestLinearClassifier:
    def test_learns_simple_task(self):
        source_a, source_b, links = _task()
        classifier = LinearClassifier(LinearConfig(epochs=200))
        train_f1 = classifier.learn(source_a, source_b, links, rng=1)
        assert train_f1 >= 0.95

    def test_fit_matrix_directly(self):
        rng = np.random.default_rng(0)
        x = rng.random((100, 3))
        y = x[:, 0] > 0.5  # linearly separable on feature 0
        classifier = LinearClassifier(LinearConfig(epochs=500))
        classifier.fit_matrix(x, y)
        accuracy = (classifier.predict_matrix(x) == y).mean()
        assert accuracy > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearClassifier().predict_matrix(np.zeros((1, 2)))

    def test_f_measure_on_heldout(self):
        source_a, source_b, links = _task()
        classifier = LinearClassifier()
        classifier.learn(source_a, source_b, links, rng=1)
        assert classifier.f_measure(source_a, source_b, links) >= 0.9
