"""Tests for the numeric distance."""

import pytest

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.numeric import NumericDistance, parse_number


class TestParseNumber:
    def test_plain_integer(self):
        assert parse_number("42") == 42.0

    def test_decimal_point(self):
        assert parse_number("3.5") == 3.5

    def test_decimal_comma(self):
        assert parse_number("3,5") == 3.5

    def test_negative(self):
        assert parse_number("-7") == -7.0

    def test_embedded_in_text(self):
        assert parse_number("approx. 12 units") == 12.0

    def test_scientific_notation(self):
        assert parse_number("1.5e3") == 1500.0

    def test_no_number(self):
        assert parse_number("hello") is None

    def test_empty(self):
        assert parse_number("") is None

    def test_leading_whitespace(self):
        assert parse_number("  250  ") == 250.0


class TestNumericDistance:
    def test_equal_numbers(self):
        assert NumericDistance().evaluate(("5",), ("5.0",)) == 0.0

    def test_absolute_difference(self):
        assert NumericDistance().evaluate(("3",), ("7",)) == 4.0

    def test_min_over_sets(self):
        assert NumericDistance().evaluate(("1", "10"), ("12",)) == 2.0

    def test_unparseable_is_infinite(self):
        assert NumericDistance().evaluate(("abc",), ("5",)) == INFINITE_DISTANCE

    def test_empty_is_infinite(self):
        assert NumericDistance().evaluate((), ("5",)) == INFINITE_DISTANCE

    def test_comma_and_point_formats_agree(self):
        assert NumericDistance().evaluate(("2,5 mg",), ("2.5mg",)) == 0.0
