"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def city_sources() -> tuple[DataSource, DataSource]:
    """Two tiny city sources with different schemata (the paper's
    running example: labels + coordinates)."""
    source_a = DataSource(
        "cities_a",
        [
            Entity("a:berlin", {"label": "Berlin", "point": "52.5200,13.4050"}),
            Entity("a:hamburg", {"label": "Hamburg", "point": "53.5511,9.9937"}),
            Entity("a:munich", {"label": "Munich", "point": "48.1351,11.5820"}),
            Entity("a:cologne", {"label": "Cologne", "point": "50.9375,6.9603"}),
        ],
    )
    source_b = DataSource(
        "cities_b",
        [
            Entity("b:berlin", {"name": "berlin", "coord": "POINT(13.4049 52.5201)"}),
            Entity("b:hamburg", {"name": "HAMBURG", "coord": "POINT(9.9936 53.5510)"}),
            Entity("b:munich", {"name": "munich", "coord": "POINT(11.5821 48.1350)"}),
            Entity("b:leipzig", {"name": "leipzig", "coord": "POINT(12.3731 51.3397)"}),
        ],
    )
    return source_a, source_b


@pytest.fixture
def city_links() -> ReferenceLinkSet:
    return ReferenceLinkSet(
        positive=[
            ("a:berlin", "b:berlin"),
            ("a:hamburg", "b:hamburg"),
            ("a:munich", "b:munich"),
        ],
        negative=[
            ("a:berlin", "b:hamburg"),
            ("a:hamburg", "b:munich"),
            ("a:munich", "b:leipzig"),
            ("a:cologne", "b:berlin"),
        ],
    )


@pytest.fixture
def label_comparison() -> ComparisonNode:
    """Compare lower-cased label against name with Levenshtein."""
    return ComparisonNode(
        metric="levenshtein",
        threshold=1.0,
        source=TransformationNode("lowerCase", (PropertyNode("label"),)),
        target=TransformationNode("lowerCase", (PropertyNode("name"),)),
    )


@pytest.fixture
def geo_comparison() -> ComparisonNode:
    return ComparisonNode(
        metric="geographic",
        threshold=1000.0,
        source=PropertyNode("point"),
        target=PropertyNode("coord"),
    )


@pytest.fixture
def city_rule(label_comparison, geo_comparison) -> LinkageRule:
    """The Figure 2 example: min(label similarity, geo similarity)."""
    return LinkageRule(
        AggregationNode(function="min", operators=(label_comparison, geo_comparison))
    )
