"""Documentation completeness: every public item carries a docstring.

A release-quality library documents its surface. This meta-test walks
every module under ``repro`` and asserts that modules, public classes
and public functions have docstrings — so documentation debt fails CI
instead of accumulating.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(_iter_modules())


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module_name} lacks a docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    """Classes and module-level functions must be documented.

    Methods are exempt: one-line accessors (``children()``,
    ``describe()``) explain themselves, and their contracts live in the
    class docstring.
    """
    module = importlib.import_module(module_name)
    undocumented: list[str] = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        # Only police items defined in this module (not re-exports).
        if getattr(item, "__module__", None) != module_name:
            continue
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: missing docstrings on {', '.join(sorted(undocumented))}"
    )
