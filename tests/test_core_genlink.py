"""Integration tests for the GenLink learner (Algorithm 1)."""

import random

import pytest

from repro.core.crossover import SubtreeCrossover
from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.representation import BOOLEAN
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


def _learnable_task(n: int = 24):
    """A small task solvable by a single lower-cased label comparison."""
    rng = random.Random(9)
    source_a = DataSource("A")
    source_b = DataSource("B")
    positive = []
    words = [
        "berlin", "hamburg", "munich", "cologne", "frankfurt", "stuttgart",
        "dortmund", "essen", "leipzig", "bremen", "dresden", "hannover",
        "nuremberg", "duisburg", "bochum", "wuppertal", "bielefeld", "bonn",
        "muenster", "karlsruhe", "mannheim", "augsburg", "wiesbaden", "kiel",
    ][:n]
    for i, word in enumerate(words):
        uid_a, uid_b = f"a{i}", f"b{i}"
        source_a.add(Entity(uid_a, {"label": word.capitalize(), "junk": str(i)}))
        source_b.add(
            Entity(uid_b, {"name": word.upper(), "noise": str(1000 - i)})
        )
        positive.append((uid_a, uid_b))
    negative = [
        (f"a{i}", f"b{(i + 7) % n}") for i in range(n)
    ]
    return source_a, source_b, ReferenceLinkSet(positive, negative)


class TestGenLinkConfig:
    def test_paper_defaults(self):
        config = GenLinkConfig()
        assert config.population_size == 500
        assert config.max_iterations == 50
        assert config.tournament_size == 5
        assert config.mutation_probability == 0.25
        assert config.stop_f_measure == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GenLinkConfig(population_size=1)
        with pytest.raises(ValueError):
            GenLinkConfig(mutation_probability=1.5)
        with pytest.raises(ValueError):
            GenLinkConfig(population_size=10, elitism=10)


class TestGenLinkLearning:
    def test_learns_case_normalising_rule(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=40, max_iterations=15)
        result = GenLink(config).learn(source_a, source_b, links, rng=5)
        assert result.history[-1].train_f_measure == 1.0

    def test_stops_early_at_full_f_measure(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=40, max_iterations=50)
        result = GenLink(config).learn(source_a, source_b, links, rng=5)
        assert result.stopped_early
        assert result.history[-1].iteration < 50

    def test_history_is_recorded_per_iteration(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(
            population_size=20, max_iterations=5, stop_f_measure=2.0
        )
        result = GenLink(config).learn(source_a, source_b, links, rng=1)
        assert [r.iteration for r in result.history] == [0, 1, 2, 3, 4, 5]
        assert all(r.seconds >= 0 for r in result.history)

    def test_train_f_measure_monotone_with_elitism(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(
            population_size=20, max_iterations=8, elitism=1, stop_f_measure=2.0
        )
        result = GenLink(config).learn(source_a, source_b, links, rng=2)
        scores = [r.train_f_measure for r in result.history]
        assert scores == sorted(scores)

    def test_validation_links_tracked(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=20, max_iterations=3)
        result = GenLink(config).learn(
            source_a, source_b, links, validation_links=links, rng=3
        )
        assert result.history[0].validation_f_measure is not None

    def test_requires_both_link_polarities(self):
        source_a, source_b, links = _learnable_task()
        only_positive = ReferenceLinkSet(links.positive, [])
        with pytest.raises(ValueError):
            GenLink(GenLinkConfig(population_size=10)).learn(
                source_a, source_b, only_positive
            )

    def test_deterministic_given_seed(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=20, max_iterations=4)
        result1 = GenLink(config).learn(source_a, source_b, links, rng=7)
        result2 = GenLink(config).learn(source_a, source_b, links, rng=7)
        assert result1.best_rule == result2.best_rule
        assert [r.train_f_measure for r in result1.history] == [
            r.train_f_measure for r in result2.history
        ]

    def test_representation_restriction_respected(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(
            population_size=20, max_iterations=5, representation=BOOLEAN
        )
        result = GenLink(config).learn(source_a, source_b, links, rng=1)
        assert BOOLEAN.allows(result.best_rule.root)

    def test_custom_crossover_operators(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=20, max_iterations=5)
        learner = GenLink(config, crossover_operators=[SubtreeCrossover()])
        result = learner.learn(source_a, source_b, links, rng=1)
        assert result.history  # runs to completion

    def test_no_crossover_operators_rejected(self):
        with pytest.raises(ValueError):
            GenLink(GenLinkConfig(), crossover_operators=[])

    def test_record_at_clamps_beyond_last(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=40, max_iterations=50)
        result = GenLink(config).learn(source_a, source_b, links, rng=5)
        # Early-stopped: iteration 50 resolves to the last reached record.
        assert result.record_at(50) == result.history[-1]

    def test_learned_rule_operator_counts_reported(self):
        source_a, source_b, links = _learnable_task()
        config = GenLinkConfig(population_size=20, max_iterations=3)
        result = GenLink(config).learn(source_a, source_b, links, rng=4)
        last = result.history[-1]
        assert last.comparison_count >= 1
        assert last.operator_count >= last.comparison_count
