"""Smoke tests: the fast example scripts run end to end.

Examples are the first code a new user executes; API drift that breaks
them must fail the suite. Only the sub-two-second examples run here —
the longer scenarios (movie/drug interlinking, active learning) are
exercised manually and through the benchmark suite's equivalent
drivers.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "custom_operators.py",
    "silk_interop.py",
    "baseline_comparison.py",
    "service_quickstart.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script):
    """The script exits 0 and produces output."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_exist_and_have_docstrings():
    """Every example advertised in the README exists and documents
    itself (the docstring is the usage text)."""
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith('"""'), f"{script.name} lacks a docstring"
        assert "def main(" in text, f"{script.name} lacks a main()"
