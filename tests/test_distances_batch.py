"""Batch distance-kernel parity: ``evaluate_column`` must be
bit-identical to the per-pair ``evaluate`` loop for every measure —
vectorized kernels and the generic fallback alike — including empty
value sets (``INFINITE_DISTANCE`` propagation), unparseable values,
multi-valued properties and the min-over-pairs budget."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.base import INFINITE_DISTANCE, fallback_column
from repro.distances.registry import default_registry
from repro.distances.strings import (
    BACKEND_ENV,
    StringKernelMemo,
    _rapidfuzz_levenshtein,
    string_backend,
)

_REGISTRY = default_registry()

#: Every measure with a vectorized kernel (PR 2 families plus the
#: string families).
BATCH_CAPABLE = (
    "numeric",
    "date",
    "equality",
    "geographic",
    "qgrams",
    "levenshtein",
    "normalizedLevenshtein",
    "jaro",
    "jaroWinkler",
    "jaccard",
    "dice",
    "overlap",
)

#: Measures still on the generic per-pair column path.
FALLBACK = ("softJaccard", "mongeElkan")

#: String measures whose kernels route through the
#: ``REPRO_ENGINE_STRING_BACKEND`` selection.
STRING_MEASURES = (
    "levenshtein",
    "normalizedLevenshtein",
    "jaro",
    "jaroWinkler",
    "jaccard",
    "dice",
    "overlap",
)


def _backends() -> tuple[str, ...]:
    """Backends testable in this environment (rapidfuzz only when the
    optional package is installed — CI's optional-deps leg covers it)."""
    backends = ("python", "numpy")
    if _rapidfuzz_levenshtein() is not None:
        backends += ("rapidfuzz",)
    return backends


class _backend:
    """Context manager pinning ``REPRO_ENGINE_STRING_BACKEND``."""

    def __init__(self, spec: str | None):
        self._spec = spec

    def __enter__(self):
        self._saved = os.environ.get(BACKEND_ENV)
        if self._spec is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = self._spec

    def __exit__(self, *exc_info):
        if self._saved is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = self._saved

#: Value pools chosen to hit every parse branch of every measure:
#: numbers with both decimal separators, dates in several formats, bare
#: years, WKT and lat/lon coordinates, plain words, and garbage.
_VALUES = (
    "3.5",
    "3,5 mg",
    "-17",
    "1e3",
    "1999-01-01",
    "May 6, 2000",
    "2000/05/06",
    "1987",
    "POINT(13.37 52.52)",
    "52.52,13.37",
    "48.13 11.57",
    "Berlin",
    "berlin city",
    "x",
    "not a number",
    "",
    "2000000000000",  # 13 digits: |a-b| exceeds the sentinel unclamped
    "9e999",  # parses to float('inf')
)


def _column_strategy():
    value_set = st.lists(
        st.sampled_from(_VALUES), min_size=0, max_size=3
    ).map(tuple)
    return st.lists(value_set, min_size=0, max_size=8)


def _reference(measure, columns_a, columns_b):
    """The per-pair loop the engine used before the batch API."""
    out = np.full(len(columns_a), INFINITE_DISTANCE, dtype=np.float64)
    for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
        if values_a and values_b:
            out[i] = measure.evaluate(values_a, values_b)
    return out


@pytest.mark.parametrize("name", BATCH_CAPABLE)
def test_batch_capable_flag(name):
    assert _REGISTRY.get(name).batch_capable


@pytest.mark.parametrize("name", FALLBACK)
def test_fallback_measures_not_flagged(name):
    assert not _REGISTRY.get(name).batch_capable


@pytest.mark.parametrize("name", BATCH_CAPABLE + FALLBACK)
@given(columns=st.tuples(_column_strategy(), _column_strategy()))
@settings(max_examples=40, deadline=None)
def test_evaluate_column_matches_per_pair(name, columns):
    columns_a, columns_b = columns
    n = min(len(columns_a), len(columns_b))
    columns_a, columns_b = columns_a[:n], columns_b[:n]
    measure = _REGISTRY.get(name)
    batch = measure.evaluate_column(columns_a, columns_b)
    expected = _reference(measure, columns_a, columns_b)
    assert batch.dtype == np.float64
    # Bit-identical, not approximately equal: the engine caches these
    # columns and guarantees byte-identical scores across code paths.
    np.testing.assert_array_equal(batch, expected)


@pytest.mark.parametrize("name", BATCH_CAPABLE + FALLBACK)
def test_empty_value_sets_propagate_infinite(name):
    measure = _REGISTRY.get(name)
    columns_a = [(), ("3.5",), ()]
    columns_b = [("3.5",), (), ()]
    out = measure.evaluate_column(columns_a, columns_b)
    assert (out == INFINITE_DISTANCE).all()


@pytest.mark.parametrize("name", BATCH_CAPABLE + FALLBACK)
def test_empty_columns(name):
    out = _REGISTRY.get(name).evaluate_column([], [])
    assert out.shape == (0,)
    assert out.dtype == np.float64


def test_huge_differences_clamp_to_sentinel():
    """The scalar min-over-pairs loop never returns more than the
    INFINITE_DISTANCE sentinel it starts from; the vectorized singleton
    path must clamp identically (13-digit values, inf parses)."""
    measure = _REGISTRY.get("numeric")
    columns_a = [("2000000000000",), ("9e999",), ("1",)]
    columns_b = [("0",), ("1",), ("9e999",)]
    batch = measure.evaluate_column(columns_a, columns_b)
    expected = _reference(measure, columns_a, columns_b)
    np.testing.assert_array_equal(batch, expected)
    assert (batch == INFINITE_DISTANCE).all()


def test_min_over_pairs_budget_parity():
    """Value sets big enough to exhaust the 256-pair budget must agree
    between batch and scalar paths (the budget truncates the cross
    product deterministically)."""
    measure = _REGISTRY.get("numeric")
    values_a = tuple(str(i) for i in range(40))
    values_b = tuple(str(1000 - i) for i in range(40))  # 1600 pairs > 256
    batch = measure.evaluate_column([values_a], [values_b])
    assert batch[0] == measure.evaluate(values_a, values_b)


def test_column_length_mismatch_rejected():
    measure = _REGISTRY.get("numeric")
    with pytest.raises(ValueError, match="length mismatch"):
        measure.evaluate_column([("1",)], [])
    with pytest.raises(ValueError, match="length mismatch"):
        fallback_column(measure.evaluate, [("1",)], [])


#: Adversarial string pool for the string-kernel parity tests: empty
#: strings, non-ASCII and combining marks (precomposed e-acute vs
#: e + U+0301 must stay distinct characters), astral-plane code points,
#: strings far longer than the levenshtein band, and near-duplicates
#: that stress the early-exit and transposition paths.
_STRING_VALUES = (
    "",
    "a",
    "ab",
    "café",          # precomposed e-acute
    "café",          # e + combining acute: different code points
    "\U0001F600 emoji",
    "Berlin",
    "berlin",
    "berlin city centre",
    "x" * 40,              # far beyond the default band (max_bound=11)
    "x" * 39 + "y",
    "kitten",
    "sitting",
    "the quick brown fox jumps over the lazy dog",
    "quick the fox brown jumps lazy the over dog",
)


def _string_column_strategy():
    value_set = st.lists(
        st.sampled_from(_STRING_VALUES), min_size=0, max_size=3
    ).map(tuple)
    return st.lists(value_set, min_size=0, max_size=8)


@pytest.mark.parametrize("name", STRING_MEASURES)
@given(columns=st.tuples(_string_column_strategy(), _string_column_strategy()))
@settings(max_examples=40, deadline=None)
def test_string_kernels_match_scalar_on_all_backends(name, columns):
    """Batch/scalar bit-parity for the string kernels over adversarial
    inputs, on every backend available in this environment, with and
    without the session memo."""
    columns_a, columns_b = columns
    n = min(len(columns_a), len(columns_b))
    columns_a, columns_b = columns_a[:n], columns_b[:n]
    measure = _REGISTRY.get(name)
    expected = _reference(measure, columns_a, columns_b)
    memo = StringKernelMemo()
    for backend in _backends():
        with _backend(backend):
            plain = measure.evaluate_column(columns_a, columns_b)
            memoised = measure.evaluate_column(columns_a, columns_b, memo=memo)
        np.testing.assert_array_equal(plain, expected, err_msg=backend)
        np.testing.assert_array_equal(memoised, expected, err_msg=backend)


@pytest.mark.parametrize("name", STRING_MEASURES)
def test_string_measures_are_memo_capable(name):
    assert _REGISTRY.get(name).memo_capable


def test_backend_resolution():
    with _backend(None):
        assert string_backend() == "numpy"
    with _backend("python"):
        assert string_backend() == "python"
    with _backend("nonsense"):
        with pytest.raises(ValueError, match="nonsense"):
            string_backend()
    if _rapidfuzz_levenshtein() is None:
        with _backend("auto"):
            assert string_backend() == "numpy"
        with _backend("rapidfuzz"):
            with pytest.raises(RuntimeError, match="not installed"):
                string_backend()
    else:
        with _backend("auto"):
            assert string_backend() == "rapidfuzz"


def test_routing_counters_split_batch_and_fallback():
    """Singleton pairs count as batch, multi-valued combos as fallback,
    empty rows as neither; the python backend is all-fallback."""
    measure = _REGISTRY.get("levenshtein")
    columns_a = [("kitten",), ("a", "b"), (), ("kitten",)]
    columns_b = [("sitting",), ("c",), ("x",), ("sitting",)]
    memo = StringKernelMemo()
    with _backend("numpy"):
        measure.evaluate_column(columns_a, columns_b, memo=memo)
    assert memo.routing() == (("levenshtein", 2, 1),)
    with _backend("python"):
        measure.evaluate_column(columns_a, columns_b, memo=memo)
    assert memo.routing() == (("levenshtein", 2, 4),)


def test_string_memo_tables_are_bounded():
    memo = StringKernelMemo(limit=4)
    for i in range(10):
        memo.codes(str(i))
    assert len(memo._codes) <= 4
    keep_alive = [tuple([f"token{i}"]) for i in range(10)]
    for values in keep_alive:
        memo.token_sets([values])
    assert len(memo._token_sets) <= 4


def test_fallback_deduplicates_repeated_value_sets():
    """The generic fallback evaluates each distinct value-set
    combination once — repeated tuples (the engine's per-unique-entity
    columns) must not trigger repeated evaluation."""
    calls = []

    def spy(values_a, values_b):
        calls.append((values_a, values_b))
        return 1.0

    shared_a = ("x",)
    shared_b = ("y",)
    out = fallback_column(spy, [shared_a] * 5, [shared_b] * 5)
    assert len(calls) == 1
    assert (out == 1.0).all()
