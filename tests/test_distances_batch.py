"""Batch distance-kernel parity: ``evaluate_column`` must be
bit-identical to the per-pair ``evaluate`` loop for every measure —
vectorized kernels and the generic fallback alike — including empty
value sets (``INFINITE_DISTANCE`` propagation), unparseable values,
multi-valued properties and the min-over-pairs budget."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.base import INFINITE_DISTANCE, fallback_column
from repro.distances.registry import default_registry

_REGISTRY = default_registry()

#: Every measure the ISSUE requires a vectorized kernel for.
BATCH_CAPABLE = ("numeric", "date", "equality", "geographic", "qgrams")

#: Representative fallback measures (inherit the generic column path).
FALLBACK = ("levenshtein", "jaccard", "softJaccard", "jaroWinkler")

#: Value pools chosen to hit every parse branch of every measure:
#: numbers with both decimal separators, dates in several formats, bare
#: years, WKT and lat/lon coordinates, plain words, and garbage.
_VALUES = (
    "3.5",
    "3,5 mg",
    "-17",
    "1e3",
    "1999-01-01",
    "May 6, 2000",
    "2000/05/06",
    "1987",
    "POINT(13.37 52.52)",
    "52.52,13.37",
    "48.13 11.57",
    "Berlin",
    "berlin city",
    "x",
    "not a number",
    "",
    "2000000000000",  # 13 digits: |a-b| exceeds the sentinel unclamped
    "9e999",  # parses to float('inf')
)


def _column_strategy():
    value_set = st.lists(
        st.sampled_from(_VALUES), min_size=0, max_size=3
    ).map(tuple)
    return st.lists(value_set, min_size=0, max_size=8)


def _reference(measure, columns_a, columns_b):
    """The per-pair loop the engine used before the batch API."""
    out = np.full(len(columns_a), INFINITE_DISTANCE, dtype=np.float64)
    for i, (values_a, values_b) in enumerate(zip(columns_a, columns_b)):
        if values_a and values_b:
            out[i] = measure.evaluate(values_a, values_b)
    return out


@pytest.mark.parametrize("name", BATCH_CAPABLE)
def test_batch_capable_flag(name):
    assert _REGISTRY.get(name).batch_capable


@pytest.mark.parametrize("name", FALLBACK)
def test_fallback_measures_not_flagged(name):
    assert not _REGISTRY.get(name).batch_capable


@pytest.mark.parametrize("name", BATCH_CAPABLE + FALLBACK)
@given(columns=st.tuples(_column_strategy(), _column_strategy()))
@settings(max_examples=40, deadline=None)
def test_evaluate_column_matches_per_pair(name, columns):
    columns_a, columns_b = columns
    n = min(len(columns_a), len(columns_b))
    columns_a, columns_b = columns_a[:n], columns_b[:n]
    measure = _REGISTRY.get(name)
    batch = measure.evaluate_column(columns_a, columns_b)
    expected = _reference(measure, columns_a, columns_b)
    assert batch.dtype == np.float64
    # Bit-identical, not approximately equal: the engine caches these
    # columns and guarantees byte-identical scores across code paths.
    np.testing.assert_array_equal(batch, expected)


@pytest.mark.parametrize("name", BATCH_CAPABLE + FALLBACK)
def test_empty_value_sets_propagate_infinite(name):
    measure = _REGISTRY.get(name)
    columns_a = [(), ("3.5",), ()]
    columns_b = [("3.5",), (), ()]
    out = measure.evaluate_column(columns_a, columns_b)
    assert (out == INFINITE_DISTANCE).all()


@pytest.mark.parametrize("name", BATCH_CAPABLE + FALLBACK)
def test_empty_columns(name):
    out = _REGISTRY.get(name).evaluate_column([], [])
    assert out.shape == (0,)
    assert out.dtype == np.float64


def test_huge_differences_clamp_to_sentinel():
    """The scalar min-over-pairs loop never returns more than the
    INFINITE_DISTANCE sentinel it starts from; the vectorized singleton
    path must clamp identically (13-digit values, inf parses)."""
    measure = _REGISTRY.get("numeric")
    columns_a = [("2000000000000",), ("9e999",), ("1",)]
    columns_b = [("0",), ("1",), ("9e999",)]
    batch = measure.evaluate_column(columns_a, columns_b)
    expected = _reference(measure, columns_a, columns_b)
    np.testing.assert_array_equal(batch, expected)
    assert (batch == INFINITE_DISTANCE).all()


def test_min_over_pairs_budget_parity():
    """Value sets big enough to exhaust the 256-pair budget must agree
    between batch and scalar paths (the budget truncates the cross
    product deterministically)."""
    measure = _REGISTRY.get("numeric")
    values_a = tuple(str(i) for i in range(40))
    values_b = tuple(str(1000 - i) for i in range(40))  # 1600 pairs > 256
    batch = measure.evaluate_column([values_a], [values_b])
    assert batch[0] == measure.evaluate(values_a, values_b)


def test_column_length_mismatch_rejected():
    measure = _REGISTRY.get("numeric")
    with pytest.raises(ValueError, match="length mismatch"):
        measure.evaluate_column([("1",)], [])
    with pytest.raises(ValueError, match="length mismatch"):
        fallback_column(measure.evaluate, [("1",)], [])


def test_fallback_deduplicates_repeated_value_sets():
    """The generic fallback evaluates each distinct value-set
    combination once — repeated tuples (the engine's per-unique-entity
    columns) must not trigger repeated evaluation."""
    calls = []

    def spy(values_a, values_b):
        calls.append((values_a, values_b))
        return 1.0

    shared_a = ("x",)
    shared_b = ("y",)
    out = fallback_column(spy, [shared_a] * 5, [shared_b] * 5)
    assert len(calls) == 1
    assert (out == 1.0).all()
