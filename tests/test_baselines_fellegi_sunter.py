"""Tests for the Fellegi-Sunter baseline (repro.baselines.fellegi_sunter)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fellegi_sunter import (
    FellegiSunterClassifier,
    FellegiSunterConfig,
    log_likelihood_ratio,
)


def separable_data():
    matrix = np.array(
        [[0.9, 0.2], [0.95, 0.8], [0.85, 0.4], [0.99, 0.6],
         [0.1, 0.7], [0.2, 0.3], [0.15, 0.9], [0.05, 0.1]]
    )
    labels = np.array([True, True, True, True, False, False, False, False])
    return matrix, labels


class TestWeights:
    def test_log_likelihood_ratio_signs(self):
        agree, disagree = log_likelihood_ratio(m=0.95, u=0.05)
        assert agree > 0.0
        assert disagree < 0.0

    def test_uninformative_indicator_is_zero(self):
        agree, disagree = log_likelihood_ratio(m=0.5, u=0.5)
        assert agree == pytest.approx(0.0)
        assert disagree == pytest.approx(0.0)

    def test_degenerate_probability_raises(self):
        with pytest.raises(ValueError):
            log_likelihood_ratio(m=1.0, u=0.1)
        with pytest.raises(ValueError):
            log_likelihood_ratio(m=0.9, u=0.0)

    def test_fitted_weights_favor_informative_feature(self):
        matrix, labels = separable_data()
        model = FellegiSunterClassifier()
        model.fit_matrix(matrix, labels)
        assert model.log_agree is not None
        # Feature 0 separates, feature 1 does not.
        assert model.log_agree[0] > model.log_agree[1]

    def test_smoothing_keeps_weights_finite(self):
        matrix, labels = separable_data()
        model = FellegiSunterClassifier()
        model.fit_matrix(matrix, labels)
        assert model.log_agree is not None and model.log_disagree is not None
        assert np.isfinite(model.log_agree).all()
        assert np.isfinite(model.log_disagree).all()


class TestFitPredict:
    def test_perfect_fit_on_separable_data(self):
        matrix, labels = separable_data()
        model = FellegiSunterClassifier()
        model.fit_matrix(matrix, labels)
        assert (model.predict_matrix(matrix) == labels).all()

    def test_single_class_training_raises(self):
        matrix = np.random.default_rng(0).random((6, 2))
        model = FellegiSunterClassifier()
        with pytest.raises(ValueError, match="matches and non-matches"):
            model.fit_matrix(matrix, np.ones(6, dtype=bool))

    def test_shape_mismatch_raises(self):
        model = FellegiSunterClassifier()
        with pytest.raises(ValueError, match="label count"):
            model.fit_matrix(np.zeros((3, 2)), np.zeros(4, dtype=bool))

    def test_predict_before_fit_raises(self):
        model = FellegiSunterClassifier()
        with pytest.raises(RuntimeError, match="not trained"):
            model.predict_matrix(np.zeros((1, 2)))

    def test_scores_are_llr_sums(self):
        matrix, labels = separable_data()
        config = FellegiSunterConfig(agreement_threshold=0.5)
        model = FellegiSunterClassifier(config)
        model.fit_matrix(matrix, labels)
        scores = model.score_matrix(matrix)
        assert model.log_agree is not None and model.log_disagree is not None
        i = 0
        expected = 0.0
        for j in range(matrix.shape[1]):
            if matrix[i, j] >= 0.5:
                expected += model.log_agree[j]
            else:
                expected += model.log_disagree[j]
        assert scores[i] == pytest.approx(expected)

    def test_agreement_threshold_changes_binarisation(self):
        matrix, labels = separable_data()
        strict = FellegiSunterClassifier(
            FellegiSunterConfig(agreement_threshold=0.97)
        )
        strict.fit_matrix(matrix, labels)
        # Only one row exceeds 0.97 on feature 0, so strict binarisation
        # weakens the m estimate versus the default threshold.
        default = FellegiSunterClassifier()
        default.fit_matrix(matrix, labels)
        assert strict.log_agree[0] != pytest.approx(default.log_agree[0])


class TestLearnOnSources:
    def test_learn_cities(self, city_sources):
        from repro.data.reference_links import ReferenceLinkSet

        source_a, source_b = city_sources
        links = ReferenceLinkSet(
            positive=[
                ("a:berlin", "b:berlin"),
                ("a:hamburg", "b:hamburg"),
                ("a:munich", "b:munich"),
            ],
            negative=[
                ("a:berlin", "b:hamburg"),
                ("a:hamburg", "b:munich"),
                ("a:munich", "b:leipzig"),
                ("a:cologne", "b:berlin"),
            ],
        )
        model = FellegiSunterClassifier()
        f1 = model.learn(source_a, source_b, links, rng=5)
        assert f1 >= 0.8
        table = model.weight_table()
        assert "decision threshold" in table


# -- property-based -----------------------------------------------------------


@given(
    m=st.floats(min_value=0.01, max_value=0.99),
    u=st.floats(min_value=0.01, max_value=0.99),
)
@settings(max_examples=60, deadline=None)
def test_weight_ordering_follows_m_vs_u(m, u):
    agree, disagree = log_likelihood_ratio(m, u)
    if m > u:
        assert agree > 0.0 and disagree < 0.0
    elif m < u:
        assert agree < 0.0 and disagree > 0.0
    assert math.isfinite(agree) and math.isfinite(disagree)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_training_f1_beats_all_positive_predictor(seed):
    """The chosen decision threshold is at least as good (train F1) as
    predicting every pair as a match."""
    from repro.core.fitness import confusion_counts

    rng = np.random.default_rng(seed)
    matrix = rng.random((40, 3))
    labels = matrix[:, 0] > 0.5
    if labels.all() or not labels.any():
        labels[0] = not labels[0]
    model = FellegiSunterClassifier()
    model.fit_matrix(matrix, labels)
    f1_model = confusion_counts(model.predict_matrix(matrix), labels).f_measure()
    f1_all = confusion_counts(np.ones_like(labels), labels).f_measure()
    assert f1_model >= f1_all - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    threshold=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=25, deadline=None)
def test_scores_deterministic(seed, threshold):
    rng = np.random.default_rng(seed)
    matrix = rng.random((20, 2))
    labels = matrix[:, 0] > 0.5
    if labels.all() or not labels.any():
        labels[0] = not labels[0]
    model = FellegiSunterClassifier(
        FellegiSunterConfig(agreement_threshold=threshold)
    )
    model.fit_matrix(matrix, labels)
    assert np.array_equal(model.score_matrix(matrix), model.score_matrix(matrix))
