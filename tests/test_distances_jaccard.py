"""Tests for the Jaccard distance."""

import pytest

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.jaccard import JaccardDistance, jaccard_distance


class TestJaccardDistance:
    def test_identical_sets(self):
        assert jaccard_distance(("a", "b"), ("a", "b")) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_distance(("a",), ("b",)) == 1.0

    def test_half_overlap(self):
        # {a,b} vs {b,c}: intersection 1, union 3
        assert jaccard_distance(("a", "b"), ("b", "c")) == pytest.approx(2 / 3)

    def test_subset(self):
        assert jaccard_distance(("a",), ("a", "b")) == pytest.approx(0.5)

    def test_duplicates_ignored(self):
        assert jaccard_distance(("a", "a", "b"), ("a", "b")) == 0.0

    def test_empty_left_infinite(self):
        assert jaccard_distance((), ("a",)) == INFINITE_DISTANCE

    def test_empty_right_infinite(self):
        assert jaccard_distance(("a",), ()) == INFINITE_DISTANCE

    def test_symmetry(self):
        d1 = jaccard_distance(("a", "b", "c"), ("b", "d"))
        d2 = jaccard_distance(("b", "d"), ("a", "b", "c"))
        assert d1 == d2

    def test_case_sensitive(self):
        assert jaccard_distance(("Berlin",), ("berlin",)) == 1.0

    def test_measure_wrapper(self):
        measure = JaccardDistance()
        assert measure.evaluate(("x", "y"), ("y", "x")) == 0.0
        assert measure.name == "jaccard"
