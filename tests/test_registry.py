"""The rule registry: reference grammar, immutable versioned lineages,
activation pointers, concurrency, and schema migration."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.core.serialization import rule_to_dict
from repro.matching.incremental import dataset_rule
from repro.registry import (
    CorruptVersion,
    MigrationError,
    NoActivation,
    RefError,
    RuleRef,
    RuleRegistry,
    UnknownLineage,
    UnknownVersion,
    auto_patch,
    check_rule,
    migrate_version,
    rule_content_hash,
)


def _comparison(prop_a: str, prop_b: str, metric: str = "levenshtein"):
    return ComparisonNode(
        metric,
        1.0,
        TransformationNode("lowerCase", (PropertyNode(prop_a),)),
        TransformationNode("lowerCase", (PropertyNode(prop_b),)),
    )


def _two_way_rule() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "wmean",
            (_comparison("name", "name"), _comparison("city", "city")),
        )
    )


# -- reference grammar -----------------------------------------------------
def test_ref_parse_round_trips():
    ref = RuleRef.parse("acme/restaurants/base@v3")
    assert (ref.tenant, ref.scenario, ref.name, ref.version) == (
        "acme", "restaurants", "base", 3,
    )
    assert ref.pinned
    assert ref.lineage == "acme/restaurants/base"
    assert str(ref) == "acme/restaurants/base@v3"
    assert RuleRef.parse(str(ref)) == ref


def test_ref_active_and_bare_are_unpinned():
    for text in ("acme/restaurants/base", "acme/restaurants/base@active"):
        ref = RuleRef.parse(text)
        assert ref.version is None and not ref.pinned
        assert str(ref) == "acme/restaurants/base@active"


def test_ref_at_pins_a_version():
    ref = RuleRef.parse("acme/restaurants/base@active").at(7)
    assert ref.pinned and str(ref) == "acme/restaurants/base@v7"


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "acme",
        "acme/restaurants",
        "acme/restaurants/base/extra",
        "acme//base",
        "-acme/restaurants/base",
        "acme/restaurants/base@v0",
        "acme/restaurants/base@v01",
        "acme/restaurants/base@latest",
        "acme/rest aurants/base",
        "acme/restaurants/ba$e",
    ],
)
def test_ref_rejects_malformed_text(bad):
    with pytest.raises(RefError):
        RuleRef.parse(bad)


def test_ref_parse_is_idempotent_for_ref_values():
    ref = RuleRef.parse("a/b/c@v2")
    assert RuleRef.parse(ref) is ref


# -- publish / resolve / activate ------------------------------------------
def test_publish_assigns_sequential_versions(tmp_path):
    registry = RuleRegistry(tmp_path)
    ref = RuleRef.parse("acme/rest/base")
    v1 = registry.publish(ref, dataset_rule("restaurant"))
    v2 = registry.publish(ref, _two_way_rule())
    assert (v1.version, v2.version) == (1, 2)
    assert str(v1.ref) == "acme/rest/base@v1"
    assert registry.resolve("acme/rest/base@v2").rule_hash == v2.rule_hash


def test_publish_normalises_dict_and_hashes_content(tmp_path):
    registry = RuleRegistry(tmp_path)
    rule = dataset_rule("restaurant")
    version = registry.publish("acme/rest/base", rule_to_dict(rule))
    assert version.rule == rule_to_dict(rule)
    assert version.rule_hash == rule_content_hash(rule_to_dict(rule))
    assert version.linkage_rule() == rule


def test_resolve_unknown_lineage_and_version(tmp_path):
    registry = RuleRegistry(tmp_path)
    with pytest.raises(UnknownLineage):
        registry.resolve("acme/rest/base@v1")
    registry.publish("acme/rest/base", dataset_rule("restaurant"))
    with pytest.raises(UnknownVersion):
        registry.resolve("acme/rest/base@v9")


def test_active_requires_activation(tmp_path):
    registry = RuleRegistry(tmp_path)
    registry.publish("acme/rest/base", dataset_rule("restaurant"))
    assert registry.active_version("acme/rest/base") is None
    with pytest.raises(NoActivation):
        registry.resolve("acme/rest/base@active")
    registry.activate("acme/rest/base@v1")
    assert registry.active_version("acme/rest/base") == 1
    assert registry.resolve("acme/rest/base@active").version == 1


def test_activate_rejects_unpinned_and_unknown(tmp_path):
    registry = RuleRegistry(tmp_path)
    registry.publish("acme/rest/base", dataset_rule("restaurant"))
    with pytest.raises(RefError):
        registry.activate("acme/rest/base@active")
    with pytest.raises(UnknownVersion):
        registry.activate("acme/rest/base@v4")


def test_corrupt_version_detected_on_load(tmp_path):
    registry = RuleRegistry(tmp_path)
    version = registry.publish("acme/rest/base", dataset_rule("restaurant"))
    path = (
        tmp_path / "acme" / "rest" / "base" / "versions" / "v000001.json"
    )
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["rule"]["linkageRule"]["threshold"] = 0.123
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(CorruptVersion):
        registry.resolve(version.ref)


def test_lineages_and_describe(tmp_path):
    registry = RuleRegistry(tmp_path)
    registry.publish("acme/rest/base", dataset_rule("restaurant"))
    registry.publish("acme/rest/alt", dataset_rule("restaurant"))
    registry.publish("globex/movies/base", dataset_rule("restaurant"))
    all_refs = [ref.lineage for ref in registry.lineages()]
    assert all_refs == [
        "acme/rest/alt", "acme/rest/base", "globex/movies/base",
    ]
    acme = [ref.lineage for ref in registry.lineages("acme")]
    assert acme == ["acme/rest/alt", "acme/rest/base"]
    summary = registry.describe()
    assert summary["lineages"] == 3 and summary["versions"] == 3


def test_diff_between_versions(tmp_path):
    registry = RuleRegistry(tmp_path)
    registry.publish("acme/rest/base", dataset_rule("restaurant"))
    registry.publish("acme/rest/base", _two_way_rule())
    registry.publish("acme/rest/base", dataset_rule("restaurant"))
    assert registry.diff("acme/rest/base@v1", "acme/rest/base@v3") == []
    lines = registry.diff("acme/rest/base@v1", "acme/rest/base@v2")
    assert any(line.startswith("+") for line in lines)
    assert any("city" in line for line in lines)


# -- concurrency -----------------------------------------------------------
def test_racing_publishers_get_distinct_versions(tmp_path):
    registry = RuleRegistry(tmp_path)
    results: list[int] = []
    errors: list[Exception] = []
    barrier = threading.Barrier(8)

    def publish(index: int) -> None:
        rule = LinkageRule(_comparison("name", "name", "levenshtein"))
        try:
            barrier.wait()
            version = registry.publish(
                "acme/rest/base", rule, provenance={"publisher": index}
            )
            results.append(version.version)
        except Exception as error:  # pragma: no cover - fail loudly below
            errors.append(error)

    threads = [
        threading.Thread(target=publish, args=(i,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert sorted(results) == list(range(1, 9))
    publishers = {
        registry.resolve(f"acme/rest/base@v{n}").provenance["publisher"]
        for n in results
    }
    assert publishers == set(range(8))


def test_activation_flips_under_concurrent_readers(tmp_path):
    registry = RuleRegistry(tmp_path)
    v1 = registry.publish("acme/rest/base", dataset_rule("restaurant"))
    v2 = registry.publish("acme/rest/base", _two_way_rule())
    registry.activate(v1.ref)
    valid = {v1.rule_hash: 1, v2.rule_hash: 2}
    stop = threading.Event()
    seen: set[int] = set()
    errors: list[Exception] = []

    def read() -> None:
        try:
            while not stop.is_set():
                version = registry.resolve("acme/rest/base@active")
                # Every read is a *consistent* version: the activation
                # pointer never exposes a torn or mismatched record.
                assert valid[version.rule_hash] == version.version
                seen.add(version.version)
        except Exception as error:  # pragma: no cover
            errors.append(error)
            stop.set()

    readers = [threading.Thread(target=read) for _ in range(4)]
    for reader in readers:
        reader.start()
    for _ in range(25):
        registry.activate(v2.ref)
        registry.activate(v1.ref)
    stop.set()
    for reader in readers:
        reader.join()
    assert not errors
    assert 1 in seen  # flips end on v1; readers certainly saw it


# -- migration -------------------------------------------------------------
def test_check_rule_reports_every_gap_with_paths(tmp_path):
    rule = LinkageRule(
        AggregationNode(
            "wmean",
            (
                _comparison("name", "name"),
                _comparison("phone", "phone_no"),
            ),
        )
    )
    report = check_rule(
        rule,
        ["name", "phone_no", "city"],
        ["name", "phone_no", "city"],
    )
    assert not report.ok
    assert report.checked == 4  # distinct (side, property) pairs read
    assert [gap.side for gap in report.gaps] == ["source"]
    gap = report.gaps[0]
    assert gap.property_name == "phone"
    assert gap.path == "root.operators[1].source.inputs[0]"
    assert gap.comparison_path == "root.operators[1]"
    assert gap.suggestion == "substitute:phone_no"
    payload = report.to_payload()
    assert payload["ok"] is False
    assert payload["gaps"][0]["property"] == "phone"


def test_check_rule_ok_on_matching_schema():
    report = check_rule(dataset_rule("restaurant"), ["name"], ["name"])
    assert report.ok and report.gaps == () and report.checked == 2


def test_auto_patch_substitutes_renamed_property():
    rule = LinkageRule(_comparison("phone", "phone"))
    schema = ["name", "phone_no"]
    result = auto_patch(rule, schema, schema)
    assert any("substituted" in edit for edit in result.applied)
    assert check_rule(result.rule, schema, schema).ok
    assert any(line.startswith("-") for line in result.diff)


def test_auto_patch_prunes_unsalvageable_comparison():
    rule = LinkageRule(
        AggregationNode(
            "wmean",
            (_comparison("name", "name"), _comparison("isbn", "isbn")),
        )
    )
    schema = ["name", "city"]
    result = auto_patch(rule, schema, schema)
    assert any(edit.startswith("pruned") for edit in result.applied)
    assert check_rule(result.rule, schema, schema).ok
    root = result.rule.root
    assert isinstance(root, AggregationNode) and len(root.operators) == 1


def test_auto_patch_refuses_unsalvageable_rule():
    rule = LinkageRule(_comparison("isbn", "isbn"))
    with pytest.raises(MigrationError):
        auto_patch(rule, ["name"], ["name"])


def test_migrate_version_check_and_apply(tmp_path):
    registry = RuleRegistry(tmp_path)
    rule = LinkageRule(_comparison("phone", "phone"))
    version = registry.publish("acme/rest/base", rule)
    schema = ["name", "phone_no"]

    report, published = migrate_version(
        registry, version.ref, schema, schema, apply=False
    )
    assert not report.ok and published is None
    assert registry.versions("acme/rest/base")[-1].version == 1

    report, published = migrate_version(
        registry, version.ref, schema, schema, apply=True
    )
    assert not report.ok and published is not None
    assert published.version == 2
    provenance = published.provenance
    assert provenance["migrated_from"] == "acme/rest/base@v1"
    assert provenance["migration_gaps"][0]["property"] == "phone"
    assert any(
        "substituted" in edit for edit in provenance["migration_applied"]
    )
    assert check_rule(
        published.linkage_rule(), schema, schema
    ).ok


def test_migrate_version_ok_publishes_nothing(tmp_path):
    registry = RuleRegistry(tmp_path)
    version = registry.publish("acme/rest/base", dataset_rule("restaurant"))
    report, published = migrate_version(
        registry, version.ref, ["name"], ["name"], apply=True
    )
    assert report.ok and published is None
    assert len(registry.versions("acme/rest/base")) == 1
