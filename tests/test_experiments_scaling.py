"""Cross-scale consistency of the experiment presets.

The bench suite's credibility rests on the reduced scales preserving
the protocol: datasets shrink proportionally but never below the link
floor, statistics stay within the published shape, and the presets are
strictly ordered in cost.
"""

from __future__ import annotations

import pytest

from repro.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.experiments.scale import BENCH, PAPER, SMOKE


class TestPresetOrdering:
    def test_cost_strictly_increases(self):
        for attribute in ("dataset_scale", "population_size", "max_iterations",
                          "runs"):
            values = [getattr(scale, attribute) for scale in (SMOKE, BENCH, PAPER)]
            assert values == sorted(values), attribute
            assert values[0] < values[-1], attribute

    def test_paper_matches_table4(self):
        assert PAPER.population_size == 500
        assert PAPER.max_iterations == 50
        assert PAPER.runs == 10
        assert PAPER.dataset_scale == 1.0

    def test_link_floor_only_below_full_scale(self):
        # At paper scale the floor must not inflate datasets.
        assert PAPER.effective_dataset_scale(100) == 1.0
        # At bench scale a 100-link dataset is not shrunk below 100.
        assert BENCH.effective_dataset_scale(100) == 1.0
        # ...but large datasets still shrink.
        assert BENCH.effective_dataset_scale(2000) == pytest.approx(
            BENCH.dataset_scale, abs=0.05
        )


class TestDatasetScaling:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_entity_counts_scale_proportionally(self, name):
        small = load_dataset(name, seed=5, scale=0.1)
        large = load_dataset(name, seed=5, scale=0.3)
        assert len(large.source_a) > len(small.source_a)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_property_counts_stable_across_scales(self, name):
        """Table 6's property counts are a schema property, not a
        sample-size property — scaling must not change them much."""
        spec = dataset_spec(name)
        small = load_dataset(name, seed=5, scale=0.15)
        measured = small.source_a.property_count()
        assert measured == pytest.approx(spec.properties_a, abs=2)

    def test_same_seed_same_dataset(self):
        first = load_dataset("restaurant", seed=11, scale=0.1)
        second = load_dataset("restaurant", seed=11, scale=0.1)
        assert [e.uid for e in first.source_a] == [e.uid for e in second.source_a]
        assert first.links.positive == second.links.positive

    def test_different_seed_different_noise(self):
        first = load_dataset("restaurant", seed=1, scale=0.1)
        second = load_dataset("restaurant", seed=2, scale=0.1)
        values_first = [e.values("name") for e in first.source_a]
        values_second = [e.values("name") for e in second.source_a]
        assert values_first != values_second

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_positive_and_negative_links_balanced(self, name):
        """The paper generates one negative per positive (Section 6.1)."""
        dataset = load_dataset(name, seed=7, scale=0.1)
        assert len(dataset.links.negative) == len(dataset.links.positive)
