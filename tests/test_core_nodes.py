"""Tests for the linkage rule operator tree."""

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
    collect_nodes,
    iter_nodes,
    replace_node,
)


def _simple_rule_root() -> AggregationNode:
    return AggregationNode(
        function="min",
        operators=(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("lowerCase", (PropertyNode("label"),)),
                target=PropertyNode("name"),
            ),
            ComparisonNode(
                metric="geographic",
                threshold=1000.0,
                source=PropertyNode("point"),
                target=PropertyNode("coord"),
            ),
        ),
    )


class TestNodeConstruction:
    def test_property_is_leaf(self):
        assert PropertyNode("x").children() == ()

    def test_transformation_requires_inputs(self):
        with pytest.raises(ValueError):
            TransformationNode("lowerCase", ())

    def test_comparison_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            ComparisonNode("levenshtein", -1.0, PropertyNode("a"), PropertyNode("b"))

    def test_comparison_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            ComparisonNode(
                "levenshtein", 1.0, PropertyNode("a"), PropertyNode("b"), weight=0
            )

    def test_aggregation_requires_operators(self):
        with pytest.raises(ValueError):
            AggregationNode("min", ())

    def test_nodes_are_hashable(self):
        node = _simple_rule_root()
        assert hash(node) == hash(_simple_rule_root())

    def test_nodes_are_frozen(self):
        node = PropertyNode("x")
        with pytest.raises(AttributeError):
            node.property_name = "y"  # type: ignore[misc]


class TestOperatorCount:
    def test_property_counts_one(self):
        assert PropertyNode("x").operator_count() == 1

    def test_full_tree_count(self):
        # agg + 2 comparisons + 1 transformation + 4 properties = 8
        assert _simple_rule_root().operator_count() == 8

    def test_nested_transformations(self):
        node = TransformationNode(
            "lowerCase", (TransformationNode("tokenize", (PropertyNode("x"),)),)
        )
        assert node.operator_count() == 3


class TestTraversal:
    def test_iter_nodes_preorder(self):
        root = _simple_rule_root()
        nodes = list(iter_nodes(root))
        assert nodes[0] is root
        assert len(nodes) == 8

    def test_collect_nodes_by_type(self):
        root = _simple_rule_root()
        assert len(collect_nodes(root, (ComparisonNode,))) == 2
        assert len(collect_nodes(root, (PropertyNode,))) == 4
        assert len(collect_nodes(root, (TransformationNode,))) == 1
        assert len(collect_nodes(root, (AggregationNode,))) == 1


class TestReplaceNode:
    def test_replace_leaf(self):
        root = _simple_rule_root()
        old = collect_nodes(root, (PropertyNode,))[0]
        new_root = replace_node(root, old, PropertyNode("renamed"))
        properties = {
            n.property_name for n in collect_nodes(new_root, (PropertyNode,))
        }
        assert "renamed" in properties

    def test_replace_is_non_destructive(self):
        root = _simple_rule_root()
        old = collect_nodes(root, (PropertyNode,))[0]
        replace_node(root, old, PropertyNode("renamed"))
        assert "renamed" not in {
            n.property_name for n in collect_nodes(root, (PropertyNode,))
        }

    def test_replace_root(self):
        root = _simple_rule_root()
        new = PropertyNode("whole")
        assert replace_node(root, root, new) is new

    def test_replace_by_identity_targets_specific_twin(self):
        twin_a = PropertyNode("same")
        twin_b = PropertyNode("same")
        root = ComparisonNode("levenshtein", 1.0, twin_a, twin_b)
        new_root = replace_node(root, twin_b, PropertyNode("other"))
        # Identity match replaces the first identical twin encountered
        # in pre-order; equality fallback makes either acceptable, but
        # exactly one must change.
        assert isinstance(new_root, ComparisonNode)
        names = [new_root.source.property_name, new_root.target.property_name]
        assert sorted(names) == ["other", "same"]

    def test_replace_missing_returns_equal_tree(self):
        root = _simple_rule_root()
        result = replace_node(root, PropertyNode("not-there"), PropertyNode("x"))
        assert result == root

    def test_unchanged_subtrees_shared(self):
        root = _simple_rule_root()
        old = collect_nodes(root, (PropertyNode,))[-1]
        new_root = replace_node(root, old, PropertyNode("renamed"))
        # The untouched first comparison is reused, not copied.
        assert new_root.operators[0] is root.operators[0]
