"""Tests for Jaro and Jaro-Winkler similarity."""

import pytest

from repro.distances.jaro import (
    JaroDistance,
    JaroWinklerDistance,
    jaro_similarity,
    jaro_winkler_similarity,
)


class TestJaroSimilarity:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_martha_marhta(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_classic_dixon_dicksonx(self):
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)

    def test_no_match(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty_string(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_symmetry(self):
        assert jaro_similarity("crate", "trace") == pytest.approx(
            jaro_similarity("trace", "crate")
        )

    def test_range(self):
        for a, b in [("a", "b"), ("ab", "ba"), ("hello", "hallo")]:
            assert 0.0 <= jaro_similarity(a, b) <= 1.0


class TestJaroWinkler:
    def test_prefix_boost(self):
        base = jaro_similarity("prefixes", "prefixed")
        boosted = jaro_winkler_similarity("prefixes", "prefixed")
        assert boosted > base

    def test_identical(self):
        assert jaro_winkler_similarity("same", "same") == 1.0

    def test_no_common_prefix_equals_jaro(self):
        assert jaro_winkler_similarity("abcd", "xbcd") == pytest.approx(
            jaro_similarity("abcd", "xbcd")
        )

    def test_range(self):
        assert 0.0 <= jaro_winkler_similarity("dwayne", "duane") <= 1.0


class TestJaroMeasures:
    def test_distance_is_one_minus_similarity(self):
        measure = JaroDistance()
        assert measure.evaluate(("martha",), ("marhta",)) == pytest.approx(
            1.0 - 0.9444, abs=1e-3
        )

    def test_winkler_measure(self):
        measure = JaroWinklerDistance()
        assert measure.evaluate(("same",), ("same",)) == 0.0
