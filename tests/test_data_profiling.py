"""Tests for data source profiling (repro.data.profiling)."""

from __future__ import annotations

import pytest

from repro.data.entity import Entity
from repro.data.profiling import PropertyProfile, SourceProfile, profile_source
from repro.data.source import DataSource


def sample_source() -> DataSource:
    return DataSource(
        "shop",
        [
            Entity("e1", {"label": "iPod Nano", "sku": "A1", "price": "199"}),
            Entity("e2", {"label": "ThinkPad", "sku": "A2", "price": "899"}),
            Entity("e3", {"label": "iPod Nano", "sku": "A3"}),
            Entity("e4", {"label": ("Galaxy", "Note"), "sku": "A4"}),
        ],
    )


class TestProfileSource:
    def test_counts(self):
        profile = profile_source(sample_source())
        assert isinstance(profile, SourceProfile)
        assert profile.entity_count == 4
        assert profile.property_count == 3

    def test_coverage(self):
        profile = profile_source(sample_source())
        assert profile.property_profile("label").coverage == 1.0
        assert profile.property_profile("price").coverage == pytest.approx(0.5)

    def test_distinctness(self):
        profile = profile_source(sample_source())
        # labels: iPod Nano x2, ThinkPad, Galaxy, Note -> 4 distinct / 5
        assert profile.property_profile("label").distinctness == pytest.approx(
            4 / 5
        )
        assert profile.property_profile("sku").distinctness == 1.0

    def test_values_per_entity(self):
        profile = profile_source(sample_source())
        assert profile.property_profile("label").values_per_entity == pytest.approx(
            5 / 4
        )

    def test_numeric_ratio(self):
        profile = profile_source(sample_source())
        assert profile.property_profile("price").numeric_ratio == 1.0
        assert profile.property_profile("label").numeric_ratio == 0.0

    def test_mean_coverage_is_table6_number(self):
        profile = profile_source(sample_source())
        expected = (1.0 + 1.0 + 0.5) / 3
        assert profile.mean_coverage == pytest.approx(expected)

    def test_key_candidates(self):
        profile = profile_source(sample_source())
        assert profile.key_candidates() == ["sku"]

    def test_unknown_property_raises(self):
        profile = profile_source(sample_source())
        with pytest.raises(KeyError, match="no property"):
            profile.property_profile("missing")

    def test_empty_source(self):
        profile = profile_source(DataSource("empty", []))
        assert profile.entity_count == 0
        assert profile.properties == ()
        assert profile.mean_coverage == 0.0

    def test_render_mentions_each_property(self):
        text = profile_source(sample_source()).render()
        for name in ("label", "sku", "price"):
            assert name in text

    def test_example_truncated(self):
        source = DataSource("s", [Entity("e", {"long": "x" * 100})])
        profile = profile_source(source, max_example_length=10)
        assert len(profile.property_profile("long").example) == 10

    def test_profile_on_generated_dataset_matches_summary(self):
        """The profiler agrees with the dataset's own Table 6 summary."""
        from repro.datasets import load_dataset

        dataset = load_dataset("restaurant", seed=3, scale=0.1)
        profile = profile_source(dataset.source_a)
        summary = dataset.summary()
        assert profile.property_count == summary["properties_a"]
        assert profile.mean_coverage == pytest.approx(
            summary["coverage_a"], abs=0.02
        )
