"""Serialization round-trips under the registry's publish/load path.

Property-based: for random rule trees, ``publish -> resolve ->
linkage_rule`` must reproduce the exact tree, the content hash must be
stable across the round trip, and — the contract jobs rely on — the
compiled engine must score entity pairs *byte-identically* whether it
executes the original tree or the one rebuilt from the registry.
"""

from __future__ import annotations

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.core.serialization import rule_from_dict, rule_to_dict
from repro.data.entity import Entity
from repro.engine import EngineSession
from repro.registry import RuleRegistry, rule_content_hash

_PROPERTIES = ("name", "label", "year", "code")

_METRICS = (
    ("levenshtein", st.one_of(st.just(0.0), st.floats(0.0, 3.0))),
    ("equality", st.just(0.0)),
    ("jaccard", st.floats(0.0, 1.0)),
    ("jaro", st.floats(0.0, 0.5)),
    ("numeric", st.one_of(st.just(0.0), st.floats(0.0, 50.0))),
)

_WORDS = ("Berlin", "berlin", "New York", "beta-blocker", "1999", "12.5", "x")


def _value_strategy():
    leaf = st.sampled_from(_PROPERTIES).map(PropertyNode)
    unary = st.sampled_from(
        ("lowerCase", "upperCase", "tokenize", "stripPunctuation", "trim")
    )

    def extend(children):
        plain = st.tuples(unary, children).map(
            lambda pair: TransformationNode(pair[0], (pair[1],))
        )
        replace = children.map(
            lambda child: TransformationNode(
                "replace",
                (child,),
                params=(("replacement", " "), ("search", "-")),
            )
        )
        concat = st.tuples(children, children).map(
            lambda pair: TransformationNode("concatenate", pair)
        )
        return st.one_of(plain, replace, concat)

    return st.recursive(leaf, extend, max_leaves=4)


def _comparison_strategy():
    def build(metric_threshold, source, target, weight):
        metric, threshold = metric_threshold
        return ComparisonNode(metric, threshold, source, target, weight=weight)

    metric_threshold = st.sampled_from(_METRICS).flatmap(
        lambda pair: st.tuples(st.just(pair[0]), pair[1])
    )
    return st.builds(
        build,
        metric_threshold,
        _value_strategy(),
        _value_strategy(),
        st.integers(1, 4),
    )


def _similarity_strategy():
    def extend(children):
        return st.tuples(
            st.sampled_from(("min", "max", "wmean")),
            st.lists(children, min_size=1, max_size=3),
            st.integers(1, 4),
        ).map(lambda t: AggregationNode(t[0], tuple(t[1]), weight=t[2]))

    return st.recursive(_comparison_strategy(), extend, max_leaves=5)


def _entity_strategy(prefix: str):
    values = st.lists(st.sampled_from(_WORDS), min_size=0, max_size=2)
    props = st.fixed_dictionaries(
        {}, optional={name: values for name in _PROPERTIES}
    )
    return st.builds(
        lambda uid, properties: Entity(f"{prefix}{uid}", properties),
        st.integers(0, 5),
        props,
    )


@given(root=_similarity_strategy())
@settings(max_examples=60, deadline=None)
def test_dict_round_trip_is_exact_and_hash_stable(root):
    rule = LinkageRule(root)
    payload = rule_to_dict(rule)
    rebuilt = rule_from_dict(payload)
    assert rebuilt == rule
    assert rule_to_dict(rebuilt) == payload
    assert rule_content_hash(payload) == rule_content_hash(
        rule_to_dict(rebuilt)
    )


@given(root=_similarity_strategy())
@settings(max_examples=30, deadline=None)
def test_publish_resolve_round_trip_is_exact(root):
    rule = LinkageRule(root)
    with tempfile.TemporaryDirectory() as rules_dir:
        registry = RuleRegistry(rules_dir)
        version = registry.publish("prop/suite/rule", rule)
        loaded = registry.resolve(version.ref)
    assert loaded.linkage_rule() == rule
    assert loaded.rule_hash == rule_content_hash(rule_to_dict(rule))


@given(
    root=_similarity_strategy(),
    pairs=st.lists(
        st.tuples(_entity_strategy("a"), _entity_strategy("b")),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None)
def test_published_rule_compiles_to_byte_identical_scores(root, pairs):
    """The registry's whole reason to exist: a stored rule, loaded
    back, drives the engine to bit-identical results."""
    rule = LinkageRule(root)
    with tempfile.TemporaryDirectory() as rules_dir:
        registry = RuleRegistry(rules_dir)
        loaded = registry.publish("prop/suite/rule", rule)
        reloaded = registry.resolve(loaded.ref).linkage_rule()
    original = EngineSession().context(pairs).scores(rule.root)
    round_tripped = EngineSession().context(pairs).scores(reloaded.root)
    assert original.dtype == round_tripped.dtype
    assert np.array_equal(original, round_tripped)
