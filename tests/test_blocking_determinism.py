"""Blocking determinism: identical links whatever the execution shape.

The blocking front-end promises that generated links depend only on
(rule, sources, blocker): never on worker count, batch size, or
whether indexes came fresh, from the session memo, or from the
persistent store — and that every complete blocker agrees on the link
*set*. These tests pin that contract property-based (random sources ×
blockers × workers × batch sizes) plus targeted cases for process
pools and persisted-index invalidation on source change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodes import ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.engine.session import EngineSession
from repro.matching.blocking import (
    FullIndexBlocker,
    RuleBlocker,
    SortedNeighbourhoodBlocker,
    TokenBlocker,
)
from repro.matching.engine import MatchingEngine
from repro.matching.multiblock import MultiBlocker


def _rule() -> LinkageRule:
    return LinkageRule(
        ComparisonNode(
            "equality",
            0.0,
            TransformationNode("lowerCase", (PropertyNode("label"),)),
            TransformationNode("lowerCase", (PropertyNode("label"),)),
        )
    )


@st.composite
def _sources(draw):
    """Two sources over a shared single-word vocabulary.

    Labels are single words unique per source, so *every* blocker
    under test is complete: equal-after-lowercase pairs share a token
    (token/rule blocking), an equality block on the transformed value
    (MultiBlock), and are adjacent in the sorted key order (sorted
    neighbourhood with window >= 2).
    """
    pool = draw(
        st.lists(
            st.text(alphabet="abcd", min_size=1, max_size=5),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    labels_a = draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=len(pool), unique=True)
    )
    labels_b = draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=len(pool), unique=True)
    )
    shout_a = draw(st.booleans())
    source_a = DataSource(
        "A",
        [
            Entity(f"a{i}", {"label": label.upper() if shout_a else label})
            for i, label in enumerate(labels_a)
        ],
    )
    source_b = DataSource(
        "B", [Entity(f"b{i}", {"label": label}) for i, label in enumerate(labels_b)]
    )
    return source_a, source_b


def _blockers(rule):
    return {
        "full": lambda: FullIndexBlocker(),
        "token": lambda: TokenBlocker(["label"]),
        "rule": lambda: RuleBlocker(rule),
        "snb": lambda: SortedNeighbourhoodBlocker("label", window=4),
        "multiblock": lambda: MultiBlocker(rule),
    }


@given(sources=_sources())
@settings(max_examples=15, deadline=None)
def test_links_identical_across_blockers_workers_and_batches(sources):
    """Per blocker: identical links *and emission order* across
    workers and batch sizes; across blockers: identical link sets."""
    source_a, source_b = sources
    rule = _rule()
    link_sets = {}
    for label, make in _blockers(rule).items():
        reference = None
        for workers, batch_size in ((0, 3), (0, 1000), (2, 2), (2, 1000)):
            engine = MatchingEngine(
                blocker=make(), workers=workers, batch_size=batch_size
            )
            try:
                links = [
                    (link.uid_a, link.uid_b, link.score)
                    for link in engine.iter_links(rule, source_a, source_b)
                ]
            finally:
                engine.close()
            if reference is None:
                reference = links
            else:
                assert links == reference, (label, workers, batch_size)
        link_sets[label] = frozenset(reference)
    assert all(
        pairs == link_sets["full"] for pairs in link_sets.values()
    ), link_sets


def test_links_identical_on_process_pools():
    """The process-pool leg of the matrix (one fixed workload: pool
    startup is too slow for hypothesis examples)."""
    rule = _rule()
    source_a = DataSource(
        "A", [Entity(f"a{i}", {"label": f"WORD{i % 7}"}) for i in range(25)]
    )
    source_b = DataSource(
        "B", [Entity(f"b{i}", {"label": f"word{i % 5}"}) for i in range(25)]
    )
    for label, make in _blockers(rule).items():
        serial_engine = MatchingEngine(blocker=make(), batch_size=16)
        serial = [
            (l.uid_a, l.uid_b, l.score)
            for l in serial_engine.iter_links(rule, source_a, source_b)
        ]
        with MatchingEngine(
            blocker=make(), batch_size=16, workers="process:2"
        ) as engine:
            sharded = [
                (l.uid_a, l.uid_b, l.score)
                for l in engine.iter_links(rule, source_a, source_b)
            ]
        assert sharded == serial, label


class TestPersistedIndexInvalidation:
    def _source(self, marker: str) -> DataSource:
        return DataSource(
            "S",
            [
                Entity("e1", {"label": f"alpha {marker}"}),
                Entity("e2", {"label": "beta"}),
                Entity("e3", {"label": "alpha beta"}),
            ],
        )

    def test_token_index_invalidates_on_source_change(self, tmp_path):
        blocker = TokenBlocker(["label"])
        original = self._source("one")

        cold = EngineSession(store=str(tmp_path))
        index = blocker.build_index(original, session=cold)
        assert "one" in index
        store_stats = cold.stats().store
        # Two persisted payloads per token index: the raw (unfiltered)
        # block table plus the size-filtered view derived from it.
        assert store_stats.index_misses == 2
        assert store_stats.index_writes == 2

        # Unchanged source, fresh session: the filtered view loads from
        # the index tier directly — the raw table is never touched.
        warm = EngineSession(store=str(tmp_path))
        warm_index = blocker.build_index(original, session=warm)
        assert warm_index == index
        assert warm.stats().store.index_hits == 1
        assert warm.stats().store.index_misses == 0

        # One changed value: different fingerprint, clean miss, fresh
        # index reflecting the new content — never a stale hit.
        changed = self._source("two")
        changed_session = EngineSession(store=str(tmp_path))
        changed_index = blocker.build_index(changed, session=changed_session)
        assert "two" in changed_index and "one" not in changed_index
        assert changed_session.stats().store.index_misses == 2
        assert changed_session.stats().store.index_hits == 0

    def test_changed_source_changes_generated_links(self, tmp_path):
        rule = _rule()

        def run(source_b):
            engine = MatchingEngine(cache_dir=str(tmp_path))
            try:
                return {
                    l.as_pair()
                    for l in engine.execute(
                        rule,
                        DataSource("A", [Entity("a1", {"label": "alpha"})]),
                        source_b,
                    )
                }
            finally:
                engine.close()

        matching = DataSource("B", [Entity("b1", {"label": "ALPHA"})])
        assert run(matching) == {("a1", "b1")}
        # Same uids, different content: the persisted index for the old
        # snapshot must not leak into the new one.
        differing = DataSource("B", [Entity("b1", {"label": "gamma"})])
        assert run(differing) == set()
        # And the original snapshot still resolves (and still hits).
        assert run(matching) == {("a1", "b1")}


class TestShardContract:
    """iter_shards is the candidates stream, chunked — nothing else."""

    @pytest.mark.parametrize("batch_size", [1, 2, 5, 1000])
    def test_shards_reconcatenate_to_candidates(self, batch_size):
        rule = _rule()
        source_a = DataSource(
            "A", [Entity(f"a{i}", {"label": f"w{i % 4}"}) for i in range(12)]
        )
        source_b = DataSource(
            "B", [Entity(f"b{i}", {"label": f"w{i % 3}"}) for i in range(12)]
        )
        for label, make in _blockers(rule).items():
            blocker = make()
            expected = [
                (a.uid, b.uid) for a, b in blocker.candidates(source_a, source_b)
            ]
            shards = list(
                make().iter_shards(source_a, source_b, batch_size)
            )
            flattened = [
                (a.uid, b.uid) for shard in shards for a, b in shard
            ]
            assert flattened == expected, label
            assert all(len(shard) <= batch_size for shard in shards), label
            if expected:
                assert all(shard for shard in shards), label

    def test_invalid_batch_size_rejected(self):
        blocker = FullIndexBlocker()
        source = DataSource("A", [Entity("a1", {"label": "x"})])
        with pytest.raises(ValueError, match="batch_size"):
            blocker.iter_shards(source, source, 0)
