"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compatible import CompatibleProperty
from repro.core.crossover import default_crossover_operators
from repro.core.evaluation import PairEvaluator, evaluate_rule
from repro.core.fitness import confusion_counts
from repro.core.generation import RandomRuleGenerator
from repro.core.nodes import ComparisonNode, PropertyNode
from repro.core.representation import BOOLEAN, FULL, LINEAR, NONLINEAR
from repro.core.rule import LinkageRule, validate_tree
from repro.core.serialization import rule_from_dict, rule_to_dict
from repro.data.entity import Entity
from repro.distances.jaccard import jaccard_distance
from repro.distances.jaro import jaro_similarity, jaro_winkler_similarity
from repro.distances.levenshtein import levenshtein
from repro.transforms.stem import porter_stem

# -- strategies -----------------------------------------------------------------
text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x2FF),
    max_size=12,
)
token_sets = st.lists(text.filter(bool), min_size=1, max_size=4).map(tuple)


# -- Levenshtein metric axioms ----------------------------------------------------
class TestLevenshteinProperties:
    @given(text)
    def test_identity(self, s):
        assert levenshtein(s, s) == 0.0

    @given(text, text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(text, text)
    def test_non_negative_and_bounded(self, a, b):
        d = levenshtein(a, b)
        assert 0.0 <= d <= max(len(a), len(b))

    @given(text, text)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))

    @given(text, text, text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(text, text, st.integers(min_value=0, max_value=6))
    def test_bounded_dp_agrees_within_bound(self, a, b, bound):
        exact = levenshtein(a, b)
        banded = levenshtein(a, b, bound=bound)
        if exact <= bound:
            assert banded == exact
        else:
            assert banded > bound


class TestJaccardProperties:
    @given(token_sets)
    def test_identity(self, values):
        assert jaccard_distance(values, values) == 0.0

    @given(token_sets, token_sets)
    def test_symmetry(self, a, b):
        assert jaccard_distance(a, b) == jaccard_distance(b, a)

    @given(token_sets, token_sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard_distance(a, b) <= 1.0


class TestJaroProperties:
    @given(text, text)
    def test_bounded(self, a, b):
        assert 0.0 <= jaro_similarity(a, b) <= 1.0

    @given(text, text)
    def test_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12

    @given(text)
    def test_self_similarity(self, s):
        if s:
            assert jaro_similarity(s, s) == 1.0


ascii_words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestStemProperties:
    @given(ascii_words)
    @settings(max_examples=100)
    def test_stem_never_longer(self, word):
        assert len(porter_stem(word)) <= max(len(word), 2)

    @given(ascii_words.filter(lambda s: len(s) > 2))
    @settings(max_examples=100)
    def test_stem_nonempty(self, word):
        assert porter_stem(word)


# -- rule-level invariants ---------------------------------------------------------
def _generator(seed: int, representation=FULL) -> RandomRuleGenerator:
    return RandomRuleGenerator(
        [
            CompatibleProperty("label", "name", "levenshtein"),
            CompatibleProperty("geo", "point", "geographic"),
            CompatibleProperty("date", "released", "date"),
        ],
        random.Random(seed),
        representation=representation,
    )


class TestRandomRuleProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80)
    def test_random_rules_valid_and_serialisable(self, seed):
        rule = _generator(seed).random_rule()
        validate_tree(rule.root, expect_similarity=True)
        assert rule_from_dict(rule_to_dict(rule)) == rule

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40)
    def test_restricted_generation_stays_in_class(self, seed):
        for representation in (BOOLEAN, LINEAR, NONLINEAR):
            rule = _generator(seed, representation).random_rule()
            assert representation.allows(rule.root)


class TestCrossoverProperties:
    @given(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_offspring_always_valid_and_bounded(self, seed, operator_index):
        rng = random.Random(seed)
        generator = _generator(seed)
        rule1 = generator.random_rule()
        rule2 = generator.random_rule()
        operator = default_crossover_operators()[operator_index]
        child = operator.apply(rule1, rule2, rng, generator, FULL)
        validate_tree(child.root, expect_similarity=True)
        combined = rule1.operator_count() + rule2.operator_count()
        assert child.operator_count() <= combined + 2

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_offspring_repair_keeps_linear(self, seed):
        rng = random.Random(seed)
        generator = _generator(seed, LINEAR)
        rule1 = generator.random_rule()
        rule2 = generator.random_rule()
        for operator in default_crossover_operators():
            child = operator.apply(rule1, rule2, rng, generator, LINEAR)
            assert LINEAR.allows(child.root)


class TestEvaluationProperties:
    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=30, deadline=None)
    def test_scores_always_in_unit_interval(self, seed):
        rng = random.Random(seed)
        rule = _generator(seed).random_rule()
        pairs = []
        for i in range(6):
            pairs.append(
                (
                    Entity(f"a{i}", {"label": f"w{rng.randint(0, 3)}", "geo": "1,1"}),
                    Entity(f"b{i}", {"name": f"w{rng.randint(0, 3)}", "point": "1,1"}),
                )
            )
        scores = PairEvaluator(pairs).scores(rule.root)
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=20, deadline=None)
    def test_batch_equals_single(self, seed):
        rng = random.Random(seed)
        rule = _generator(seed).random_rule()
        pairs = [
            (
                Entity(f"a{i}", {"label": f"val{rng.randint(0, 2)}"}),
                Entity(f"b{i}", {"name": f"val{rng.randint(0, 2)}"}),
            )
            for i in range(4)
        ]
        batch = PairEvaluator(pairs).scores(rule.root)
        for i, (entity_a, entity_b) in enumerate(pairs):
            single = evaluate_rule(rule.root, entity_a, entity_b)
            assert abs(batch[i] - single) < 1e-12


class TestMetricProperties:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=30),
        st.lists(st.booleans(), min_size=1, max_size=30),
    )
    @settings(max_examples=100)
    def test_confusion_invariants(self, predictions, labels):
        n = min(len(predictions), len(labels))
        counts = confusion_counts(predictions[:n], labels[:n])
        assert counts.total == n
        assert 0.0 <= counts.f_measure() <= 1.0
        assert -1.0 <= counts.mcc() <= 1.0
        assert 0.0 <= counts.precision() <= 1.0
        assert 0.0 <= counts.recall() <= 1.0

    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    def test_perfect_predictions(self, labels):
        counts = confusion_counts(labels, labels)
        assert counts.fp == counts.fn == 0
        if any(labels) and not all(labels):
            assert counts.mcc() == 1.0
            assert counts.f_measure() == 1.0


class TestSimplificationProperties:
    """simplify_rule and structural pruning are semantics-preserving."""

    def _pairs(self, rng: random.Random):
        return [
            (
                Entity(
                    f"a{i}",
                    {
                        "label": f"word{rng.randint(0, 3)}",
                        "geo": "52.5,13.4",
                        "date": "1999-01-01",
                    },
                ),
                Entity(
                    f"b{i}",
                    {
                        "name": f"word{rng.randint(0, 3)}",
                        "point": "52.5,13.4",
                        "released": "1999-06-01",
                    },
                ),
            )
            for i in range(5)
        ]

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_simplify_rule_preserves_scores(self, seed):
        from repro.core.analysis import simplify_rule

        rng = random.Random(seed)
        rule = _generator(seed).random_rule()
        simplified = simplify_rule(rule)
        pairs = self._pairs(rng)
        evaluator = PairEvaluator(pairs)
        original = evaluator.scores(rule.root)
        reduced = evaluator.scores(simplified.root)
        assert np.allclose(original, reduced, atol=1e-12)
        assert simplified.operator_count() <= rule.operator_count()

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=40, deadline=None)
    def test_simplify_transformations_preserves_scores(self, seed):
        from repro.core.pruning import simplify_transformations

        rng = random.Random(seed)
        rule = _generator(seed).random_rule()
        simplified = simplify_transformations(rule)
        pairs = self._pairs(rng)
        evaluator = PairEvaluator(pairs)
        assert np.allclose(
            evaluator.scores(rule.root),
            evaluator.scores(simplified.root),
            atol=1e-12,
        )

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=25, deadline=None)
    def test_crossover_offspring_simplify_cleanly(self, seed):
        """Structural simplification is safe on anything crossover
        emits, not only on freshly generated rules."""
        from repro.core.analysis import simplify_rule
        from repro.core.rule import validate_tree as validate

        rng = random.Random(seed)
        generator = _generator(seed)
        rule1 = generator.random_rule()
        rule2 = generator.random_rule()
        for operator in default_crossover_operators():
            child = operator.apply(rule1, rule2, rng, generator, FULL)
            simplified = simplify_rule(child)
            validate(simplified.root, expect_similarity=True)
