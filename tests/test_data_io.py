"""Tests for data source and link I/O."""

import io

import pytest

from repro.data.entity import Entity
from repro.data.io import (
    load_links_csv,
    load_source_csv,
    load_source_jsonl,
    save_links_csv,
    save_links_ntriples,
    save_source_csv,
    save_source_jsonl,
)
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource
from repro.matching.engine import GeneratedLink


def _source() -> DataSource:
    return DataSource(
        "s",
        [
            Entity("e1", {"name": "Berlin", "synonym": ("Berlino", "Berlín")}),
            Entity("e2", {"name": "Hamburg"}),
        ],
    )


class TestSourceCsv:
    def test_round_trip(self):
        buffer = io.StringIO()
        save_source_csv(_source(), buffer)
        buffer.seek(0)
        loaded = load_source_csv(buffer, "s")
        assert len(loaded) == 2
        assert loaded.get("e1").values("synonym") == ("Berlino", "Berlín")
        assert loaded.get("e2").values("synonym") == ()

    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "source.csv"
        save_source_csv(_source(), path)
        loaded = load_source_csv(path, "s")
        assert loaded.get("e1").values("name") == ("Berlin",)

    def test_missing_uid_column(self):
        with pytest.raises(ValueError, match="id"):
            load_source_csv(io.StringIO("name\nBerlin\n"), "s")

    def test_empty_uid_rejected(self):
        with pytest.raises(ValueError, match="uid"):
            load_source_csv(io.StringIO("id,name\n,Berlin\n"), "s")

    def test_custom_uid_column(self):
        text = "uri,name\nx1,Berlin\n"
        loaded = load_source_csv(io.StringIO(text), "s", uid_column="uri")
        assert "x1" in loaded


class TestSourceJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "source.jsonl"
        save_source_jsonl(_source(), path)
        loaded = load_source_jsonl(path, "s")
        assert loaded.get("e1").values("synonym") == ("Berlino", "Berlín")

    def test_blank_lines_skipped(self):
        text = '{"id": "e1", "name": "x"}\n\n{"id": "e2", "name": "y"}\n'
        loaded = load_source_jsonl(io.StringIO(text), "s")
        assert len(loaded) == 2

    def test_missing_uid_field(self):
        with pytest.raises(ValueError, match="line 1"):
            load_source_jsonl(io.StringIO('{"name": "x"}\n'), "s")

    def test_scalar_and_list_values(self):
        text = '{"id": "e1", "a": "one", "b": ["x", "y"]}\n'
        loaded = load_source_jsonl(io.StringIO(text), "s")
        assert loaded.get("e1").values("a") == ("one",)
        assert loaded.get("e1").values("b") == ("x", "y")


class TestLinksCsv:
    def test_round_trip(self):
        links = ReferenceLinkSet([("a1", "b1")], [("a1", "b2")])
        buffer = io.StringIO()
        save_links_csv(links, buffer)
        buffer.seek(0)
        loaded = load_links_csv(buffer)
        assert loaded.positive == [("a1", "b1")]
        assert loaded.negative == [("a1", "b2")]

    def test_label_variants(self):
        text = "source,target,label\na,b,true\nc,d,-\ne,f,positive\n"
        loaded = load_links_csv(io.StringIO(text))
        assert set(loaded.positive) == {("a", "b"), ("e", "f")}
        assert loaded.negative == [("c", "d")]

    def test_missing_label_defaults_positive(self):
        loaded = load_links_csv(io.StringIO("source,target\na,b\n"))
        assert loaded.positive == [("a", "b")]

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError, match="maybe"):
            load_links_csv(io.StringIO("source,target,label\na,b,maybe\n"))

    def test_missing_columns_rejected(self):
        with pytest.raises(ValueError, match="source"):
            load_links_csv(io.StringIO("from,to\na,b\n"))

    def test_generated_links_with_scores(self):
        buffer = io.StringIO()
        save_links_csv([GeneratedLink("a1", "b1", 0.75)], buffer)
        text = buffer.getvalue()
        assert "score" in text and "0.750000" in text


class TestNTriples:
    def test_same_as_statements(self):
        buffer = io.StringIO()
        count = save_links_ntriples(
            [GeneratedLink("a1", "b1", 1.0), ("a2", "b2")],
            buffer,
            uri_prefix_a="http://ex.org/a/",
            uri_prefix_b="http://ex.org/b/",
        )
        assert count == 2
        lines = buffer.getvalue().splitlines()
        assert lines[0] == (
            "<http://ex.org/a/a1> <http://www.w3.org/2002/07/owl#sameAs> "
            "<http://ex.org/b/b1> ."
        )

    def test_custom_predicate(self):
        buffer = io.StringIO()
        save_links_ntriples(
            [("a", "b")], buffer, predicate="http://ex.org/match"
        )
        assert "http://ex.org/match" in buffer.getvalue()

    def test_file_output(self, tmp_path):
        path = tmp_path / "links.nt"
        save_links_ntriples([("a", "b")], path)
        assert path.read_text().endswith(".\n")


class TestNTriplesSources:
    NT = """\
# a comment line
<http://dbpedia.org/resource/Berlin> <http://www.w3.org/2000/01/rdf-schema#label> "Berlin" .
<http://dbpedia.org/resource/Berlin> <http://www.w3.org/2000/01/rdf-schema#label> "Berlin, Germany"@en .
<http://dbpedia.org/resource/Berlin> <http://dbpedia.org/ontology/populationTotal> "3769495"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://dbpedia.org/resource/Berlin> <http://www.w3.org/2002/07/owl#sameAs> <http://sws.geonames.org/2950159/> .

<http://dbpedia.org/resource/Hamburg> <http://www.w3.org/2000/01/rdf-schema#label> "Hamburg \\"HH\\"" .
"""

    def load(self, prefixes=None):
        import io as io_module

        from repro.data.io import load_source_ntriples

        return load_source_ntriples(
            io_module.StringIO(self.NT), "dbpedia", prefixes=prefixes
        )

    def test_entities_grouped_by_subject(self):
        source = self.load()
        assert len(source) == 2
        berlin = source.get("http://dbpedia.org/resource/Berlin")
        assert len(berlin.values("http://www.w3.org/2000/01/rdf-schema#label")) == 2

    def test_language_tags_and_datatypes_dropped(self):
        source = self.load()
        berlin = source.get("http://dbpedia.org/resource/Berlin")
        labels = berlin.values("http://www.w3.org/2000/01/rdf-schema#label")
        assert "Berlin, Germany" in labels
        population = berlin.values("http://dbpedia.org/ontology/populationTotal")
        assert population == ("3769495",)

    def test_uri_objects_kept_verbatim(self):
        source = self.load()
        berlin = source.get("http://dbpedia.org/resource/Berlin")
        assert berlin.values("http://www.w3.org/2002/07/owl#sameAs") == (
            "http://sws.geonames.org/2950159/",
        )

    def test_escaped_quotes_unescaped(self):
        source = self.load()
        hamburg = source.get("http://dbpedia.org/resource/Hamburg")
        assert hamburg.values("http://www.w3.org/2000/01/rdf-schema#label") == (
            'Hamburg "HH"',
        )

    def test_prefix_shortening(self):
        source = self.load(
            prefixes={
                "http://dbpedia.org/resource/": "dbr",
                "http://www.w3.org/2000/01/rdf-schema#": "rdfs",
            }
        )
        berlin = source.get("dbr:Berlin")
        assert berlin.values("rdfs:label")

    def test_unterminated_statement_rejected(self):
        import io as io_module

        from repro.data.io import load_source_ntriples

        with pytest.raises(ValueError, match="end with"):
            load_source_ntriples(
                io_module.StringIO("<a> <b> <c>"), "x"
            )

    def test_garbage_term_rejected(self):
        import io as io_module

        from repro.data.io import load_source_ntriples

        with pytest.raises(ValueError, match="cannot parse"):
            load_source_ntriples(
                io_module.StringIO("<a> <b> unquoted .\n"), "x"
            )

    def test_round_trip_through_save(self, tmp_path):
        from repro.data.entity import Entity
        from repro.data.io import load_source_ntriples, save_source_ntriples
        from repro.data.source import DataSource

        source = DataSource(
            "s",
            [
                Entity("item1", {"label": ('say "hi"', "tab\there"), "year": "1999"}),
                Entity("item2", {"label": "plain"}),
            ],
        )
        path = tmp_path / "source.nt"
        count = save_source_ntriples(source, path)
        assert count == 4
        loaded = load_source_ntriples(
            path,
            "s",
            prefixes={
                "http://example.org/entity/": "",
                "http://example.org/property/": "",
            },
        )
        reloaded = loaded.get("http://example.org/entity/item1") if False else None
        # subject_prefix defaulted to "", so uids round-trip verbatim
        item1 = loaded.get("item1")
        assert set(item1.values("label")) == {'say "hi"', "tab\there"}
        assert item1.values("year") == ("1999",)

    def test_save_respects_existing_uris(self, tmp_path):
        from repro.data.entity import Entity
        from repro.data.io import save_source_ntriples
        from repro.data.source import DataSource

        source = DataSource(
            "s", [Entity("http://example.org/x", {"http://purl.org/dc/title": "T"})]
        )
        path = tmp_path / "out.nt"
        save_source_ntriples(source, path)
        text = path.read_text()
        assert "<http://example.org/x> <http://purl.org/dc/title>" in text

    def test_unicode_escape_sequences(self):
        import io as io_module

        from repro.data.io import load_source_ntriples

        nt = '<a:1> <p:label> "caf\\u00e9" .\n'
        source = load_source_ntriples(io_module.StringIO(nt), "x")
        assert source.get("a:1").values("p:label") == ("café",)
