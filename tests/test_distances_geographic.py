"""Tests for the geographic distance."""

import pytest

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.geographic import (
    GeographicDistance,
    haversine_metres,
    parse_point,
)


class TestParsePoint:
    def test_wkt_lon_lat_order(self):
        assert parse_point("POINT(13.4050 52.5200)") == (52.52, 13.405)

    def test_wkt_case_insensitive(self):
        assert parse_point("point(0 0)") == (0.0, 0.0)

    def test_comma_pair_lat_lon(self):
        assert parse_point("52.52,13.405") == (52.52, 13.405)

    def test_space_pair(self):
        assert parse_point("52.52 13.405") == (52.52, 13.405)

    def test_negative_coordinates(self):
        assert parse_point("-33.86,151.21") == (-33.86, 151.21)

    def test_out_of_range_latitude(self):
        assert parse_point("95.0,10.0") is None

    def test_out_of_range_longitude(self):
        assert parse_point("10.0,190.0") is None

    def test_garbage(self):
        assert parse_point("not a point") is None

    def test_plain_number_is_not_a_point(self):
        assert parse_point("42") is None


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_metres(52.52, 13.405, 52.52, 13.405) == 0.0

    def test_berlin_hamburg_about_255km(self):
        distance = haversine_metres(52.52, 13.405, 53.5511, 9.9937)
        assert 240_000 < distance < 270_000

    def test_equator_degree_about_111km(self):
        distance = haversine_metres(0.0, 0.0, 0.0, 1.0)
        assert 110_000 < distance < 112_000

    def test_symmetry(self):
        d1 = haversine_metres(10, 20, 30, 40)
        d2 = haversine_metres(30, 40, 10, 20)
        assert d1 == pytest.approx(d2)


class TestGeographicDistance:
    def test_mixed_formats(self):
        measure = GeographicDistance()
        distance = measure.evaluate(
            ("52.5200,13.4050",), ("POINT(13.4050 52.5200)",)
        )
        assert distance == pytest.approx(0.0, abs=1.0)

    def test_unparseable_infinite(self):
        measure = GeographicDistance()
        assert measure.evaluate(("somewhere",), ("52.5,13.4",)) == INFINITE_DISTANCE

    def test_min_over_sets(self):
        measure = GeographicDistance()
        distance = measure.evaluate(
            ("0.0,0.0", "52.52,13.405"), ("52.53,13.405",)
        )
        assert distance < 2000
