"""Tests for representation restrictions (Table 13 variants)."""

import random

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.representation import (
    BOOLEAN,
    FULL,
    LINEAR,
    NONLINEAR,
    Representation,
    get_representation,
)
from repro.core.rule import validate_tree


def _transformed_comparison() -> ComparisonNode:
    return ComparisonNode(
        "levenshtein",
        1.0,
        TransformationNode("lowerCase", (PropertyNode("label"),)),
        TransformationNode(
            "tokenize", (TransformationNode("stem", (PropertyNode("name"),)),)
        ),
    )


def _nested_tree() -> AggregationNode:
    return AggregationNode(
        "wmean",
        (
            _transformed_comparison(),
            AggregationNode(
                "max",
                (
                    ComparisonNode(
                        "geographic", 500.0, PropertyNode("p"), PropertyNode("c")
                    ),
                ),
            ),
        ),
    )


class TestRepresentationDefinitions:
    def test_boolean_matches_definition10(self):
        assert BOOLEAN.aggregation_functions == ("min", "max")
        assert not BOOLEAN.allow_transformations

    def test_linear_matches_definition9(self):
        assert LINEAR.aggregation_functions == ("wmean",)
        assert not LINEAR.allow_nesting

    def test_full_is_unrestricted(self):
        assert FULL.allow_transformations
        assert FULL.allow_nesting
        assert set(FULL.aggregation_functions) == {"min", "max", "wmean"}

    def test_lookup_by_name(self):
        assert get_representation("boolean") is BOOLEAN
        with pytest.raises(KeyError):
            get_representation("quantum")


class TestAllows:
    def test_full_allows_everything(self):
        assert FULL.allows(_nested_tree())

    def test_boolean_rejects_transformations(self):
        assert not BOOLEAN.allows(_transformed_comparison())

    def test_boolean_rejects_wmean(self):
        assert not BOOLEAN.allows(_nested_tree())

    def test_linear_rejects_nesting(self):
        nested = AggregationNode(
            "wmean",
            (
                AggregationNode(
                    "wmean",
                    (
                        ComparisonNode(
                            "levenshtein", 1.0, PropertyNode("a"), PropertyNode("b")
                        ),
                    ),
                ),
            ),
        )
        assert not LINEAR.allows(nested)

    def test_nonlinear_allows_nesting_without_transformations(self):
        tree = AggregationNode(
            "min",
            (
                AggregationNode(
                    "wmean",
                    (
                        ComparisonNode(
                            "levenshtein", 1.0, PropertyNode("a"), PropertyNode("b")
                        ),
                    ),
                ),
            ),
        )
        assert NONLINEAR.allows(tree)


class TestRepair:
    def test_repair_strips_transformations_for_boolean(self):
        rng = random.Random(0)
        repaired = BOOLEAN.repair(_transformed_comparison(), rng)
        assert BOOLEAN.allows(repaired)
        assert isinstance(repaired.source, PropertyNode)
        assert repaired.source.property_name == "label"
        # The transformation chain bottoms out at 'name'.
        assert repaired.target.property_name == "name"

    def test_repair_flattens_for_linear(self):
        rng = random.Random(0)
        repaired = LINEAR.repair(_nested_tree(), rng)
        assert LINEAR.allows(repaired)
        assert isinstance(repaired, AggregationNode)
        assert all(
            isinstance(child, ComparisonNode) for child in repaired.operators
        )
        # Both comparisons survive the flattening.
        assert len(repaired.operators) == 2

    def test_repair_replaces_disallowed_function(self):
        rng = random.Random(0)
        repaired = BOOLEAN.repair(_nested_tree(), rng)
        assert BOOLEAN.allows(repaired)

    def test_repair_preserves_valid_trees(self):
        rng = random.Random(0)
        tree = AggregationNode(
            "min",
            (ComparisonNode("levenshtein", 1.0, PropertyNode("a"), PropertyNode("b")),),
        )
        assert BOOLEAN.repair(tree, rng) == tree

    def test_repaired_trees_are_valid(self):
        rng = random.Random(0)
        for representation in (BOOLEAN, LINEAR, NONLINEAR, FULL):
            repaired = representation.repair(_nested_tree(), rng)
            validate_tree(repaired, expect_similarity=True)

    def test_requires_aggregation_function(self):
        with pytest.raises(ValueError):
            Representation(
                name="broken",
                aggregation_functions=(),
                allow_transformations=True,
                allow_nesting=True,
            )
