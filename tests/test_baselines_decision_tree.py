"""Tests for the decision tree baseline (repro.baselines.decision_tree)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeConfig,
    TreeNode,
    _best_split,
    _gini,
)


def separable_data():
    """One feature cleanly separates the classes at 0.5."""
    matrix = np.array(
        [[0.9, 0.1], [0.8, 0.9], [0.7, 0.2], [0.95, 0.5],
         [0.1, 0.8], [0.2, 0.1], [0.3, 0.9], [0.05, 0.4]]
    )
    labels = np.array([True, True, True, True, False, False, False, False])
    return matrix, labels


class TestGini:
    def test_pure_node_zero(self):
        assert _gini(5, 0) == 0.0
        assert _gini(0, 7) == 0.0

    def test_balanced_is_half(self):
        assert _gini(4, 4) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert _gini(0, 0) == 0.0


class TestBestSplit:
    def test_finds_separating_feature(self):
        matrix, labels = separable_data()
        split = _best_split(matrix, labels, min_gain=1e-6)
        assert split is not None
        feature, threshold, gain = split
        assert feature == 0
        assert 0.3 < threshold < 0.7
        assert gain == pytest.approx(0.5)

    def test_no_split_on_constant_feature(self):
        matrix = np.ones((6, 1))
        labels = np.array([True, False, True, False, True, False])
        assert _best_split(matrix, labels, min_gain=1e-6) is None

    def test_min_gain_filters_weak_splits(self):
        matrix, labels = separable_data()
        assert _best_split(matrix, labels, min_gain=0.9) is None


class TestFitPredict:
    def test_perfect_fit_on_separable_data(self):
        matrix, labels = separable_data()
        tree = DecisionTreeClassifier()
        tree.fit_matrix(matrix, labels)
        assert (tree.predict_matrix(matrix) == labels).all()

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(7)
        matrix = rng.random((64, 3))
        labels = matrix[:, 0] + matrix[:, 1] * 0.5 > 0.8
        tree = DecisionTreeClassifier(DecisionTreeConfig(max_depth=2))
        tree.fit_matrix(matrix, labels)
        assert tree.root is not None
        assert tree.root.depth() <= 3  # depth counts nodes, max_depth splits

    def test_pure_training_set_single_leaf(self):
        matrix = np.random.default_rng(0).random((10, 2))
        labels = np.ones(10, dtype=bool)
        tree = DecisionTreeClassifier()
        tree.fit_matrix(matrix, labels)
        assert tree.root is not None
        assert tree.root.is_leaf
        assert tree.root.prediction

    def test_empty_training_set_raises(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError, match="empty"):
            tree.fit_matrix(np.zeros((0, 2)), np.zeros(0, dtype=bool))

    def test_shape_mismatch_raises(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError, match="label count"):
            tree.fit_matrix(np.zeros((3, 2)), np.zeros(2, dtype=bool))

    def test_predict_before_fit_raises(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(RuntimeError, match="not trained"):
            tree.predict_matrix(np.zeros((1, 2)))


class TestExplanations:
    def test_render_mentions_feature_names(self):
        matrix, labels = separable_data()
        tree = DecisionTreeClassifier()
        tree.fit_matrix(matrix, labels, feature_names=["levenshtein(a,b)", "x"])
        text = tree.render()
        assert "levenshtein(a,b)" in text
        assert "MATCH" in text and "NO-MATCH" in text

    def test_positive_paths_form_dnf(self):
        matrix, labels = separable_data()
        tree = DecisionTreeClassifier()
        tree.fit_matrix(matrix, labels, feature_names=["sim", "other"])
        paths = tree.positive_paths()
        assert paths, "separable data must yield at least one match path"
        for path in paths:
            for name, op, threshold in path:
                assert op in (">=", "<")
                assert isinstance(threshold, float)
        # The separating literal must appear in every positive path.
        assert all(any(name == "sim" for name, _, __ in path) for path in paths)

    def test_paths_consistent_with_predictions(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((40, 2))
        labels = matrix[:, 0] > 0.6
        tree = DecisionTreeClassifier()
        tree.fit_matrix(matrix, labels, feature_names=["a", "b"])
        predictions = tree.predict_matrix(matrix)
        paths = tree.positive_paths()

        def path_matches(row) -> bool:
            names = {"a": 0, "b": 1}
            for path in paths:
                if all(
                    (row[names[n]] >= t) if op == ">=" else (row[names[n]] < t)
                    for n, op, t in path
                ):
                    return True
            return False

        for i in range(len(matrix)):
            assert path_matches(matrix[i]) == predictions[i]


class TestLearnOnSources:
    def test_learn_cities(self, city_sources, reference_links=None):
        from repro.data.reference_links import ReferenceLinkSet

        source_a, source_b = city_sources
        positive = [
            ("a:berlin", "b:berlin"),
            ("a:hamburg", "b:hamburg"),
            ("a:munich", "b:munich"),
        ]
        negative = [
            ("a:berlin", "b:hamburg"),
            ("a:hamburg", "b:munich"),
            ("a:munich", "b:leipzig"),
            ("a:cologne", "b:berlin"),
        ]
        links = ReferenceLinkSet(positive=positive, negative=negative)
        tree = DecisionTreeClassifier()
        f1 = tree.learn(source_a, source_b, links, rng=5)
        assert f1 >= 0.8
        assert tree.attribute_pairs


# -- property-based -----------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=4, max_value=60),
    d=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_tree_never_exceeds_configured_depth(seed, n, d):
    rng = np.random.default_rng(seed)
    matrix = rng.random((n, d))
    labels = rng.random(n) > 0.5
    if labels.all() or not labels.any():
        labels[0] = not labels[0]
    config = DecisionTreeConfig(max_depth=3)
    tree = DecisionTreeClassifier(config)
    tree.fit_matrix(matrix, labels)
    assert tree.root is not None
    assert tree.root.depth() <= config.max_depth + 1


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    n=st.integers(min_value=4, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_training_accuracy_beats_majority_class(seed, n):
    """The tree is at least as accurate as always predicting the
    majority class on its own training data."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((n, 2))
    labels = matrix[:, 0] > rng.random()
    if labels.all() or not labels.any():
        labels[0] = not labels[0]
    tree = DecisionTreeClassifier()
    tree.fit_matrix(matrix, labels)
    predictions = tree.predict_matrix(matrix)
    accuracy = (predictions == labels).mean()
    majority = max(labels.mean(), 1.0 - labels.mean())
    assert accuracy >= majority - 1e-9


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_node_count_consistent(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.random((30, 3))
    labels = matrix[:, 1] > 0.5
    if labels.all() or not labels.any():
        labels[0] = not labels[0]
    tree = DecisionTreeClassifier()
    tree.fit_matrix(matrix, labels)
    root = tree.root
    assert root is not None

    def count(node: TreeNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + count(node.left) + count(node.right)

    assert count(root) == root.node_count()
