"""Tests for the distance registry."""

import pytest

from repro.distances.base import DistanceMeasure
from repro.distances.registry import (
    DistanceRegistry,
    default_registry,
    get_measure,
    measure_names,
)


class TestDefaultRegistry:
    def test_contains_all_table2_measures(self):
        # Table 2 of the paper.
        for name in ("levenshtein", "jaccard", "numeric", "geographic", "date"):
            assert name in default_registry()

    def test_contains_baseline_measures(self):
        for name in ("jaro", "jaroWinkler", "equality"):
            assert name in default_registry()

    def test_get_returns_measure(self):
        assert isinstance(get_measure("levenshtein"), DistanceMeasure)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="levenshtein"):
            get_measure("nope")

    def test_names_sorted(self):
        names = measure_names()
        assert names == sorted(names)

    def test_singleton(self):
        assert default_registry() is default_registry()


class TestCustomRegistry:
    def test_register_and_get(self):
        class Always42(DistanceMeasure):
            name = "always42"

            def evaluate(self, values_a, values_b):
                return 42.0

        registry = DistanceRegistry()
        registry.register(Always42())
        assert registry.get("always42").evaluate(("x",), ("y",)) == 42.0

    def test_register_requires_concrete_name(self):
        class Nameless(DistanceMeasure):
            name = "abstract"

            def evaluate(self, values_a, values_b):
                return 0.0

        with pytest.raises(ValueError):
            DistanceRegistry().register(Nameless())

    def test_iteration(self):
        registry = default_registry()
        assert set(iter(registry)) == set(registry.names())

    def test_threshold_ranges_well_formed(self):
        registry = default_registry()
        for name in registry.names():
            low, high = registry.get(name).threshold_range
            assert low < high
