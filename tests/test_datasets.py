"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.datasets.base import DatasetSpec

#: Small scale keeps the suite fast while exercising every generator.
SCALE = 0.12


@pytest.fixture(scope="module")
def all_datasets():
    return {name: load_dataset(name, seed=11, scale=SCALE) for name in DATASET_NAMES}


class TestRegistry:
    def test_six_datasets(self):
        assert len(DATASET_NAMES) == 6

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")
        with pytest.raises(KeyError):
            dataset_spec("imaginary")

    def test_specs_match_table5(self):
        # Table 5 of the paper.
        expectations = {
            "cora": (1879, None, 1617),
            "restaurant": (864, None, 112),
            "sider_drugbank": (924, 4772, 859),
            "nyt": (5620, 1819, 1920),
            "linkedmdb": (199, 174, 100),
            "dbpedia_drugbank": (4854, 4772, 1403),
        }
        for name, (entities_a, entities_b, links) in expectations.items():
            spec = dataset_spec(name)
            assert spec.entities_a == entities_a
            assert spec.entities_b == entities_b
            assert spec.positive_links == links

    def test_specs_match_table6(self):
        # Table 6 of the paper.
        expectations = {
            "cora": (4, None, 0.8, None),
            "restaurant": (5, None, 1.0, None),
            "sider_drugbank": (8, 79, 1.0, 0.5),
            "nyt": (38, 110, 0.3, 0.2),
            "linkedmdb": (100, 46, 0.4, 0.4),
            "dbpedia_drugbank": (110, 79, 0.3, 0.5),
        }
        for name, (props_a, props_b, cov_a, cov_b) in expectations.items():
            spec = dataset_spec(name)
            assert spec.properties_a == props_a
            assert spec.properties_b == props_b
            assert spec.coverage_a == cov_a
            assert spec.coverage_b == cov_b


class TestGeneratedDatasets:
    def test_all_links_resolve(self, all_datasets):
        for dataset in all_datasets.values():
            for (uid_a, uid_b), _label in dataset.links:
                assert uid_a in dataset.source_a
                assert uid_b in dataset.source_b

    def test_balanced_links(self, all_datasets):
        for dataset in all_datasets.values():
            positive = len(dataset.links.positive)
            negative = len(dataset.links.negative)
            assert negative >= positive * 0.8

    def test_no_positive_negative_overlap(self, all_datasets):
        for dataset in all_datasets.values():
            assert not set(dataset.links.positive) & set(dataset.links.negative)

    def test_deduplication_datasets_share_source(self, all_datasets):
        assert all_datasets["cora"].is_deduplication
        assert all_datasets["restaurant"].is_deduplication
        assert not all_datasets["nyt"].is_deduplication

    def test_coverage_close_to_spec(self, all_datasets):
        for name, dataset in all_datasets.items():
            spec = dataset_spec(name)
            measured = dataset.source_a.coverage()
            assert measured == pytest.approx(spec.coverage_a, abs=0.08), name
            if spec.coverage_b is not None:
                measured_b = dataset.source_b.coverage()
                assert measured_b == pytest.approx(spec.coverage_b, abs=0.08), name

    def test_property_counts_close_to_spec(self, all_datasets):
        for name, dataset in all_datasets.items():
            spec = dataset_spec(name)
            assert dataset.source_a.property_count() == pytest.approx(
                spec.properties_a, abs=4
            ), name

    def test_deterministic_per_seed(self):
        first = load_dataset("cora", seed=5, scale=SCALE)
        second = load_dataset("cora", seed=5, scale=SCALE)
        assert first.links.positive == second.links.positive
        assert [e.uid for e in first.source_a] == [e.uid for e in second.source_a]
        uids = first.source_a.uids()[:10]
        for uid in uids:
            assert first.source_a.get(uid) == second.source_a.get(uid)

    def test_different_seeds_differ(self):
        first = load_dataset("cora", seed=5, scale=SCALE)
        second = load_dataset("cora", seed=6, scale=SCALE)
        assert first.links.positive != second.links.positive

    def test_summary_shape(self, all_datasets):
        summary = all_datasets["nyt"].summary()
        assert {"name", "entities_a", "entities_b", "positive_links"} <= set(summary)


class TestScaling:
    def test_scaled_spec(self):
        spec = dataset_spec("cora").scaled(0.1)
        assert spec.entities_a == 188
        assert spec.positive_links == 162
        assert spec.properties_a == 4  # property counts never scale

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            dataset_spec("cora").scaled(0.0)
        with pytest.raises(ValueError):
            load_dataset("cora", scale=2.0)

    def test_minimum_sizes_enforced(self):
        spec = DatasetSpec(
            name="tiny", entities_a=10, entities_b=10, positive_links=5,
            properties_a=2, properties_b=2, coverage_a=1.0, coverage_b=1.0,
        ).scaled(0.01)
        assert spec.entities_a >= 8
        assert spec.positive_links >= 6


class TestDatasetStructure:
    def test_cora_has_paper_properties(self, all_datasets):
        names = set(all_datasets["cora"].source_a.property_names())
        assert names == {"title", "author", "venue", "date"}

    def test_restaurant_has_five_properties(self, all_datasets):
        names = set(all_datasets["restaurant"].source_a.property_names())
        assert names == {"name", "address", "city", "phone", "type"}

    def test_nyt_geo_formats_differ(self, all_datasets):
        dataset = all_datasets["nyt"]
        nyt_geo = next(
            e.values("geo")[0] for e in dataset.source_a if e.has("geo")
        )
        dbp_point = next(
            e.values("point")[0] for e in dataset.source_b if e.has("point")
        )
        assert "," in nyt_geo
        assert dbp_point.startswith("POINT(")

    def test_dbpedia_labels_are_uris(self, all_datasets):
        dataset = all_datasets["nyt"]
        label = next(e.values("label")[0] for e in dataset.source_b)
        assert label.startswith("http://dbpedia.org/resource/")

    def test_sider_names_lowercase(self, all_datasets):
        dataset = all_datasets["sider_drugbank"]
        for entity in list(dataset.source_a)[:20]:
            name = entity.values("siderName")[0]
            assert name == name.lower()

    def test_linkedmdb_has_remake_negatives(self, all_datasets):
        dataset = all_datasets["linkedmdb"]
        found_remake = False
        for uid_a, uid_b in dataset.links.negative:
            label = dataset.source_a.get(uid_a).values("label")
            title = dataset.source_b.get(uid_b).values("title")
            if label and title:
                l0 = label[0].split(" (")[0].lower()
                if l0 == title[0].lower():
                    found_remake = True
                    break
        assert found_remake
