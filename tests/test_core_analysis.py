"""Tests for rule simplification and analysis."""

import random

import numpy as np
import pytest

from repro.core.analysis import rule_summary, simplify_rule
from repro.core.compatible import CompatibleProperty
from repro.core.evaluation import PairEvaluator
from repro.core.generation import RandomRuleGenerator
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule, validate_tree
from repro.data.entity import Entity


def _cmp(prop="x", metric="levenshtein", threshold=1.0, weight=1):
    return ComparisonNode(
        metric, threshold, PropertyNode(prop), PropertyNode(prop), weight=weight
    )


class TestSimplifyRule:
    def test_duplicate_children_dropped_in_min(self):
        rule = LinkageRule(AggregationNode("min", (_cmp(), _cmp())))
        simplified = simplify_rule(rule)
        assert isinstance(simplified.root, ComparisonNode)

    def test_duplicate_wmean_children_merge_weights(self):
        rule = LinkageRule(
            AggregationNode(
                "wmean", (_cmp(weight=2), _cmp(weight=3), _cmp("y", weight=5))
            )
        )
        simplified = simplify_rule(rule)
        assert isinstance(simplified.root, AggregationNode)
        weights = sorted(c.weight for c in simplified.root.operators)
        assert weights == [5, 5]

    def test_nested_same_function_flattened(self):
        inner = AggregationNode("max", (_cmp("a"), _cmp("b")))
        rule = LinkageRule(AggregationNode("max", (inner, _cmp("c"))))
        simplified = simplify_rule(rule)
        assert isinstance(simplified.root, AggregationNode)
        assert len(simplified.root.operators) == 3
        assert all(
            isinstance(child, ComparisonNode)
            for child in simplified.root.operators
        )

    def test_nested_different_functions_kept(self):
        inner = AggregationNode("min", (_cmp("a"), _cmp("b")))
        rule = LinkageRule(AggregationNode("max", (inner, _cmp("c"))))
        simplified = simplify_rule(rule)
        assert len(simplified.root.operators) == 2

    def test_wmean_hierarchies_not_flattened(self):
        inner = AggregationNode("wmean", (_cmp("a"), _cmp("b")))
        rule = LinkageRule(AggregationNode("wmean", (inner, _cmp("c"))))
        simplified = simplify_rule(rule)
        # wmean of wmean is not a flat wmean.
        assert any(
            isinstance(child, AggregationNode)
            for child in simplified.root.operators
        )

    def test_single_child_aggregation_unwrapped(self):
        rule = LinkageRule(AggregationNode("min", (_cmp(),)))
        assert isinstance(simplify_rule(rule).root, ComparisonNode)

    def test_simplified_rule_is_valid(self):
        rule = LinkageRule(
            AggregationNode(
                "max",
                (AggregationNode("max", (_cmp("a"), _cmp("a"))), _cmp("a")),
            )
        )
        simplified = simplify_rule(rule)
        validate_tree(simplified.root, expect_similarity=True)

    def test_scores_preserved_on_random_rules(self):
        """Simplification never changes a rule's score on any pair."""
        generator = RandomRuleGenerator(
            [
                CompatibleProperty("label", "name", "levenshtein"),
                CompatibleProperty("num", "num2", "numeric"),
            ],
            random.Random(5),
        )
        pairs = [
            (
                Entity(f"a{i}", {"label": f"v{i % 3}", "num": str(i)}),
                Entity(f"b{i}", {"name": f"v{i % 2}", "num2": str(i % 4)}),
            )
            for i in range(8)
        ]
        evaluator = PairEvaluator(pairs)
        for _ in range(60):
            rule = generator.random_rule()
            simplified = simplify_rule(rule)
            before = evaluator.scores(rule.root)
            after = evaluator.scores(simplified.root)
            assert np.allclose(before, after), str(rule)

    def test_simplification_never_grows(self):
        generator = RandomRuleGenerator(
            [CompatibleProperty("x", "y", "levenshtein")], random.Random(9)
        )
        for _ in range(40):
            rule = generator.random_rule()
            assert simplify_rule(rule).operator_count() <= rule.operator_count()


class TestRuleSummary:
    def test_counts(self):
        rule = LinkageRule(
            AggregationNode(
                "min",
                (
                    ComparisonNode(
                        "levenshtein",
                        1.0,
                        TransformationNode("lowerCase", (PropertyNode("label"),)),
                        PropertyNode("name"),
                    ),
                    _cmp("geo", metric="geographic", threshold=100.0),
                ),
            )
        )
        summary = rule_summary(rule)
        assert summary.comparisons == 2
        assert summary.aggregations == 1
        assert summary.transformations == 1
        assert summary.properties == 4
        assert summary.measures == ("geographic", "levenshtein")
        assert summary.transformation_functions == ("lowerCase",)
        assert ("label", "name") in summary.compared_properties

    def test_describe(self):
        summary = rule_summary(LinkageRule(_cmp()))
        assert "1 comparison(s)" in summary.describe()
