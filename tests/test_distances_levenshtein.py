"""Tests for the Levenshtein distance."""

import pytest

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.levenshtein import (
    LevenshteinDistance,
    NormalizedLevenshteinDistance,
    levenshtein,
    normalized_levenshtein,
)


class TestLevenshteinFunction:
    def test_identical_strings(self):
        assert levenshtein("kitten", "kitten") == 0.0

    def test_empty_both(self):
        assert levenshtein("", "") == 0.0

    def test_empty_left(self):
        assert levenshtein("", "abc") == 3.0

    def test_empty_right(self):
        assert levenshtein("abc", "") == 3.0

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3.0

    def test_single_substitution(self):
        assert levenshtein("cat", "cut") == 1.0

    def test_single_insertion(self):
        assert levenshtein("cat", "cart") == 1.0

    def test_single_deletion(self):
        assert levenshtein("cart", "cat") == 1.0

    def test_symmetry(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw")

    def test_case_sensitive(self):
        assert levenshtein("Berlin", "berlin") == 1.0

    def test_completely_different(self):
        assert levenshtein("abc", "xyz") == 3.0

    def test_bound_exceeded_returns_above_bound(self):
        value = levenshtein("abcdefgh", "zyxwvuts", bound=2)
        assert value > 2

    def test_bound_respected_when_within(self):
        assert levenshtein("cat", "cut", bound=2) == 1.0

    def test_bound_with_length_difference_shortcut(self):
        assert levenshtein("a", "abcdefgh", bound=3) > 3

    def test_out_of_range_is_exactly_bound_plus_one(self):
        """The clamp contract: every out-of-range result is exactly
        ``bound + 1``, whichever shortcut detects it — that pinned
        value is what lets the numpy and rapidfuzz batch backends stay
        bit-identical to this oracle."""
        # Early-exit path (rows of the DP all exceed the bound).
        assert levenshtein("abcdefgh", "zyxwvuts", bound=2) == 3.0
        # Length-difference prefilter, including empty strings.
        assert levenshtein("a", "abcdefgh", bound=3) == 4.0
        assert levenshtein("", "abc", bound=1) == 2.0
        # Full DP finishing just above the bound (no early exit: the
        # final row still has an in-bound cell, only the corner is out).
        assert levenshtein("ab", "ba", bound=1) == 2.0
        assert levenshtein("abcdefghij", "jihgfedcba", bound=5) == 6.0
        # In-range distances stay exact.
        assert levenshtein("kitten", "sitting", bound=3) == 3.0

    def test_unicode(self):
        assert levenshtein("café", "cafe") == 1.0


class TestNormalizedLevenshtein:
    def test_identical(self):
        assert normalized_levenshtein("same", "same") == 0.0

    def test_empty_both(self):
        assert normalized_levenshtein("", "") == 0.0

    def test_range_upper(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0

    def test_scaled_by_longest(self):
        # distance 1 over max length 4
        assert normalized_levenshtein("cats", "cat") == pytest.approx(0.25)


class TestLevenshteinMeasure:
    def test_min_over_value_sets(self):
        measure = LevenshteinDistance()
        assert measure.evaluate(("alpha", "beta"), ("betta",)) == 1.0

    def test_empty_values_are_infinite(self):
        measure = LevenshteinDistance()
        assert measure.evaluate((), ("x",)) == INFINITE_DISTANCE
        assert measure.evaluate(("x",), ()) == INFINITE_DISTANCE

    def test_exact_match_short_circuits(self):
        measure = LevenshteinDistance()
        assert measure.evaluate(("a", "b"), ("b",)) == 0.0

    def test_max_bound_caps_reported_distance(self):
        measure = LevenshteinDistance(max_bound=3)
        distance = measure.evaluate(("abcdefghij",), ("zyxwvutsrq",))
        assert distance == 4.0  # bound + 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LevenshteinDistance(max_bound=0)

    def test_threshold_range_is_positive(self):
        low, high = LevenshteinDistance.threshold_range
        assert 0 <= low < high

    def test_normalized_measure_on_sets(self):
        measure = NormalizedLevenshteinDistance()
        assert measure.evaluate(("cats",), ("cat",)) == pytest.approx(0.25)
