"""Tests for the compiled rule-execution engine: LRU cache tiers,
structural-hash deduplication, persistent sessions and statistics."""

import numpy as np
import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.data.entity import Entity
from repro.engine import EngineSession, LRUCache, RuleCompiler


def _comparison(metric="levenshtein", threshold=2.0, prop_a="name", prop_b="name"):
    return ComparisonNode(
        metric,
        threshold,
        TransformationNode("lowerCase", (PropertyNode(prop_a),)),
        TransformationNode("lowerCase", (PropertyNode(prop_b),)),
    )


def _pairs(n=4):
    return [
        (
            Entity(f"a{i}", {"name": f"entity {i}", "year": str(1990 + i)}),
            Entity(f"b{i}", {"name": f"entity {i % 2}", "year": str(1990 + i)}),
        )
        for i in range(n)
    ]


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # renews "a"
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_eviction_is_single_entry_not_wholesale(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats().evictions == 7

    def test_stats_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.capacity == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestRuleCompiler:
    def test_structurally_equal_comparisons_share_one_op(self):
        compiler = RuleCompiler()
        # Two distinct node objects, same structure, different thresholds
        # and weights: one distance op.
        c1 = _comparison(threshold=1.0)
        c2 = ComparisonNode(
            "levenshtein",
            2.5,
            TransformationNode("lowerCase", (PropertyNode("name"),)),
            TransformationNode("lowerCase", (PropertyNode("name"),)),
            weight=3,
        )
        plan = compiler.compile_population([c1, c2])
        assert plan.comparison_node_count == 2
        assert len(plan.comparison_ops) == 1
        assert compiler.comparison_op_count == 1

    def test_shared_value_subtrees_dedupe(self):
        compiler = RuleCompiler()
        root = AggregationNode(
            "max",
            (
                _comparison("levenshtein", 1.0),
                _comparison("jaro", 0.3),
            ),
        )
        plan = compiler.compile_population([root])
        # Both comparisons read lowerCase(name) on both sides: one
        # unique value op.
        assert plan.value_op_count == 1

    def test_population_plan_across_rules(self):
        compiler = RuleCompiler()
        shared = _comparison()
        rules = [
            AggregationNode("min", (shared, _comparison(prop_a="year"))),
            AggregationNode("max", (shared,)),
            shared,
        ]
        plan = compiler.compile_population(rules)
        assert len(plan.roots) == 3
        assert len(plan.comparison_ops) == 2

    def test_interning_persists_across_compilations(self):
        compiler = RuleCompiler()
        compiler.compile(_comparison())
        compiler.compile(_comparison(threshold=9.0))
        assert compiler.comparison_op_count == 1

    def test_value_tree_signature_matches_interned_signatures(self):
        """The standalone signature function (used by blocking-index
        cache keys) must produce exactly what the compiler interns."""
        from repro.engine.compiler import value_tree_signature

        compiler = RuleCompiler()
        trees = [
            PropertyNode("name"),
            TransformationNode("lowerCase", (PropertyNode("name"),)),
            TransformationNode(
                "replace",
                (TransformationNode("tokenize", (PropertyNode("x"),)),),
                params=(("search", "a"), ("replace", "b")),
            ),
        ]
        for tree in trees:
            assert compiler.value_signature(tree) == value_tree_signature(tree)


class TestBlockingIndexMemo:
    def test_builds_once_per_key(self):
        session = EngineSession()
        calls = []

        def build():
            calls.append(1)
            return {"tok": ("u1",)}

        first = session.blocking_index("fp", "token:v1", build)
        second = session.blocking_index("fp", "token:v1", build)
        assert first is second
        assert len(calls) == 1

    def test_keys_separate_fingerprints_and_tokens(self):
        session = EngineSession()
        a = session.blocking_index("fp1", "tok", lambda: {"a": ()})
        b = session.blocking_index("fp2", "tok", lambda: {"b": ()})
        c = session.blocking_index("fp1", "other", lambda: {"c": ()})
        assert a != b and a != c

    def test_persists_through_the_store(self, tmp_path):
        cold = EngineSession(store=str(tmp_path))
        payload = cold.blocking_index("fp", "tok", lambda: {"a": ("x",)})
        assert cold.stats().store.index_writes == 1

        warm = EngineSession(store=str(tmp_path))
        loaded = warm.blocking_index(
            "fp", "tok", lambda: pytest.fail("must load, not rebuild")
        )
        assert loaded == payload
        assert warm.stats().store.index_hits == 1

    def test_clear_caches_drops_the_memo(self):
        session = EngineSession()
        session.blocking_index("fp", "tok", lambda: {"a": ()})
        session.clear_caches()
        calls = []
        session.blocking_index("fp", "tok", lambda: calls.append(1) or {"a": ()})
        assert calls == [1]


class TestEngineSession:
    def test_threshold_mutation_reuses_distance_column(self):
        session = EngineSession()
        context = session.context(_pairs())
        context.scores(_comparison(threshold=1.0))
        columns_after_first = session.stats().columns.misses
        context.scores(_comparison(threshold=2.0))
        stats = session.stats()
        # Second threshold: no new distance column, only a new score
        # vector.
        assert stats.columns.misses == columns_after_first
        assert stats.columns.hits >= 1

    def test_value_cache_survives_across_contexts(self):
        session = EngineSession()
        pairs = _pairs()
        session.context(pairs[:2]).scores(_comparison())
        value_misses = session.stats().values.misses
        # Second "batch" re-uses the first batch's entities.
        session.context(pairs[:2]).scores(_comparison())
        stats = session.stats()
        assert stats.values.misses == value_misses
        assert stats.values.hits > 0

    def test_population_scores_match_per_rule_scores(self):
        rules = [
            _comparison(threshold=1.0),
            AggregationNode(
                "wmean",
                (
                    ComparisonNode(
                        "levenshtein",
                        2.0,
                        PropertyNode("name"),
                        PropertyNode("name"),
                        weight=2,
                    ),
                    _comparison("equality", 0.0, "year", "year"),
                ),
            ),
        ]
        pairs = _pairs()
        vectors = EngineSession().context(pairs).population_scores(rules)
        for rule, vector in zip(rules, vectors):
            expected = EngineSession().context(pairs).scores(rule)
            np.testing.assert_array_equal(vector, expected)

    def test_bounded_score_cache_evicts_not_clears(self):
        session = EngineSession(max_score_entries=2)
        context = session.context(_pairs())
        for threshold in (1.0, 2.0, 3.0, 4.0):
            context.scores(_comparison(threshold=threshold))
        stats = session.stats()
        assert stats.scores.size == 2
        assert stats.scores.evictions == 2

    def test_entity_values_cached(self):
        session = EngineSession()
        node = TransformationNode("lowerCase", (PropertyNode("name"),))
        entity = Entity("e", {"name": "Berlin"})
        assert session.entity_values(node, entity) == ("berlin",)
        hits_before = session.stats().values.hits
        session.entity_values(node, entity)
        assert session.stats().values.hits == hits_before + 1

    def test_dedup_workload_shares_value_entries_across_sides(self):
        # Deduplication pair lists put the same entity on both sides;
        # the value tier must hold one entry per (op, entity), not two.
        entities = [Entity(f"e{i}", {"name": f"n{i}"}) for i in range(3)]
        pairs = [(entities[0], entities[1]), (entities[1], entities[2])]
        session = EngineSession()
        session.context(pairs).scores(_comparison())
        stats = session.stats()
        assert stats.values.size == 3  # one per unique entity
        assert stats.values.hits >= 1  # e1 reused across sides

    def test_facade_release_evicts_context_entries(self):
        from repro.core.evaluation import PairEvaluator

        session = EngineSession()
        with PairEvaluator(_pairs(), session=session) as evaluator:
            evaluator.scores(_comparison())
            assert session.stats().scores.size == 1
        stats = session.stats()
        assert stats.scores.size == 0
        assert stats.columns.size == 0
        assert stats.values.size > 0  # value tier survives release

    def test_clear_caches(self):
        session = EngineSession()
        context = session.context(_pairs())
        context.scores(_comparison())
        session.clear_caches()
        stats = session.stats()
        assert stats.values.size == 0
        assert stats.columns.size == 0
        assert stats.scores.size == 0
        # Compiler interning survives (never stale).
        assert stats.comparison_ops == 1

    def test_comparison_scores_read_only(self):
        context = EngineSession().context(_pairs())
        scores = context.scores(_comparison())
        with pytest.raises(ValueError):
            scores[0] = 0.5

    def test_engine_stats_through_evaluator_facade(self):
        from repro.core.evaluation import PairEvaluator

        evaluator = PairEvaluator(_pairs())
        evaluator.scores(_comparison())
        stats = evaluator.engine_stats()
        assert stats.scores.misses == 1
        assert stats.comparison_ops == 1
        assert evaluator.cache_misses == 1

    def test_facade_capacity_bounds_column_tier(self):
        from repro.core.evaluation import PairEvaluator

        evaluator = PairEvaluator(_pairs(), max_cached_comparisons=2)
        for prop in ("name", "year"):
            for threshold in (1.0, 2.0):
                evaluator.scores(
                    ComparisonNode(
                        "levenshtein",
                        threshold,
                        PropertyNode(prop),
                        PropertyNode(prop),
                    )
                )
        stats = evaluator.engine_stats()
        assert stats.columns.capacity == 2
        assert stats.scores.capacity == 2
        assert stats.columns.size <= 2
        assert stats.scores.size <= 2

    def test_shared_session_rejects_conflicting_registries(self):
        from repro.core.evaluation import PairEvaluator
        from repro.transforms.registry import TransformationRegistry

        session = EngineSession()
        with pytest.raises(ValueError, match="conflicting"):
            PairEvaluator(
                _pairs(), transforms=TransformationRegistry(), session=session
            )
        # The session's own registries are accepted.
        PairEvaluator(
            _pairs(),
            distances=session.distances,
            transforms=session.transforms,
            session=session,
        )

    def test_huge_sentinel_distances_no_overflow_warning(self):
        import warnings

        pairs = [
            (Entity("a0", {"name": "x"}), Entity("b0", {})),  # empty side
            (Entity("a1", {"name": "x"}), Entity("b1", {"name": "x"})),
        ]
        context = EngineSession().context(pairs)
        node = ComparisonNode(
            "levenshtein", 1e-9, PropertyNode("name"), PropertyNode("name")
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scores = context.scores(node)
        assert scores[0] == 0.0
        assert scores[1] == 1.0

    def test_release_context_evicts_batch_local_tiers_only(self):
        session = EngineSession()
        pairs = _pairs()
        ctx1 = session.context(pairs[:2])
        ctx2 = session.context(pairs[2:])
        ctx1.scores(_comparison())
        ctx2.scores(_comparison())
        values_before = session.stats().values.size
        session.release_context(ctx1)
        stats = session.stats()
        # ctx1's column/score vectors are gone, ctx2's remain, and the
        # entity-keyed value tier is untouched (cross-batch reuse).
        assert stats.columns.size == 1
        assert stats.scores.size == 1
        assert stats.values.size == values_before
        np.testing.assert_array_equal(
            ctx2.scores(_comparison()),
            EngineSession().context(pairs[2:]).scores(_comparison()),
        )

    def test_compiler_memo_bound(self):
        compiler = RuleCompiler(max_memo_entries=4)
        for i in range(20):
            compiler.compile(_comparison(threshold=float(i + 1)))
        # Memo tables stay bounded; interned threshold-free ops persist.
        assert len(compiler._compiled) <= 4
        assert compiler.comparison_op_count == 1

    def test_record_probe_counters_surface_in_stats(self):
        """Blocking probe traffic recorded via ``record_probe`` shows
        up in ``EngineStats`` (and survives ``clear_caches`` — probe
        counters are monotonic run statistics, not cache state)."""
        session = EngineSession()
        before = session.stats()
        assert before.probe_batches == 0
        assert before.probe_memo_hits == 0
        session.record_probe(batches=2, memo_hits=7)
        session.record_probe(memo_hits=1)
        session.clear_caches()
        stats = session.stats()
        assert stats.probe_batches == 2
        assert stats.probe_memo_hits == 8
