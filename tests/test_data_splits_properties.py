"""Property-based tests for cross-validation splits (repro.data.splits).

The Section 6.1 protocol rests on these invariants: splits partition
the links (nothing lost, nothing duplicated, no train/validation leak)
and stratification keeps both polarities present on both sides.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.reference_links import ReferenceLinkSet
from repro.data.splits import cross_validation_folds, train_validation_split


@st.composite
def _link_sets(draw, min_links=2, max_links=40):
    n_positive = draw(st.integers(min_value=min_links, max_value=max_links))
    n_negative = draw(st.integers(min_value=min_links, max_value=max_links))
    positive = [(f"a{i}", f"b{i}") for i in range(n_positive)]
    negative = [(f"a{i}", f"b{i + 1000}") for i in range(n_negative)]
    return ReferenceLinkSet(positive, negative)


@given(links=_link_sets(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60, deadline=None)
def test_two_fold_split_partitions_links(links, seed):
    train, validation = train_validation_split(links, random.Random(seed))
    all_positive = set(links.positive)
    all_negative = set(links.negative)
    assert set(train.positive) | set(validation.positive) == all_positive
    assert set(train.negative) | set(validation.negative) == all_negative
    assert not set(train.positive) & set(validation.positive)
    assert not set(train.negative) & set(validation.negative)


@given(links=_link_sets(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60, deadline=None)
def test_two_fold_split_stratified(links, seed):
    """Both polarities stay non-empty on both sides (the learner
    requires positive and negative training links)."""
    train, validation = train_validation_split(links, random.Random(seed))
    for side in (train, validation):
        assert side.positive
        assert side.negative


@given(
    links=_link_sets(min_links=6),
    folds=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_k_fold_validation_sets_partition_links(links, folds, seed):
    validations = [
        validation
        for __, validation in cross_validation_folds(
            links, folds, random.Random(seed)
        )
    ]
    assert len(validations) == folds
    seen_positive: list = []
    for validation in validations:
        seen_positive.extend(validation.positive)
    assert sorted(seen_positive) == sorted(links.positive)
    # Disjoint across folds:
    assert len(seen_positive) == len(set(seen_positive))


@given(
    links=_link_sets(min_links=6),
    folds=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_k_fold_train_and_validation_complementary(links, folds, seed):
    for train, validation in cross_validation_folds(
        links, folds, random.Random(seed)
    ):
        assert not set(train.positive) & set(validation.positive)
        assert not set(train.negative) & set(validation.negative)
        assert set(train.positive) | set(validation.positive) == set(
            links.positive
        )


@given(
    links=_link_sets(),
    seed=st.integers(min_value=0, max_value=2**31),
    fraction=st.floats(min_value=0.2, max_value=0.8),
)
@settings(max_examples=40, deadline=None)
def test_train_fraction_respected(links, seed, fraction):
    train, __ = train_validation_split(
        links, random.Random(seed), train_fraction=fraction
    )
    expected = round(len(links.positive) * fraction)
    # The split clamps to keep both sides non-empty.
    assert abs(len(train.positive) - expected) <= 1


@given(links=_link_sets(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_split_deterministic_for_same_rng_seed(links, seed):
    first = train_validation_split(links, random.Random(seed))
    second = train_validation_split(links, random.Random(seed))
    assert first[0].positive == second[0].positive
    assert first[1].negative == second[1].negative
