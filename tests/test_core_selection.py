"""Tests for tournament selection."""

import random

import pytest

from repro.core.nodes import ComparisonNode, PropertyNode
from repro.core.rule import LinkageRule
from repro.core.selection import TournamentSelector


def _rules(n: int) -> list[LinkageRule]:
    return [
        LinkageRule(
            ComparisonNode(
                "levenshtein", float(i + 1), PropertyNode("a"), PropertyNode("b")
            )
        )
        for i in range(n)
    ]


class TestTournamentSelector:
    def test_selects_best_with_full_tournament(self):
        rules = _rules(5)
        fitness = {rule: i for i, rule in enumerate(rules)}
        selector = TournamentSelector(tournament_size=50)
        winner = selector.select(rules, lambda r: fitness[r], random.Random(0))
        # A huge tournament almost surely samples the best rule.
        assert fitness[winner] == 4

    def test_tournament_size_one_is_uniform(self):
        rules = _rules(3)
        selector = TournamentSelector(tournament_size=1)
        rng = random.Random(0)
        seen = {selector.select(rules, lambda r: 0.0, rng) for _ in range(100)}
        assert len(seen) == 3

    def test_selection_pressure_monotone(self):
        """Bigger tournaments pick better rules on average."""
        rules = _rules(10)
        fitness = {rule: float(i) for i, rule in enumerate(rules)}

        def mean_fitness(size: int) -> float:
            selector = TournamentSelector(tournament_size=size)
            rng = random.Random(1)
            total = sum(
                fitness[selector.select(rules, lambda r: fitness[r], rng)]
                for _ in range(300)
            )
            return total / 300

        assert mean_fitness(5) > mean_fitness(1)

    def test_empty_population_raises(self):
        selector = TournamentSelector()
        with pytest.raises(ValueError):
            selector.select([], lambda r: 0.0, random.Random(0))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TournamentSelector(tournament_size=0)

    def test_select_pair_returns_two(self):
        rules = _rules(4)
        selector = TournamentSelector()
        pair = selector.select_pair(rules, lambda r: 1.0, random.Random(0))
        assert len(pair) == 2
        assert all(rule in rules for rule in pair)

    def test_paper_default_size_is_five(self):
        assert TournamentSelector().tournament_size == 5
