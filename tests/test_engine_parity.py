"""Engine/reference parity: compiled vectorized execution must agree
with the single-pair reference semantics of :func:`evaluate_rule` on
randomly generated rule trees — including empty-value sets, ``theta=0``
exact matching and parameterised transformations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import evaluate_rule
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.data.entity import Entity
from repro.engine import EngineSession

#: Properties entities may (or may not) carry — missing ones exercise
#: the empty-value-set path.
_PROPERTIES = ("name", "label", "year", "code")

_METRICS = (
    ("levenshtein", st.one_of(st.just(0.0), st.floats(0.0, 3.0))),
    ("equality", st.just(0.0)),
    ("jaccard", st.floats(0.0, 1.0)),
    ("jaro", st.floats(0.0, 0.5)),
    ("numeric", st.one_of(st.just(0.0), st.floats(0.0, 50.0))),
)

_WORDS = ("Berlin", "berlin", "New York", "beta-blocker", "1999", "12.5", "x")


def _value_strategy():
    leaf = st.sampled_from(_PROPERTIES).map(PropertyNode)
    unary = st.sampled_from(
        ("lowerCase", "upperCase", "tokenize", "stripPunctuation", "trim")
    )

    def extend(children):
        plain = st.tuples(unary, children).map(
            lambda pair: TransformationNode(pair[0], (pair[1],))
        )
        replace = children.map(
            lambda child: TransformationNode(
                "replace",
                (child,),
                params=(("replacement", " "), ("search", "-")),
            )
        )
        concat = st.tuples(children, children).map(
            lambda pair: TransformationNode("concatenate", pair)
        )
        return st.one_of(plain, replace, concat)

    return st.recursive(leaf, extend, max_leaves=4)


def _comparison_strategy():
    def build(metric_threshold, source, target, weight):
        metric, threshold = metric_threshold
        return ComparisonNode(metric, threshold, source, target, weight=weight)

    metric_threshold = st.sampled_from(_METRICS).flatmap(
        lambda pair: st.tuples(st.just(pair[0]), pair[1])
    )
    return st.builds(
        build,
        metric_threshold,
        _value_strategy(),
        _value_strategy(),
        st.integers(1, 4),
    )


def _similarity_strategy():
    def extend(children):
        return st.tuples(
            st.sampled_from(("min", "max", "wmean")),
            st.lists(children, min_size=1, max_size=3),
            st.integers(1, 4),
        ).map(lambda t: AggregationNode(t[0], tuple(t[1]), weight=t[2]))

    return st.recursive(_comparison_strategy(), extend, max_leaves=5)


def _entity_strategy(prefix: str):
    values = st.lists(st.sampled_from(_WORDS), min_size=0, max_size=2)
    props = st.fixed_dictionaries(
        {}, optional={name: values for name in _PROPERTIES}
    )
    return st.builds(
        lambda uid, properties: Entity(f"{prefix}{uid}", properties),
        st.integers(0, 5),
        props,
    )


@given(
    root=_similarity_strategy(),
    pairs=st.lists(
        st.tuples(_entity_strategy("a"), _entity_strategy("b")),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_engine_matches_single_pair_reference(root, pairs):
    scores = EngineSession().context(pairs).scores(root)
    assert scores.shape == (len(pairs),)
    for i, (entity_a, entity_b) in enumerate(pairs):
        expected = evaluate_rule(root, entity_a, entity_b)
        assert scores[i] == np.float64(scores[i])  # no NaN
        assert abs(scores[i] - expected) < 1e-9, (
            f"pair {i}: engine {scores[i]!r} != reference {expected!r} "
            f"for rule {root}"
        )


@given(
    root=_similarity_strategy(),
    pairs=st.lists(
        st.tuples(_entity_strategy("a"), _entity_strategy("b")),
        min_size=1,
        max_size=4,
    ),
)
@settings(max_examples=25, deadline=None)
def test_population_scores_match_individual_scores(root, pairs):
    """Population-level execution returns bit-identical vectors to
    per-rule execution (same kernels, shared caches)."""
    session = EngineSession()
    context = session.context(pairs)
    individual = context.scores(root)
    fresh = EngineSession().context(pairs)
    (population,) = fresh.population_scores([root])
    np.testing.assert_array_equal(individual, population)
