"""Tests for MultiBlock candidate generation (repro.matching.multiblock)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.matching.blocking import FullIndexBlocker
from repro.matching.multiblock import (
    BlockingQuality,
    DateGridIndexer,
    EqualityIndexer,
    GridIndexer,
    LatitudeGridIndexer,
    MultiBlocker,
    QGramIndexer,
    TokenIndexer,
    blocking_quality,
    build_comparison_index,
    indexer_for_comparison,
)
from repro.transforms.registry import default_registry as default_transforms


def compare(metric="levenshtein", threshold=1.0, source="label", target="label"):
    return ComparisonNode(
        metric=metric,
        threshold=threshold,
        source=PropertyNode(source),
        target=PropertyNode(target),
    )


class TestIndexers:
    def test_equality_blocks_on_exact_values(self):
        indexer = EqualityIndexer()
        assert indexer.block_keys(("a", "b")) == {"a", "b"}
        assert indexer.probe_keys(("a",)) == {"a"}

    def test_token_blocks_lowercase_tokens(self):
        indexer = TokenIndexer()
        assert indexer.block_keys(("New York", "NY")) == {"new", "york", "ny"}

    def test_qgram_blocks_share_grams_for_close_strings(self):
        indexer = QGramIndexer(q=2)
        keys_a = indexer.block_keys(("berlin",))
        keys_b = indexer.block_keys(("berlim",))  # edit distance 1
        assert keys_a & keys_b

    def test_qgram_short_strings_filed_whole(self):
        indexer = QGramIndexer(q=4)
        assert indexer.block_keys(("ab",)) == {"^ab$"}

    def test_qgram_rejects_bad_q(self):
        with pytest.raises(ValueError, match="q must be"):
            QGramIndexer(q=0)

    def test_grid_neighbours_probed(self):
        indexer = GridIndexer(extent=10.0)
        assert indexer.block_keys(("25",)) == {2}
        assert indexer.probe_keys(("25",)) == {1, 2, 3}

    def test_grid_ignores_unparseable(self):
        indexer = GridIndexer(extent=1.0)
        assert indexer.block_keys(("not-a-number",)) == set()

    def test_grid_rejects_bad_extent(self):
        with pytest.raises(ValueError, match="extent"):
            GridIndexer(extent=0.0)
        with pytest.raises(ValueError, match="extent"):
            GridIndexer(extent=float("nan"))

    def test_date_grid_uses_ordinals(self):
        indexer = DateGridIndexer(extent=365.0)
        keys = indexer.block_keys(("2001-06-15",))
        assert len(keys) == 1

    def test_latitude_grid_parses_points(self):
        indexer = LatitudeGridIndexer(threshold_metres=100_000)
        keys_city = indexer.block_keys(("52.5200,13.4050",))
        keys_near = indexer.block_keys(("POINT(13.30 52.60)",))
        assert keys_city
        probe = indexer.probe_keys(("52.5200,13.4050",))
        assert keys_near & probe

    def test_indexer_selection(self):
        assert isinstance(
            indexer_for_comparison(compare(metric="equality")), EqualityIndexer
        )
        assert isinstance(
            indexer_for_comparison(compare(metric="jaccard")), TokenIndexer
        )
        assert isinstance(
            indexer_for_comparison(compare(metric="levenshtein")), QGramIndexer
        )
        # Loose character thresholds have no dismissal-free index.
        assert indexer_for_comparison(
            compare(metric="levenshtein", threshold=8.0)
        ) is None
        assert indexer_for_comparison(
            compare(metric="jaroWinkler", threshold=0.6)
        ) is None
        assert indexer_for_comparison(compare(metric="mongeElkan")) is None
        assert isinstance(
            indexer_for_comparison(compare(metric="qgrams", threshold=0.9)),
            QGramIndexer,
        )
        assert isinstance(
            indexer_for_comparison(compare(metric="numeric", threshold=5.0)),
            GridIndexer,
        )
        # relativeNumeric has no dismissal-free fixed grid.
        assert indexer_for_comparison(
            compare(metric="relativeNumeric", threshold=0.1)
        ) is None
        assert isinstance(
            indexer_for_comparison(compare(metric="date", threshold=30.0)),
            DateGridIndexer,
        )
        assert isinstance(
            indexer_for_comparison(compare(metric="geographic", threshold=1000.0)),
            LatitudeGridIndexer,
        )
        assert indexer_for_comparison(compare(metric="unknownMeasure")) is None


def city_sources() -> tuple[DataSource, DataSource, list[tuple[str, str]]]:
    names = ["Berlin", "Hamburg", "Munich", "Cologne", "Dresden", "Leipzig",
             "Bremen", "Stuttgart", "Hanover", "Nuremberg"]
    entities_a = [
        Entity(f"a:{name.lower()}", {"label": name, "pop": str(1000 + i)})
        for i, name in enumerate(names)
    ]
    entities_b = [
        Entity(f"b:{name.lower()}", {"label": name.upper(), "pop": str(1000 + i)})
        for i, name in enumerate(names)
    ]
    matches = [
        (f"a:{name.lower()}", f"b:{name.lower()}") for name in names
    ]
    return DataSource("a", entities_a), DataSource("b", entities_b), matches


class TestMultiBlocker:
    def test_blocks_on_transformed_values(self):
        """Labels differ by case; blocking on lowerCase-transformed
        values still finds every match."""
        source_a, source_b, matches = city_sources()
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("lowerCase", (PropertyNode("label"),)),
                target=TransformationNode("lowerCase", (PropertyNode("label"),)),
            )
        )
        quality = blocking_quality(MultiBlocker(rule), source_a, source_b, matches)
        assert quality.pairs_completeness == 1.0
        assert quality.reduction_ratio > 0.5

    def test_min_aggregation_intersects(self):
        source_a, source_b, matches = city_sources()
        rule = LinkageRule(
            AggregationNode(
                function="min",
                operators=(
                    ComparisonNode(
                        metric="levenshtein",
                        threshold=1.0,
                        source=TransformationNode(
                            "lowerCase", (PropertyNode("label"),)
                        ),
                        target=TransformationNode(
                            "lowerCase", (PropertyNode("label"),)
                        ),
                    ),
                    ComparisonNode(
                        metric="numeric",
                        threshold=2.0,
                        source=PropertyNode("pop"),
                        target=PropertyNode("pop"),
                    ),
                ),
            )
        )
        intersect_quality = blocking_quality(
            MultiBlocker(rule), source_a, source_b, matches
        )
        single_rule = LinkageRule(rule.root.operators[0])
        single_quality = blocking_quality(
            MultiBlocker(single_rule), source_a, source_b, matches
        )
        assert intersect_quality.pairs_completeness == 1.0
        assert intersect_quality.candidate_pairs <= single_quality.candidate_pairs

    def test_max_aggregation_unions(self):
        source_a, source_b, matches = city_sources()
        label = ComparisonNode(
            metric="equality",
            threshold=0.0,
            source=PropertyNode("label"),
            target=PropertyNode("label"),
        )
        pop = ComparisonNode(
            metric="numeric",
            threshold=2.0,
            source=PropertyNode("pop"),
            target=PropertyNode("pop"),
        )
        rule = LinkageRule(AggregationNode(function="max", operators=(label, pop)))
        # equality blocking alone finds nothing (case differs), the
        # numeric branch of the union still covers all matches.
        quality = blocking_quality(MultiBlocker(rule), source_a, source_b, matches)
        assert quality.pairs_completeness == 1.0

    def test_unknown_measure_falls_back_to_full_index(self):
        source_a, source_b, __ = city_sources()
        rule = LinkageRule(compare(metric="someCustomMeasure"))
        blocker = MultiBlocker(rule)
        full = FullIndexBlocker()
        assert blocker.candidate_count(source_a, source_b) == full.candidate_count(
            source_a, source_b
        )

    def test_unknown_measure_inside_min_still_prunes(self):
        source_a, source_b, matches = city_sources()
        rule = LinkageRule(
            AggregationNode(
                function="min",
                operators=(
                    compare(metric="someCustomMeasure"),
                    ComparisonNode(
                        metric="numeric",
                        threshold=2.0,
                        source=PropertyNode("pop"),
                        target=PropertyNode("pop"),
                    ),
                ),
            )
        )
        quality = blocking_quality(MultiBlocker(rule), source_a, source_b, matches)
        assert quality.pairs_completeness == 1.0
        assert quality.reduction_ratio > 0.0

    def test_dedup_mode_yields_ordered_pairs_once(self):
        entities = [
            Entity(f"e{i}", {"label": f"Item {i // 2}"}) for i in range(8)
        ]
        source = DataSource("dedup", entities)
        rule = LinkageRule(compare(metric="jaccard", threshold=0.5))
        pairs = list(MultiBlocker(rule).candidates(source, source))
        seen = set()
        for a, b in pairs:
            assert a.uid < b.uid
            assert (a.uid, b.uid) not in seen
            seen.add((a.uid, b.uid))

    def test_engine_integration_matches_full_index(self):
        """Link generation through MultiBlocker equals the full-index
        result on a workload the indexers cover."""
        from repro.matching.engine import MatchingEngine

        source_a, source_b, __ = city_sources()
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("lowerCase", (PropertyNode("label"),)),
                target=TransformationNode("lowerCase", (PropertyNode("label"),)),
            )
        )
        full_links = MatchingEngine(blocker=FullIndexBlocker()).execute(
            rule, source_a, source_b
        )
        multi_links = MatchingEngine(blocker=MultiBlocker(rule)).execute(
            rule, source_a, source_b
        )
        assert [l.as_pair() for l in multi_links] == [
            l.as_pair() for l in full_links
        ]


class TestSessionAdoption:
    def _rule(self):
        return LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("lowerCase", (PropertyNode("label"),)),
                target=TransformationNode("lowerCase", (PropertyNode("label"),)),
            )
        )

    def test_default_blocker_adopts_engine_session(self, tmp_path):
        """An explicitly-passed, default-constructed MultiBlocker must
        still index through the engine's cache_dir (persistent index
        tier)."""
        from repro.matching.engine import MatchingEngine

        source_a, source_b, __ = city_sources()
        rule = self._rule()
        engine = MatchingEngine(
            blocker=MultiBlocker(rule), cache_dir=str(tmp_path)
        )
        try:
            cold = engine.execute(rule, source_a, source_b)
        finally:
            engine.close()
        store = engine.last_run_stats().store
        assert store.index_writes > 0

        warm_engine = MatchingEngine(
            blocker=MultiBlocker(rule), cache_dir=str(tmp_path)
        )
        try:
            warm = warm_engine.execute(rule, source_a, source_b)
        finally:
            warm_engine.close()
        warm_store = warm_engine.last_run_stats().store
        assert warm == cold
        assert warm_store.index_misses == 0
        assert warm_store.index_hits > 0

    def test_pinned_session_is_kept(self, tmp_path):
        """A blocker constructed over an explicit session keeps it —
        its transforms define the index keys — so the engine's store
        sees no index traffic."""
        from repro.engine.session import EngineSession
        from repro.matching.engine import MatchingEngine

        source_a, source_b, __ = city_sources()
        rule = self._rule()
        pinned = EngineSession()
        engine = MatchingEngine(
            blocker=MultiBlocker(rule, session=pinned),
            cache_dir=str(tmp_path),
        )
        try:
            engine.execute(rule, source_a, source_b)
        finally:
            engine.close()
        assert engine.last_run_stats().store.index_writes == 0


class TestComparisonIndex:
    def test_build_and_probe(self):
        source_a, source_b, __ = city_sources()
        comparison = ComparisonNode(
            metric="levenshtein",
            threshold=1.0,
            source=TransformationNode("lowerCase", (PropertyNode("label"),)),
            target=TransformationNode("lowerCase", (PropertyNode("label"),)),
        )
        index = build_comparison_index(comparison, source_b, default_transforms())
        assert index is not None
        berlin = source_a.entities()[0]
        assert "b:berlin" in index.candidates_for(berlin, default_transforms())

    def test_unindexable_returns_none(self):
        __, source_b, ___ = city_sources()
        index = build_comparison_index(
            compare(metric="mystery"), source_b, default_transforms()
        )
        assert index is None


class TestBlockingQuality:
    def test_counts(self):
        quality = BlockingQuality(
            candidate_pairs=20, total_pairs=100, covered_matches=9, total_matches=10
        )
        assert quality.pairs_completeness == pytest.approx(0.9)
        assert quality.reduction_ratio == pytest.approx(0.8)

    def test_no_matches_is_complete(self):
        quality = BlockingQuality(
            candidate_pairs=5, total_pairs=10, covered_matches=0, total_matches=0
        )
        assert quality.pairs_completeness == 1.0


# -- property-based: grid dismissal-freedom -----------------------------------


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=30,
    ),
    extent=st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_grid_indexer_never_dismisses_within_extent(values, extent):
    """Any two numbers within ``extent`` share a probed block."""
    indexer = GridIndexer(extent=extent)
    for x in values:
        for y in values:
            if abs(x - y) <= extent:
                probe = indexer.probe_keys((str(x),))
                blocks = indexer.block_keys((str(y),))
                assert probe & blocks, (x, y, extent)


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    edits=st.integers(min_value=0, max_value=1),
)
@settings(max_examples=60, deadline=None)
def test_qgram_indexer_covers_single_edits(seed, edits):
    """Strings at edit distance <= 1 (GenLink's typical threshold on
    names) always share a padded bigram for realistic lengths."""
    rng = random.Random(seed)
    word = "".join(rng.choice("abcdefghij") for __ in range(rng.randint(4, 12)))
    mutated = list(word)
    if edits:
        position = rng.randrange(len(mutated))
        mutated[position] = rng.choice("klmnop")
    mutated_word = "".join(mutated)
    indexer = QGramIndexer(q=2)
    assert indexer.block_keys((word,)) & indexer.probe_keys((mutated_word,))
