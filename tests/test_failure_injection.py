"""Cross-module failure injection: broken inputs fail loudly and early.

Production linkage runs hit degenerate inputs constantly — empty
sources, dangling reference links, rules naming measures that are not
installed. These tests pin the library's behaviour on each: a clear
exception naming the offending item, or a well-defined empty result,
never a silent wrong answer.
"""

from __future__ import annotations

import pytest

from repro.core.evaluation import PairEvaluator
from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.nodes import AggregationNode, ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule, RuleValidationError
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource
from repro.matching.engine import MatchingEngine
from repro.matching.multiblock import MultiBlocker


def simple_rule(metric: str = "levenshtein") -> LinkageRule:
    return LinkageRule(
        ComparisonNode(
            metric=metric,
            threshold=1.0,
            source=PropertyNode("label"),
            target=PropertyNode("label"),
        )
    )


class TestDegenerateSources:
    def test_engine_on_empty_sources_returns_no_links(self):
        empty = DataSource("empty", [])
        assert MatchingEngine().execute(simple_rule(), empty, empty) == []

    def test_multiblock_on_empty_sources_returns_no_candidates(self):
        empty = DataSource("empty", [])
        assert list(MultiBlocker(simple_rule()).candidates(empty, empty)) == []

    def test_engine_with_missing_property_yields_no_links(self):
        """Entities lacking the compared property never match (the
        documented absent-value semantics), rather than erroring."""
        source = DataSource("s", [Entity("a1", {"other": "x"})])
        target = DataSource("t", [Entity("b1", {"label": "x"})])
        assert MatchingEngine().execute(simple_rule(), source, target) == []

    def test_entity_with_empty_value_tuple_scores_zero(self):
        evaluator = PairEvaluator(
            [(Entity("a", {"label": ()}), Entity("b", {"label": "x"}))]
        )
        assert evaluator.scores(simple_rule().root)[0] == 0.0


class TestDanglingLinks:
    def test_labelled_pairs_names_the_missing_entity(self):
        source = DataSource("s", [Entity("a1", {"label": "x"})])
        target = DataSource("t", [Entity("b1", {"label": "x"})])
        links = ReferenceLinkSet(positive=[("a1", "MISSING")])
        with pytest.raises(KeyError, match="MISSING"):
            links.labelled_pairs(source, target)

    def test_learning_with_dangling_link_fails_loudly(self):
        source = DataSource("s", [Entity("a1", {"label": "x"})])
        target = DataSource("t", [Entity("b1", {"label": "x"})])
        links = ReferenceLinkSet(
            positive=[("a1", "b1")], negative=[("GONE", "b1")]
        )
        learner = GenLink(GenLinkConfig(population_size=10, max_iterations=1))
        with pytest.raises(KeyError, match="GONE"):
            learner.learn(source, target, links, rng=1)

    def test_single_class_training_links_rejected(self):
        source = DataSource("s", [Entity("a1", {"label": "x"})])
        target = DataSource("t", [Entity("b1", {"label": "x"})])
        learner = GenLink(GenLinkConfig(population_size=10, max_iterations=1))
        with pytest.raises(ValueError, match="positive and negative"):
            learner.learn(
                source, target, ReferenceLinkSet(positive=[("a1", "b1")]), rng=1
            )


class TestUnknownFunctions:
    def pair_evaluator(self) -> PairEvaluator:
        return PairEvaluator(
            [(Entity("a", {"label": "x"}), Entity("b", {"label": "x"}))]
        )

    def test_unknown_metric_names_known_alternatives(self):
        with pytest.raises(KeyError, match="levenshtein"):
            self.pair_evaluator().scores(simple_rule("doesNotExist").root)

    def test_unknown_transformation_names_known_alternatives(self):
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("doesNotExist", (PropertyNode("label"),)),
                target=PropertyNode("label"),
            )
        )
        with pytest.raises(KeyError, match="tokenize"):
            self.pair_evaluator().scores(rule.root)

    def test_unknown_aggregation_function_rejected(self):
        node = AggregationNode(
            function="median",
            operators=(simple_rule().root,),
        )
        with pytest.raises(ValueError, match="median"):
            self.pair_evaluator().scores(node)


class TestMalformedRules:
    def test_comparison_as_transformation_input_rejected(self):
        comparison = simple_rule().root
        with pytest.raises(RuleValidationError):
            LinkageRule(
                ComparisonNode(
                    metric="levenshtein",
                    threshold=1.0,
                    source=TransformationNode("lowerCase", (comparison,)),  # type: ignore[arg-type]
                    target=PropertyNode("label"),
                )
            )

    def test_property_as_rule_root_rejected(self):
        with pytest.raises(RuleValidationError):
            LinkageRule(PropertyNode("label"))  # type: ignore[arg-type]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            ComparisonNode(
                metric="levenshtein",
                threshold=-1.0,
                source=PropertyNode("label"),
                target=PropertyNode("label"),
            )

    def test_empty_aggregation_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            AggregationNode(function="min", operators=())


class TestUnparseableValues:
    def test_geographic_over_text_never_matches(self):
        rule = simple_rule("geographic")
        evaluator = PairEvaluator(
            [(Entity("a", {"label": "not a point"}),
              Entity("b", {"label": "also not"}))]
        )
        assert evaluator.scores(rule.root)[0] == 0.0

    def test_date_over_text_never_matches(self):
        rule = simple_rule("date")
        evaluator = PairEvaluator(
            [(Entity("a", {"label": "yesterday"}), Entity("b", {"label": "now"}))]
        )
        assert evaluator.scores(rule.root)[0] == 0.0

    def test_numeric_over_text_never_matches(self):
        rule = simple_rule("numeric")
        evaluator = PairEvaluator(
            [(Entity("a", {"label": "twelve"}), Entity("b", {"label": "12"}))]
        )
        assert evaluator.scores(rule.root)[0] == 0.0

    def test_mixed_parseable_values_still_match(self):
        """One parseable value among garbage is enough (min-over-pairs)."""
        rule = simple_rule("numeric")
        evaluator = PairEvaluator(
            [(
                Entity("a", {"label": ("garbage", "12")}),
                Entity("b", {"label": "12.4"}),
            )]
        )
        assert evaluator.scores(rule.root)[0] > 0.0
