"""The deterministic fault-injection layer.

The contracts under test:

- **Grammar** — ``REPRO_FAULTS`` parses into validated rules; every
  malformed rule fails loudly (a typo'd chaos schedule must never
  silently inject nothing).
- **Determinism** — the same plan text, seed and per-site invocation
  sequence fire the same faults, so a failing chaos run replays
  exactly.
- **Inertness** — with no plan installed the seams are a single
  ``None`` check and the engine's output is byte-identical.
- **Store resilience** — transient I/O faults degrade the persistent
  store to cold-cache behaviour without deleting healthy blobs or
  changing links; torn writes never publish partial bytes; enough
  consecutive faults trip the circuit breaker, which bypasses the
  disk, records the degradation, and half-opens after a cooldown.
- **Deadlines and cancellation** — a per-job wall-clock budget fails
  the job terminally at the next shard boundary (inline and worker
  paths); the ``cancel`` verb fails queued jobs immediately and flags
  running jobs cooperatively.
"""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro import faults
from repro.engine.store import ColumnStore
from repro.faults import (
    Cancelled,
    CancelToken,
    CircuitBreaker,
    FaultPlan,
    FaultPlanError,
    FiredFault,
)
from repro.matching.engine import MatchingEngine
from repro.service import JobStore, LinkageService, run_worker
from tests.test_service import DATASET, SCALE, direct_links


@pytest.fixture(autouse=True)
def _inert_after(monkeypatch):
    """Every test leaves the process-wide plan inert."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    yield
    faults.install(None)


# -- plan grammar ------------------------------------------------------------


def test_plan_parses_the_documented_example():
    plan = FaultPlan.parse(
        "store.write:io_error@0.05;queue.claim:delay@0.2:50ms;"
        "worker.execute:crash@job=3"
    )
    assert [r.site for r in plan.rules] == [
        "store.write", "queue.claim", "worker.execute",
    ]
    assert plan.rules[0].kind == "io_error" and plan.rules[0].rate == 0.05
    assert plan.rules[1].arg == pytest.approx(0.05)  # 50ms
    assert plan.rules[2].nth == 3 and plan.rules[2].rate is None
    assert "worker.execute:crash@n=3" in plan.describe()


def test_plan_defaults_missing_trigger_to_every_invocation():
    plan = FaultPlan.parse("engine.shard:delay")
    assert plan.rules[0].rate == 1.0 and plan.rules[0].arg is None


def test_plan_parses_errno_names_and_durations():
    plan = FaultPlan.parse("store.write:io_error@1.0:ENOSPC;store.read:delay:0.5s")
    assert plan.rules[0].arg == errno.ENOSPC
    assert plan.rules[1].arg == pytest.approx(0.5)


@pytest.mark.parametrize(
    "text",
    [
        "store.wriet:io_error",  # typo'd site
        "store.write:explode",  # unknown kind
        "store.write:io_error@maybe",  # unparseable probability
        "store.write:io_error@1.5",  # probability out of range
        "store.write:io_error@n=0",  # ordinal below 1
        "store.write:crash:50ms",  # crash takes no argument
        "store.write:io_error@1.0:EWHATEVER",  # unknown errno
        "store.write:delay:soon",  # unparseable duration
        "store.write",  # no kind at all
        "",  # no rules at all
        ";;",  # still no rules
    ],
)
def test_malformed_plans_fail_loudly(text):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(text)


# -- determinism -------------------------------------------------------------


def _drive(plan: FaultPlan, invocations: int = 200) -> list[FiredFault]:
    for _ in range(invocations):
        try:
            plan.fire("store.read")
        except OSError:
            pass
    return list(plan.fired)


def test_same_seed_fires_the_same_schedule():
    text = "store.read:io_error@0.1"
    first = _drive(FaultPlan.parse(text, seed=7))
    second = _drive(FaultPlan.parse(text, seed=7))
    assert first == second and len(first) > 0
    assert all(f.kind == "io_error" for f in first)


def test_different_seeds_fire_different_schedules():
    text = "store.read:io_error@0.1"
    first = _drive(FaultPlan.parse(text, seed=7))
    second = _drive(FaultPlan.parse(text, seed=8))
    assert [f.invocation for f in first] != [f.invocation for f in second]


def test_ordinal_trigger_fires_exactly_once():
    plan = FaultPlan.parse("store.read:io_error@n=3")
    fired = _drive(plan, invocations=10)
    assert fired == [FiredFault("store.read", "io_error", 3)]


def test_environment_resolution_and_reset(monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV, "store.read:io_error@n=1")
    monkeypatch.setenv(faults.FAULTS_SEED_ENV, "42")
    plan = faults.reset_from_env()
    assert plan is not None and plan.seed == 42
    assert faults.active() is plan
    monkeypatch.delenv(faults.FAULTS_ENV)
    assert faults.reset_from_env() is None


def test_fire_is_inert_without_a_plan():
    faults.install(None)
    faults.fire("store.read")  # must not raise, count, or allocate
    assert faults.active() is None


# -- store resilience --------------------------------------------------------


def _store(tmp_path, **breaker_kwargs) -> ColumnStore:
    breaker = CircuitBreaker(**breaker_kwargs) if breaker_kwargs else None
    return ColumnStore(tmp_path / "cache", breaker=breaker)


def test_transient_read_fault_is_a_miss_that_keeps_the_blob(tmp_path):
    store = _store(tmp_path)
    column = np.arange(5, dtype=np.float64)
    assert store.save("k" * 64, column)

    faults.install(FaultPlan.parse("store.read:io_error@n=1"))
    assert store.load("k" * 64, rows=5) is None  # degraded to a miss
    faults.install(None)

    loaded = store.load("k" * 64, rows=5)  # the blob survived the fault
    assert loaded is not None and np.array_equal(loaded, column)
    stats = store.stats()
    assert stats.io_faults == 1 and stats.invalid == 0


def test_torn_write_never_publishes_partial_bytes(tmp_path):
    store = _store(tmp_path)
    column = np.arange(64, dtype=np.float64)
    faults.install(FaultPlan.parse("store.write:torn@n=1"))
    assert store.save("k" * 64, column) is False
    faults.install(None)

    # Nothing half-written is visible: the key is a clean miss, and a
    # rebuilt save round-trips exactly.
    assert store.load("k" * 64, rows=64) is None
    assert not list((tmp_path / "cache").rglob("*.tmp*"))
    assert store.save("k" * 64, column)
    assert np.array_equal(store.load("k" * 64, rows=64), column)


def test_breaker_trips_bypasses_disk_and_half_opens(tmp_path):
    clock = {"now": 0.0}
    store = _store(
        tmp_path, threshold=2, cooldown=10.0, clock=lambda: clock["now"]
    )
    column = np.arange(3, dtype=np.float64)
    faults.install(FaultPlan.parse("store.write:io_error@1.0:ENOSPC"))
    assert store.save("a" * 64, column) is False
    assert store.save("b" * 64, column) is False  # second fault: trips
    assert store.breaker.state == "open"
    assert store.stats().breaker_trips == 1
    assert any("ENOSPC" in r or "space" in r for r in store.trip_reasons())

    # Open breaker: the disk is bypassed entirely — the still-armed
    # fault plan records no further invocations of the write seam.
    plan = faults.active()
    fired_before = len(plan.fired)
    assert store.save("c" * 64, column) is False
    assert store.load("a" * 64, rows=3) is None
    assert len(plan.fired) == fired_before

    # Cooldown elapses, the plan is healthy again: the half-open probe
    # succeeds and the breaker closes.
    faults.install(None)
    clock["now"] = 11.0
    assert store.breaker.state == "half-open"
    assert store.save("a" * 64, column)
    assert store.breaker.state == "closed"
    assert np.array_equal(store.load("a" * 64, rows=3), column)


def test_breaker_reopens_on_a_failed_probe():
    clock = {"now": 0.0}
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=lambda: clock["now"])
    breaker.record_failure("disk gone")
    assert breaker.state == "open" and not breaker.allow()
    clock["now"] = 6.0
    assert breaker.state == "half-open" and breaker.allow()
    breaker.record_failure("still gone")
    assert breaker.state == "open" and breaker.trips == 2
    assert len(breaker.trip_reasons()) == 2


def test_store_faults_degrade_links_without_changing_them(tmp_path):
    """The store is only a cache: a disk faulting on every other
    operation must not change a single link, only record degradation."""
    baseline = direct_links()

    faults.install(
        FaultPlan.parse("store.read:io_error@0.5;store.write:io_error@0.5", seed=3)
    )
    try:
        from repro.datasets import load_dataset
        from repro.matching.incremental import dataset_rule

        dataset = load_dataset(DATASET, seed=0, scale=SCALE)
        engine = MatchingEngine(cache_dir=str(tmp_path / "cache"))
        try:
            links = engine.execute(
                dataset_rule(DATASET), dataset.source_a, dataset.source_b
            )
            stats = engine.last_run_stats()
        finally:
            engine.close()
    finally:
        faults.install(None)

    assert links == baseline
    assert stats.store is not None and stats.store.io_faults > 0


def test_inert_plan_means_identical_links_and_stats(tmp_path):
    """The acceptance gate in miniature: seams without a plan change
    nothing — links and store counters match a seam-free-equivalent
    run bit for bit."""
    from repro.datasets import load_dataset
    from repro.matching.incremental import dataset_rule

    dataset = load_dataset(DATASET, seed=0, scale=SCALE)
    runs = []
    for directory in ("one", "two"):
        engine = MatchingEngine(cache_dir=str(tmp_path / directory))
        try:
            links = engine.execute(
                dataset_rule(DATASET), dataset.source_a, dataset.source_b
            )
            runs.append((links, engine.last_run_stats()))
        finally:
            engine.close()
    (links_a, stats_a), (links_b, stats_b) = runs
    assert links_a == links_b == direct_links()
    assert stats_a.store == stats_b.store
    assert stats_a.degraded == () and stats_a.store.io_faults == 0


# -- job-record atomicity ----------------------------------------------------


def test_torn_record_write_leaves_the_previous_record_visible(tmp_path):
    store = JobStore(tmp_path)
    record = store.create("link", {"dataset": DATASET})

    faults.install(FaultPlan.parse("jobs.write:torn@n=1"))
    with pytest.raises(OSError):
        store.transition(record.job_id, "running", expect="queued", worker="w0")
    faults.install(None)

    # The failed publication is invisible: the record still parses and
    # still holds the pre-transition state.
    reread = store.get(record.job_id)
    assert reread.state == "queued" and reread.worker is None
    assert not list((tmp_path / "jobs").glob("*.tmp*"))


# -- cancellation and deadlines ----------------------------------------------


def test_cancel_token_deadline_and_first_reason_wins():
    clock = {"now": 0.0}
    token = CancelToken(deadline=1.0, clock=lambda: clock["now"])
    token.check()  # within budget: a no-op
    clock["now"] = 1.5
    assert token.cancelled
    with pytest.raises(Cancelled) as caught:
        token.check()
    assert caught.value.reason == "deadline"
    token.cancel("operator")  # later reasons do not overwrite
    assert token.reason == "deadline"

    explicit = CancelToken()
    explicit.cancel("operator")
    with pytest.raises(Cancelled) as caught:
        explicit.check()
    assert caught.value.reason == "operator"


def test_inline_deadline_fails_the_job_terminally(tmp_path):
    with LinkageService(root=tmp_path, queue="inline") as service:
        record = service.submit("link", dataset=DATASET, scale=SCALE, deadline=1e-9)
        assert record.state == "failed" and record.error == "deadline"
        assert record.deadline == 1e-9


def test_deadline_env_default_and_argument_precedence(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_JOB_DEADLINE", "120")
    service = LinkageService(root=tmp_path, queue="file")
    from_env = service.submit("link", dataset=DATASET, scale=SCALE)
    explicit = service.submit(
        "link", dataset=DATASET, scale=SCALE, deadline=5.0
    )
    assert from_env.deadline == 120.0
    assert explicit.deadline == 5.0


def test_worker_deadline_fails_the_job_and_acks_the_ticket(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, scale=SCALE, deadline=1e-9)
    assert record.state == "queued"
    run_worker(
        tmp_path, worker_id="w0", cache_dir=service.cache_dir, drain=True
    )
    done = service.status(record.job_id)
    assert done.state == "failed" and done.error == "deadline"
    assert service.queue.depth() == 0 and not service.queue.claimed()


def test_cancel_verb_fails_queued_jobs_immediately(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, scale=SCALE)
    cancelled = service.cancel(record.job_id)
    assert cancelled.state == "failed" and cancelled.error == "cancelled"

    # The orphaned ticket is dropped by the next worker, not executed.
    run_worker(
        tmp_path, worker_id="w0", cache_dir=service.cache_dir, drain=True
    )
    assert service.status(record.job_id).state == "failed"
    assert service.queue.depth() == 0 and not service.queue.claimed()


def test_cancel_verb_flags_running_jobs_and_rejects_terminal(tmp_path):
    import time

    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, scale=SCALE)
    service.queue.claim("w0")
    service.store.transition(
        record.job_id, "running", expect="queued",
        attempts=1, worker="w0", heartbeat_at=time.time(),
    )
    flagged = service.cancel(record.job_id)
    assert flagged.state == "running" and flagged.cancel_requested

    service.store.transition(
        record.job_id, "failed", expect="running", error="cancelled"
    )
    with pytest.raises(ValueError):
        service.cancel(record.job_id)


def test_pre_claimed_cancel_is_honoured_by_the_worker(tmp_path):
    """A cancel flag set while the job is queued-but-claimed is seen by
    the worker before any work: the run starts pre-cancelled."""
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, scale=SCALE)
    # Flag the record directly (the verb only flags running jobs).
    stored = service.store.get(record.job_id)
    stored.cancel_requested = True
    service.store.save(stored)

    run_worker(
        tmp_path, worker_id="w0", cache_dir=service.cache_dir, drain=True
    )
    done = service.status(record.job_id)
    assert done.state == "failed" and done.error == "cancelled"
    with pytest.raises(KeyError):
        service.links(record.job_id)  # nothing was computed or stored


# -- cli -----------------------------------------------------------------------


def test_cli_cancel_and_deadline(tmp_path, capsys):
    from repro.experiments.cli import main

    service_args = ["--service-dir", str(tmp_path), "--queue", "file"]
    assert main(["submit", *service_args, DATASET, "--scale", str(SCALE),
                 "--deadline", "300"]) == 0
    job_id = capsys.readouterr().out.split()[0]

    store = JobStore(tmp_path)
    assert store.get(job_id).deadline == 300.0

    assert main(["cancel", *service_args, job_id]) == 0
    out = capsys.readouterr().out
    assert job_id in out and "failed" in out
    assert store.get(job_id).error == "cancelled"

    with pytest.raises(SystemExit):
        main(["cancel", *service_args, job_id])  # already terminal
