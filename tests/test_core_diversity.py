"""Tests for population diversity diagnostics (repro.core.diversity)."""

from __future__ import annotations

import pytest

from repro.core.diversity import (
    DiversityTracker,
    PopulationSnapshot,
    snapshot_population,
    structural_signature,
)
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule


def compare(metric="levenshtein", threshold=1.0, prop="label", weight=1):
    return ComparisonNode(
        metric=metric,
        threshold=threshold,
        source=PropertyNode(prop),
        target=PropertyNode(prop),
        weight=weight,
    )


class TestStructuralSignature:
    def test_same_rule_same_signature(self):
        a = LinkageRule(compare())
        b = LinkageRule(compare())
        assert structural_signature(a) == structural_signature(b)

    def test_threshold_ignored(self):
        a = LinkageRule(compare(threshold=1.0))
        b = LinkageRule(compare(threshold=3.0))
        assert structural_signature(a) == structural_signature(b)

    def test_weight_ignored(self):
        a = LinkageRule(compare(weight=1))
        b = LinkageRule(compare(weight=7))
        assert structural_signature(a) == structural_signature(b)

    def test_metric_distinguishes(self):
        a = LinkageRule(compare(metric="levenshtein"))
        b = LinkageRule(compare(metric="jaccard"))
        assert structural_signature(a) != structural_signature(b)

    def test_property_distinguishes(self):
        a = LinkageRule(compare(prop="label"))
        b = LinkageRule(compare(prop="name"))
        assert structural_signature(a) != structural_signature(b)

    def test_transformation_distinguishes(self):
        plain = LinkageRule(compare())
        wrapped = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("lowerCase", (PropertyNode("label"),)),
                target=PropertyNode("label"),
            )
        )
        assert structural_signature(plain) != structural_signature(wrapped)

    def test_aggregation_child_order_irrelevant(self):
        x = compare(metric="levenshtein")
        y = compare(metric="jaccard")
        a = LinkageRule(AggregationNode(function="min", operators=(x, y)))
        b = LinkageRule(AggregationNode(function="min", operators=(y, x)))
        assert structural_signature(a) == structural_signature(b)

    def test_aggregation_function_distinguishes(self):
        x = compare(metric="levenshtein")
        y = compare(metric="jaccard")
        a = LinkageRule(AggregationNode(function="min", operators=(x, y)))
        b = LinkageRule(AggregationNode(function="max", operators=(x, y)))
        assert structural_signature(a) != structural_signature(b)

    def test_signature_is_hashable(self):
        hash(structural_signature(LinkageRule(compare())))


class TestSnapshot:
    def fitness(self, rule):
        return float(rule.root.threshold)

    def test_basic_statistics(self):
        population = [
            LinkageRule(compare(threshold=1.0)),
            LinkageRule(compare(threshold=2.0)),
            LinkageRule(compare(threshold=3.0)),
        ]
        snapshot = snapshot_population(population, self.fitness, iteration=4)
        assert snapshot.iteration == 4
        assert snapshot.size == 3
        assert snapshot.best_fitness == 3.0
        assert snapshot.mean_fitness == pytest.approx(2.0)
        assert snapshot.unique_rule_ratio == 1.0
        # Same structure everywhere: one signature across 3 rules.
        assert snapshot.unique_signature_ratio == pytest.approx(1 / 3)

    def test_duplicate_rules_lower_unique_ratio(self):
        rule = LinkageRule(compare())
        snapshot = snapshot_population([rule, rule, rule, rule], self.fitness)
        assert snapshot.unique_rule_ratio == pytest.approx(0.25)

    def test_measure_usage_counts_rules_not_nodes(self):
        double = LinkageRule(
            AggregationNode(
                function="min",
                operators=(compare(metric="jaccard"), compare(metric="jaccard",
                                                              threshold=2.0)),
            )
        )
        snapshot = snapshot_population(
            [double, LinkageRule(compare(metric="jaccard"))],
            lambda rule: 0.0,
        )
        usage = dict(snapshot.measure_usage)
        assert usage["jaccard"] == 2  # two rules, not three comparison nodes

    def test_empty_population_raises(self):
        with pytest.raises(ValueError, match="empty"):
            snapshot_population([], self.fitness)

    def test_describe_mentions_key_numbers(self):
        snapshot = snapshot_population([LinkageRule(compare())], self.fitness)
        text = snapshot.describe()
        assert "best=" in text and "unique=" in text


class TestDiversityTracker:
    def fitness(self, rule):
        return float(rule.root.threshold)

    def population(self, *thresholds):
        return [LinkageRule(compare(threshold=t)) for t in thresholds]

    def test_observer_protocol(self):
        tracker = DiversityTracker(self.fitness)
        tracker(0, self.population(1.0, 2.0))
        tracker(1, self.population(2.0, 3.0))
        assert len(tracker.snapshots) == 2
        assert tracker.latest.iteration == 1
        assert isinstance(tracker.latest, PopulationSnapshot)

    def test_latest_before_observation_raises(self):
        tracker = DiversityTracker(self.fitness)
        with pytest.raises(ValueError, match="not observed"):
            tracker.latest

    def test_convergence_on_fitness_plateau(self):
        tracker = DiversityTracker(self.fitness)
        for i in range(8):
            tracker(i, self.population(5.0, 4.0))
        assert tracker.converged(window=5)

    def test_no_convergence_while_improving(self):
        tracker = DiversityTracker(self.fitness)
        for i in range(8):
            tracker(i, self.population(float(i), float(i) / 2))
        # Signature diversity is low (all rules share one structure),
        # so raise the collapse threshold out of the way.
        assert not tracker.converged(window=5, signature_ratio=0.0)

    def test_convergence_on_signature_collapse(self):
        tracker = DiversityTracker(self.fitness)
        rule = LinkageRule(compare())
        tracker(0, [rule] * 50)
        assert tracker.converged(signature_ratio=0.05)

    def test_stagnation_length(self):
        tracker = DiversityTracker(self.fitness)
        tracker(0, self.population(1.0))
        tracker(1, self.population(2.0))
        tracker(2, self.population(2.0))
        tracker(3, self.population(2.0))
        assert tracker.stagnation_length() == 2

    def test_render_one_line_per_snapshot(self):
        tracker = DiversityTracker(self.fitness)
        tracker(0, self.population(1.0))
        tracker(1, self.population(2.0))
        lines = tracker.render().splitlines()
        assert len(lines) == 2 + 2  # header + separator + 2 rows

    def test_integration_with_genlink(self, city_sources):
        from repro.core.genlink import GenLink, GenLinkConfig
        from repro.data.reference_links import ReferenceLinkSet

        source_a, source_b = city_sources
        links = ReferenceLinkSet(
            positive=[
                ("a:berlin", "b:berlin"),
                ("a:hamburg", "b:hamburg"),
                ("a:munich", "b:munich"),
            ],
            negative=[
                ("a:berlin", "b:hamburg"),
                ("a:hamburg", "b:munich"),
                ("a:munich", "b:leipzig"),
            ],
        )
        learner = GenLink(GenLinkConfig(population_size=20, max_iterations=3))
        tracker = DiversityTracker(lambda rule: 0.0)
        result = learner.learn(source_a, source_b, links, rng=7, observer=tracker)
        assert tracker.snapshots
        assert tracker.snapshots[0].iteration == 0
        assert tracker.snapshots[0].size == 20
        # One snapshot per recorded iteration (early stop allowed).
        assert len(tracker.snapshots) == len(result.history)
