"""Tests for the compatible property search (Algorithm 2)."""

import random

import pytest

from repro.core.compatible import CompatibleProperty, find_compatible_properties
from repro.data.entity import Entity
from repro.data.source import DataSource


def _sources():
    source_a = DataSource(
        "A",
        [
            Entity("a1", {"label": "Berlin", "pop": "3500000", "junk": "qqqq"}),
            Entity("a2", {"label": "Hamburg", "pop": "1800000", "junk": "wwww"}),
            Entity("a3", {"label": "Munich", "pop": "1500000", "junk": "rrrr"}),
        ],
    )
    source_b = DataSource(
        "B",
        [
            Entity("b1", {"name": "berlin", "population": "3500000", "misc": "zz12"}),
            Entity("b2", {"name": "hamburg", "population": "1800000", "misc": "yy34"}),
            Entity("b3", {"name": "munich", "population": "1500000", "misc": "xx56"}),
        ],
    )
    links = [("a1", "b1"), ("a2", "b2"), ("a3", "b3")]
    return source_a, source_b, links


class TestFindCompatibleProperties:
    def test_finds_label_name_pair(self):
        source_a, source_b, links = _sources()
        pairs = find_compatible_properties(source_a, source_b, links)
        assert CompatibleProperty("label", "name", "levenshtein") in pairs

    def test_finds_numeric_pair(self):
        source_a, source_b, links = _sources()
        pairs = find_compatible_properties(source_a, source_b, links)
        measures = {
            p.measure for p in pairs if (p.source_property, p.target_property)
            == ("pop", "population")
        }
        assert measures  # detected via at least one detector

    def test_junk_properties_excluded(self):
        source_a, source_b, links = _sources()
        pairs = find_compatible_properties(source_a, source_b, links)
        assert not any(
            p.source_property == "junk" and p.target_property == "misc"
            for p in pairs
        )

    def test_geographic_detection(self):
        source_a = DataSource("A", [Entity("a1", {"geo": "52.52,13.40"})])
        source_b = DataSource("B", [Entity("b1", {"point": "POINT(13.41 52.53)"})])
        pairs = find_compatible_properties(source_a, source_b, [("a1", "b1")])
        assert CompatibleProperty("geo", "point", "geographic") in pairs

    def test_date_detection(self):
        source_a = DataSource("A", [Entity("a1", {"released": "1994-05-20"})])
        source_b = DataSource("B", [Entity("b1", {"year": "1994"})])
        pairs = find_compatible_properties(source_a, source_b, [("a1", "b1")])
        assert CompatibleProperty("released", "year", "date") in pairs

    def test_empty_links(self):
        source_a, source_b, _ = _sources()
        assert find_compatible_properties(source_a, source_b, []) == []

    def test_min_support_filters_spurious_pairs(self):
        source_a, source_b, links = _sources()
        # With min_support of 100% every pair must hold on all links.
        pairs = find_compatible_properties(
            source_a, source_b, links, min_support=1.0
        )
        assert CompatibleProperty("label", "name", "levenshtein") in pairs

    def test_max_links_sampling(self):
        source_a, source_b, links = _sources()
        pairs = find_compatible_properties(
            source_a, source_b, links, max_links=1, rng=random.Random(0)
        )
        assert pairs  # still finds the label pair from a single link

    def test_ranked_by_support(self):
        source_a, source_b, links = _sources()
        pairs = find_compatible_properties(source_a, source_b, links)
        # label/name holds on all three links and should rank first.
        assert pairs[0].source_property == "label"
