"""Tests for the parallel execution layer: executor resolution,
order-preserving maps, thread-safe sessions, sharded matching with
deterministic link ordering, per-generation reuse diffing, and the
process-pool path."""

from __future__ import annotations

import os
import pickle
from unittest import mock

import numpy as np
import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.engine import EngineSession
from repro.engine.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WORKERS_ENV,
    parse_workers_spec,
    resolve_executor,
    window_batches,
)
from repro.matching.blocking import FullIndexBlocker
from repro.matching.engine import MatchingEngine


def _square(x):
    """Module-level so process pools can pickle it."""
    return x * x


def _comparison(metric="levenshtein", threshold=2.0, prop="name"):
    return ComparisonNode(
        metric,
        threshold,
        TransformationNode("lowerCase", (PropertyNode(prop),)),
        TransformationNode("lowerCase", (PropertyNode(prop),)),
    )


def _rule() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "max",
            (
                _comparison("levenshtein", 1.0, "label"),
                ComparisonNode(
                    "jaccard",
                    0.7,
                    TransformationNode("tokenize", (PropertyNode("label"),)),
                    TransformationNode("tokenize", (PropertyNode("label"),)),
                ),
            ),
        )
    )


def _sources(n=23):
    source_a = DataSource(
        "A",
        [
            Entity(f"a{i}", {"label": f"entity {i % 7} alpha", "year": str(i)})
            for i in range(n)
        ],
    )
    source_b = DataSource(
        "B",
        [
            Entity(f"b{i}", {"label": f"Entity {i % 5} ALPHA", "year": str(i)})
            for i in range(n)
        ],
    )
    return source_a, source_b


class TestResolution:
    def test_default_is_serial(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(WORKERS_ENV, None)
            assert isinstance(resolve_executor(None), SerialExecutor)

    def test_env_selects_threads(self):
        with mock.patch.dict(os.environ, {WORKERS_ENV: "3"}):
            executor = resolve_executor(None)
        assert isinstance(executor, ThreadExecutor)
        assert executor.workers == 3

    def test_int_specs(self):
        assert isinstance(resolve_executor(0), SerialExecutor)
        assert isinstance(resolve_executor(2), ThreadExecutor)
        with pytest.raises(ValueError):
            resolve_executor(-1)

    def test_string_specs(self):
        assert isinstance(parse_workers_spec("serial"), SerialExecutor)
        assert isinstance(parse_workers_spec("0"), SerialExecutor)
        assert isinstance(parse_workers_spec("4"), ThreadExecutor)
        assert isinstance(parse_workers_spec("thread:2"), ThreadExecutor)
        process = parse_workers_spec("process:2")
        assert isinstance(process, ProcessExecutor)
        assert process.workers == 2
        assert parse_workers_spec("thread:0").kind == "serial"

    def test_invalid_specs(self):
        for spec in ("nope", "thread:x", "gpu:4", "thread:-1"):
            with pytest.raises(ValueError):
                parse_workers_spec(spec)
        with pytest.raises(TypeError):
            resolve_executor(True)
        with pytest.raises(TypeError):
            resolve_executor(2.5)

    def test_executor_passthrough(self):
        executor = SerialExecutor()
        assert resolve_executor(executor) is executor


class TestExecutors:
    def test_serial_map_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_thread_map_preserves_order(self):
        with ThreadExecutor(4) as executor:
            assert executor.map(_square, list(range(50))) == [
                i * i for i in range(50)
            ]

    def test_thread_close_idempotent(self):
        executor = ThreadExecutor(2)
        executor.map(_square, [1, 2, 3])
        executor.close()
        executor.close()

    def test_thread_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_process_map_preserves_order(self):
        with ProcessExecutor(2) as executor:
            assert executor.map(_square, [5, 3, 1]) == [25, 9, 1]

    def test_window_batches(self):
        assert list(window_batches(iter([1, 2, 3, 4, 5]), 2)) == [
            [1, 2],
            [3, 4],
            [5],
        ]
        assert list(window_batches(iter([]), 3)) == []
        with pytest.raises(ValueError):
            list(window_batches([1], 0))


class TestEntityPickling:
    def test_round_trip_is_exact(self):
        entity = Entity("e1", {"name": ("A", "B"), "year": "1999"})
        clone = pickle.loads(pickle.dumps(entity))
        assert clone == entity
        assert clone.values("name") == ("A", "B")
        assert hash(clone) == hash(entity)


class TestSessionExecutor:
    def _population(self):
        return [
            _comparison("levenshtein", float(t), prop)
            for t in (1.0, 2.0, 3.0)
            for prop in ("name", "year")
        ]

    def _pairs(self, n=12):
        return [
            (
                Entity(f"a{i}", {"name": f"entity {i}", "year": str(1990 + i)}),
                Entity(f"b{i}", {"name": f"entity {i % 3}", "year": str(1991 + i)}),
            )
            for i in range(n)
        ]

    def test_population_scores_identical_across_workers(self):
        pairs = self._pairs()
        population = self._population()
        baseline = EngineSession(executor=0).context(pairs).population_scores(
            population
        )
        for workers in (1, 2, 4):
            with EngineSession(executor=workers) as session:
                vectors = session.context(pairs).population_scores(population)
            assert len(vectors) == len(baseline)
            for vector, expected in zip(vectors, baseline):
                assert vector.tobytes() == expected.tobytes()

    def test_process_executor_keeps_column_build_inline(self):
        # Process pools cannot share the column cache; the session must
        # still produce correct results by building inline.
        with EngineSession(executor="process:2") as session:
            vectors = session.context(self._pairs()).population_scores(
                self._population()
            )
        baseline = EngineSession().context(self._pairs()).population_scores(
            self._population()
        )
        for vector, expected in zip(vectors, baseline):
            assert vector.tobytes() == expected.tobytes()

    def test_concurrent_contexts_thread_safe(self):
        # Hammer one session from a thread pool: shared value tier,
        # separate contexts. Results must match fresh serial sessions.
        session = EngineSession(executor=4)
        pairs = self._pairs(30)
        node = _comparison()

        def score_slice(i):
            chunk = pairs[i : i + 10]
            context = session.context(chunk)
            try:
                return context.scores(node)
            finally:
                session.release_context(context)

        starts = [0, 5, 10, 15, 20] * 6
        results = session.executor.map(score_slice, starts)
        for start, scores in zip(starts, results):
            expected = EngineSession().context(pairs[start : start + 10]).scores(
                node
            )
            assert scores.tobytes() == expected.tobytes()
        session.close()


class TestGenerationDiffs:
    def test_first_generation_is_all_new(self):
        session = EngineSession()
        context = session.context(
            [(Entity("a", {"name": "x"}), Entity("b", {"name": "y"}))]
        )
        context.population_scores([_comparison(threshold=1.0)])
        stats = session.stats()
        assert stats.generations == 1
        diff = stats.last_generation
        assert diff.index == 0
        assert diff.comparison_ops == 1
        assert diff.new_comparison_ops == 1
        assert diff.comparison_reuse_ratio == 0.0
        assert stats.last_comparison_reuse == 0.0

    def test_threshold_mutations_fully_reuse(self):
        session = EngineSession()
        context = session.context(
            [(Entity("a", {"name": "x"}), Entity("b", {"name": "y"}))]
        )
        context.population_scores([_comparison(threshold=1.0)])
        # Generation 2: same genetic material, mutated thresholds.
        context.population_scores(
            [_comparison(threshold=2.0), _comparison(threshold=3.0)]
        )
        diffs = session.generation_diffs()
        assert len(diffs) == 2
        assert diffs[1].new_comparison_ops == 0
        assert diffs[1].new_value_ops == 0
        assert diffs[1].comparison_reuse_ratio == 1.0
        assert diffs[1].value_reuse_ratio == 1.0

    def test_partial_reuse_ratio(self):
        session = EngineSession()
        context = session.context(
            [(Entity("a", {"name": "x", "year": "1"}),
              Entity("b", {"name": "y", "year": "2"}))]
        )
        context.population_scores([_comparison(prop="name")])
        context.population_scores(
            [_comparison(prop="name"), _comparison(prop="year")]
        )
        diff = session.stats().last_generation
        assert diff.comparison_ops == 2
        assert diff.new_comparison_ops == 1
        assert diff.comparison_reuse_ratio == 0.5

    def test_ratios_stay_in_unit_interval_with_nested_transforms(self):
        # Nested value subtrees intern extra signatures; the diff must
        # count over the plan's top-level basis so ratios stay in [0, 1].
        session = EngineSession()
        context = session.context(
            [(Entity("a", {"name": "x"}), Entity("b", {"name": "y"}))]
        )
        nested = ComparisonNode(
            "levenshtein",
            1.0,
            TransformationNode(
                "trim",
                (TransformationNode("lowerCase", (PropertyNode("name"),)),),
            ),
            PropertyNode("name"),
        )
        context.population_scores([nested])
        diff = session.stats().last_generation
        assert 0.0 <= diff.value_reuse_ratio <= 1.0
        assert 0.0 <= diff.comparison_reuse_ratio <= 1.0
        assert diff.new_value_ops <= diff.value_ops
        assert diff.new_comparison_ops <= diff.comparison_ops

    def test_empty_population_ratio_defined(self):
        session = EngineSession()
        session.context([]).population_scores([])
        diff = session.stats().last_generation
        assert diff.comparison_reuse_ratio == 1.0
        assert diff.value_reuse_ratio == 1.0


class TestShardedMatching:
    def test_links_identical_across_worker_counts(self):
        """The acceptance bar: byte-identical links (values and order)
        for workers in {0, 1, 2, 4}, across batch sizes."""
        source_a, source_b = _sources()
        rule = _rule()
        for batch_size in (3, 7, 1000):
            baseline = None
            for workers in (0, 1, 2, 4):
                with MatchingEngine(
                    blocker=FullIndexBlocker(),
                    batch_size=batch_size,
                    workers=workers,
                ) as engine:
                    links = list(engine.iter_links(rule, source_a, source_b))
                snapshot = [
                    (link.uid_a, link.uid_b, link.score.hex()) for link in links
                ]
                if baseline is None:
                    baseline = snapshot
                    assert snapshot, "degenerate test: no links generated"
                else:
                    assert snapshot == baseline, (
                        f"workers={workers} batch_size={batch_size} diverged"
                    )

    def test_process_workers_match_serial(self):
        source_a, source_b = _sources(12)
        rule = _rule()
        serial = MatchingEngine(blocker=FullIndexBlocker(), batch_size=5)
        expected = [
            (l.uid_a, l.uid_b, l.score.hex())
            for l in serial.iter_links(rule, source_a, source_b)
        ]
        with MatchingEngine(
            blocker=FullIndexBlocker(), batch_size=5, workers="process:2"
        ) as engine:
            actual = [
                (l.uid_a, l.uid_b, l.score.hex())
                for l in engine.iter_links(rule, source_a, source_b)
            ]
        assert actual == expected
        stats = engine.last_run_stats()
        assert stats.value_stats is not None
        assert stats.value_stats.size > 0

    def test_last_run_stats(self):
        source_a, source_b = _sources(10)
        engine = MatchingEngine(blocker=FullIndexBlocker(), batch_size=8)
        assert engine.last_run_stats() is None
        links = list(engine.iter_links(_rule(), source_a, source_b))
        stats = engine.last_run_stats()
        assert stats.pairs == 100
        assert stats.batches == 13
        assert stats.links == len(links)
        assert stats.value_stats.size > 0

    def test_process_rejects_shared_session(self):
        with pytest.raises(ValueError, match="process-pool"):
            MatchingEngine(session=EngineSession(), workers="process:2")

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            MatchingEngine(batch_size=0)

    def test_executor_property_and_env(self):
        with mock.patch.dict(os.environ, {WORKERS_ENV: "2"}):
            engine = MatchingEngine()
        assert engine.executor.kind == "thread"
        assert engine.executor.workers == 2
        engine.close()


class TestGenLinkWorkers:
    def test_learning_history_identical_across_workers(self):
        from repro.core.genlink import GenLink, GenLinkConfig
        from repro.data.reference_links import ReferenceLinkSet

        words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta",
                 "theta", "kappa"]
        source_a = DataSource("A")
        source_b = DataSource("B")
        for i, word in enumerate(words):
            source_a.add(Entity(f"a{i}", {"label": word.capitalize()}))
            source_b.add(Entity(f"b{i}", {"name": word.upper()}))
        train = ReferenceLinkSet(
            [(f"a{i}", f"b{i}") for i in range(6)],
            [(f"a{i}", f"b{(i + 2) % 6}") for i in range(6)],
        )
        config = GenLinkConfig(population_size=20, max_iterations=3)

        def history(workers):
            result = GenLink(config, workers=workers).learn(
                source_a, source_b, train, rng=11
            )
            return [
                (
                    record.iteration,
                    record.train_f_measure.hex(),
                    record.train_mcc.hex(),
                    record.best_fitness.hex(),
                    record.operator_count,
                )
                for record in result.history
            ], str(result.best_rule.root)

        baseline = history(0)
        for workers in (1, 2, 4):
            assert history(workers) == baseline
