"""Tests for rule semantics and the batch evaluator."""

import numpy as np
import pytest

from repro.core.evaluation import (
    PairEvaluator,
    compare_value_sets,
    evaluate_rule,
    evaluate_value,
)
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.data.entity import Entity
from repro.distances.registry import default_registry as distances
from repro.transforms.registry import default_registry as transforms


def _entity(uid="e", **props):
    return Entity(uid, props)


class TestValueOperators:
    def test_property_operator(self):
        entity = _entity(label="Berlin")
        assert evaluate_value(PropertyNode("label"), entity, transforms()) == (
            "Berlin",
        )

    def test_missing_property_empty(self):
        assert evaluate_value(PropertyNode("x"), _entity(), transforms()) == ()

    def test_transformation_chain(self):
        node = TransformationNode(
            "tokenize", (TransformationNode("lowerCase", (PropertyNode("label"),)),)
        )
        entity = _entity(label="New York")
        assert evaluate_value(node, entity, transforms()) == ("new", "york")

    def test_concatenate_two_properties(self):
        node = TransformationNode(
            "concatenate", (PropertyNode("first"), PropertyNode("last"))
        )
        entity = _entity(first="John", last="Smith")
        assert evaluate_value(node, entity, transforms()) == ("John Smith",)

    def test_parameterised_replace(self):
        node = TransformationNode(
            "replace",
            (PropertyNode("name"),),
            params=(("replacement", " "), ("search", "-")),
        )
        entity = _entity(name="beta-blocker")
        assert evaluate_value(node, entity, transforms()) == ("beta blocker",)


class TestComparisonSemantics:
    def test_definition7_formula(self):
        # d=1, theta=2 -> 1 - 1/2 = 0.5
        sim = compare_value_sets("levenshtein", 2.0, ("cat",), ("cut",), distances())
        assert sim == pytest.approx(0.5)

    def test_distance_above_threshold_is_zero(self):
        sim = compare_value_sets("levenshtein", 1.0, ("abc",), ("xyz",), distances())
        assert sim == 0.0

    def test_zero_distance_is_one(self):
        sim = compare_value_sets("levenshtein", 1.0, ("same",), ("same",), distances())
        assert sim == 1.0

    def test_zero_threshold_means_exact(self):
        assert (
            compare_value_sets("levenshtein", 0.0, ("a",), ("a",), distances()) == 1.0
        )
        assert (
            compare_value_sets("levenshtein", 0.0, ("a",), ("b",), distances()) == 0.0
        )

    def test_empty_values_yield_zero(self):
        assert compare_value_sets("levenshtein", 5.0, (), ("x",), distances()) == 0.0


class TestEvaluateRule:
    def test_min_aggregation(self, city_rule):
        entity_a = _entity(label="Berlin", point="52.52,13.405")
        entity_b = _entity(uid="e2", name="berlin", coord="POINT(13.405 52.52)")
        score = evaluate_rule(city_rule.root, entity_a, entity_b)
        assert score == 1.0

    def test_min_fails_when_one_comparison_fails(self, city_rule):
        entity_a = _entity(label="Berlin", point="52.52,13.405")
        entity_b = _entity(uid="e2", name="berlin", coord="POINT(9.99 53.55)")
        assert evaluate_rule(city_rule.root, entity_a, entity_b) == 0.0

    def test_max_aggregation(self):
        root = AggregationNode(
            "max",
            (
                ComparisonNode("levenshtein", 1.0, PropertyNode("a"), PropertyNode("a")),
                ComparisonNode("levenshtein", 1.0, PropertyNode("b"), PropertyNode("b")),
            ),
        )
        entity_a = _entity(a="xxx", b="yyy")
        entity_b = _entity(uid="e2", a="zzz", b="yyy")
        assert evaluate_rule(root, entity_a, entity_b) == 1.0

    def test_wmean_weights(self):
        root = AggregationNode(
            "wmean",
            (
                ComparisonNode(
                    "levenshtein", 1.0, PropertyNode("a"), PropertyNode("a"), weight=3
                ),
                ComparisonNode(
                    "levenshtein", 1.0, PropertyNode("b"), PropertyNode("b"), weight=1
                ),
            ),
        )
        entity_a = _entity(a="x", b="y")
        entity_b = _entity(uid="e2", a="x", b="zzz")
        # (3 * 1.0 + 1 * 0.0) / 4
        assert evaluate_rule(root, entity_a, entity_b) == pytest.approx(0.75)


class TestPairEvaluator:
    def _pairs(self):
        entity_a1 = _entity("a1", label="Berlin", point="52.52,13.405")
        entity_a2 = _entity("a2", label="Hamburg", point="53.55,9.99")
        entity_b1 = _entity("b1", name="berlin", coord="POINT(13.405 52.52)")
        entity_b2 = _entity("b2", name="munich", coord="POINT(11.58 48.14)")
        return [
            (entity_a1, entity_b1),  # match
            (entity_a1, entity_b2),  # non-match
            (entity_a2, entity_b1),  # non-match
        ]

    def test_scores_vector(self, city_rule):
        evaluator = PairEvaluator(self._pairs())
        scores = evaluator.scores(city_rule.root)
        assert scores.shape == (3,)
        assert scores[0] == 1.0
        assert scores[1] == 0.0
        assert scores[2] == 0.0

    def test_batch_matches_single_evaluation(self, city_rule):
        pairs = self._pairs()
        evaluator = PairEvaluator(pairs)
        batch = evaluator.scores(city_rule.root)
        for i, (entity_a, entity_b) in enumerate(pairs):
            single = evaluate_rule(city_rule.root, entity_a, entity_b)
            assert batch[i] == pytest.approx(single)

    def test_predictions_threshold(self, city_rule):
        evaluator = PairEvaluator(self._pairs())
        assert list(evaluator.predictions(city_rule.root)) == [True, False, False]

    def test_comparison_cache_hit(self, city_rule):
        evaluator = PairEvaluator(self._pairs())
        evaluator.scores(city_rule.root)
        misses = evaluator.cache_misses
        evaluator.scores(city_rule.root)
        assert evaluator.cache_misses == misses
        assert evaluator.cache_hits > 0

    def test_weight_excluded_from_cache_key(self):
        from dataclasses import replace

        comparison = ComparisonNode(
            "levenshtein", 1.0, PropertyNode("label"), PropertyNode("name")
        )
        evaluator = PairEvaluator(self._pairs())
        evaluator.scores(comparison)
        evaluator.scores(replace(comparison, weight=5))
        assert evaluator.cache_misses == 1

    def test_cached_comparison_scores_are_readonly(self, label_comparison):
        evaluator = PairEvaluator(self._pairs())
        scores = evaluator.scores(label_comparison)
        with pytest.raises(ValueError):
            scores[0] = 0.5

    def test_clear_caches(self, city_rule):
        evaluator = PairEvaluator(self._pairs())
        evaluator.scores(city_rule.root)
        evaluator.clear_caches()
        misses_before = evaluator.cache_misses
        evaluator.scores(city_rule.root)
        assert evaluator.cache_misses > misses_before

    def test_unknown_aggregation_raises(self):
        root = AggregationNode(
            "median",
            (ComparisonNode("levenshtein", 1.0, PropertyNode("a"), PropertyNode("a")),),
        )
        evaluator = PairEvaluator(self._pairs())
        with pytest.raises(ValueError, match="median"):
            evaluator.scores(root)
