"""Tests for the effective per-dataset scale logic."""

import pytest

from repro.experiments.scale import BENCH, PAPER, SMOKE, ExperimentScale


class TestEffectiveScale:
    def test_floor_applies_to_small_datasets(self):
        # LinkedMDB has 100 positive links; with a 100-link floor it
        # runs at full size under the bench scale.
        assert BENCH.effective_dataset_scale(100) == pytest.approx(1.0)
        assert BENCH.effective_dataset_scale(200) == pytest.approx(0.5)

    def test_large_datasets_keep_configured_scale(self):
        assert BENCH.effective_dataset_scale(1617) == BENCH.dataset_scale

    def test_never_above_one(self):
        scale = ExperimentScale(
            name="x", dataset_scale=0.5, population_size=10,
            max_iterations=1, runs=1, report_iterations=(0,),
            min_positive_links=1000,
        )
        assert scale.effective_dataset_scale(100) == 1.0

    def test_no_floor_configured(self):
        assert SMOKE.effective_dataset_scale(100) == SMOKE.dataset_scale

    def test_paper_scale_is_identity(self):
        assert PAPER.effective_dataset_scale(100) == 1.0

    def test_zero_links_guard(self):
        assert BENCH.effective_dataset_scale(0) == BENCH.dataset_scale
