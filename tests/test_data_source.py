"""Tests for the DataSource container."""

import pytest

from repro.data.entity import Entity
from repro.data.source import DataSource


def _source() -> DataSource:
    return DataSource(
        "test",
        [
            Entity("e1", {"name": "a", "extra": "x"}),
            Entity("e2", {"name": "b"}),
            Entity("e3", {"name": "c", "extra": "y"}),
            Entity("e4", {"name": "d"}),
        ],
    )


class TestDataSource:
    def test_len(self):
        assert len(_source()) == 4

    def test_get(self):
        assert _source().get("e2").values("name") == ("b",)

    def test_get_missing_raises(self):
        with pytest.raises(KeyError, match="nope"):
            _source().get("nope")

    def test_contains(self):
        source = _source()
        assert "e1" in source
        assert "zz" not in source

    def test_duplicate_uid_rejected(self):
        source = _source()
        with pytest.raises(ValueError, match="duplicate"):
            source.add(Entity("e1", {}))

    def test_iteration_order_is_insertion_order(self):
        assert [e.uid for e in _source()] == ["e1", "e2", "e3", "e4"]

    def test_property_names_union(self):
        assert _source().property_names() == ["extra", "name"]

    def test_property_count(self):
        assert _source().property_count() == 2

    def test_coverage(self):
        # name on 4/4, extra on 2/4 -> (4 + 2) / (2 * 4) = 0.75
        assert _source().coverage() == pytest.approx(0.75)

    def test_coverage_empty_source(self):
        assert DataSource("empty").coverage() == 0.0

    def test_property_coverage_per_property(self):
        coverage = _source().property_coverage()
        assert coverage["name"] == 1.0
        assert coverage["extra"] == 0.5

    def test_uids(self):
        assert _source().uids() == ["e1", "e2", "e3", "e4"]
