"""Tests for fitness-guided rule pruning (repro.core.pruning)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import PairEvaluator, evaluate_rule
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.pruning import (
    CASE_TRANSFORMATIONS,
    IDEMPOTENT_TRANSFORMATIONS,
    PruneResult,
    prune_rule,
    simplify_transformations,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity


def prop(name: str) -> PropertyNode:
    return PropertyNode(name)


def transform(function: str, *inputs, params=()) -> TransformationNode:
    return TransformationNode(function=function, inputs=tuple(inputs), params=params)


def compare(metric="levenshtein", threshold=1.0, source=None, target=None, weight=1):
    return ComparisonNode(
        metric=metric,
        threshold=threshold,
        source=source if source is not None else prop("label"),
        target=target if target is not None else prop("label"),
        weight=weight,
    )


def entity(uid: str, **properties) -> Entity:
    return Entity(
        uid=uid,
        properties={k: tuple(v) for k, v in properties.items()},
    )


class TestSimplifyTransformations:
    def test_nested_idempotent_collapses(self):
        rule = LinkageRule(
            compare(source=transform("lowerCase", transform("lowerCase", prop("a"))))
        )
        simplified = simplify_transformations(rule)
        assert simplified.root.source == transform("lowerCase", prop("a"))

    def test_triple_nesting_collapses_to_one(self):
        chain = transform(
            "trim", transform("trim", transform("trim", prop("a")))
        )
        rule = LinkageRule(compare(source=chain))
        simplified = simplify_transformations(rule)
        assert simplified.root.source == transform("trim", prop("a"))

    def test_case_absorption(self):
        rule = LinkageRule(
            compare(source=transform("lowerCase", transform("upperCase", prop("a"))))
        )
        simplified = simplify_transformations(rule)
        assert simplified.root.source == transform("lowerCase", prop("a"))

    def test_case_absorption_disabled(self):
        inner = transform("lowerCase", transform("upperCase", prop("a")))
        rule = LinkageRule(compare(source=inner))
        simplified = simplify_transformations(rule, absorb_case=False)
        assert simplified.root.source == inner

    def test_non_idempotent_kept(self):
        chain = transform("stem", transform("stem", prop("a")))
        rule = LinkageRule(compare(source=chain))
        simplified = simplify_transformations(rule)
        assert simplified.root.source == chain

    def test_different_functions_kept(self):
        chain = transform("tokenize", transform("lowerCase", prop("a")))
        rule = LinkageRule(compare(source=chain))
        simplified = simplify_transformations(rule)
        assert simplified.root.source == chain

    def test_replace_params_must_match(self):
        inner = transform(
            "replace", prop("a"), params=(("replacement", " "), ("search", "-"))
        )
        outer = transform(
            "replace", inner, params=(("replacement", "_"), ("search", "-"))
        )
        rule = LinkageRule(compare(source=outer))
        simplified = simplify_transformations(rule)
        # replace is not idempotent, so nothing collapses even with
        # matching params.
        assert simplified.root.source == outer

    def test_concatenate_inputs_simplified_recursively(self):
        left = transform("lowerCase", transform("lowerCase", prop("first")))
        node = transform("concatenate", left, prop("last"))
        rule = LinkageRule(compare(source=node))
        simplified = simplify_transformations(rule)
        assert simplified.root.source == transform(
            "concatenate", transform("lowerCase", prop("first")), prop("last")
        )

    def test_target_side_also_simplified(self):
        rule = LinkageRule(
            compare(target=transform("trim", transform("trim", prop("b"))))
        )
        simplified = simplify_transformations(rule)
        assert simplified.root.target == transform("trim", prop("b"))

    def test_aggregation_children_simplified(self):
        leaf = compare(source=transform("trim", transform("trim", prop("a"))))
        rule = LinkageRule(AggregationNode(function="min", operators=(leaf, leaf)))
        simplified = simplify_transformations(rule)
        for child in simplified.root.operators:
            assert child.source == transform("trim", prop("a"))

    def test_collapse_preserves_scores(self):
        pairs = [
            (entity("a1", label=("Berlin",)), entity("b1", label=("BERLIN",))),
            (entity("a2", label=("Paris",)), entity("b2", label=("London",))),
        ]
        rule = LinkageRule(
            compare(
                source=transform("lowerCase", transform("lowerCase", prop("label"))),
                target=transform("lowerCase", prop("label")),
            )
        )
        simplified = simplify_transformations(rule)
        for a, b in pairs:
            assert evaluate_rule(simplified.root, a, b) == pytest.approx(
                evaluate_rule(rule.root, a, b)
            )

    def test_catalogue_constants_disjoint_semantics(self):
        assert CASE_TRANSFORMATIONS <= IDEMPOTENT_TRANSFORMATIONS
        assert "stem" not in IDEMPOTENT_TRANSFORMATIONS
        assert "replace" not in IDEMPOTENT_TRANSFORMATIONS


def _labelled_pairs():
    """A small labelled pair set with an informative and a noise signal.

    ``label`` separates matches from non-matches; ``noise`` does not.
    """
    pairs = []
    labels = []
    for i in range(6):
        a = entity(f"a{i}", label=(f"City {i}",), noise=(str(i % 2),))
        b = entity(f"b{i}", label=(f"city {i}",), noise=(str((i + 1) % 2),))
        pairs.append((a, b))
        labels.append(True)
    for i in range(6):
        a = entity(f"a{i}x", label=(f"City {i}",), noise=(str(i % 2),))
        b = entity(f"b{i}x", label=(f"Town {i + 7}",), noise=(str(i % 2),))
        pairs.append((a, b))
        labels.append(False)
    return pairs, labels


class TestPruneRule:
    def test_drops_uninformative_comparison(self):
        pairs, labels = _labelled_pairs()
        good = compare(
            source=transform("lowerCase", prop("label")),
            target=transform("lowerCase", prop("label")),
            threshold=1.0,
        )
        noisy = compare(metric="equality", threshold=0.0, source=prop("noise"),
                        target=prop("noise"))
        rule = LinkageRule(
            AggregationNode(function="wmean", operators=(good, noisy))
        )
        evaluator = PairEvaluator(pairs)
        result = prune_rule(rule, evaluator, labels)
        assert isinstance(result, PruneResult)
        assert result.mcc_after >= result.mcc_before
        assert result.rule.operator_count() < rule.operator_count()
        metrics = {c.metric for c in result.rule.comparisons()}
        assert "equality" not in metrics

    def test_keeps_required_comparison(self):
        pairs, labels = _labelled_pairs()
        good = compare(
            source=transform("lowerCase", prop("label")),
            target=transform("lowerCase", prop("label")),
            threshold=1.0,
        )
        rule = LinkageRule(good)
        evaluator = PairEvaluator(pairs)
        result = prune_rule(rule, evaluator, labels)
        assert result.mcc_after == pytest.approx(result.mcc_before)
        assert len(result.rule.comparisons()) == 1

    def test_strips_useless_transformation(self):
        pairs, labels = _labelled_pairs()
        # trim adds nothing here: values carry no surrounding whitespace.
        rule = LinkageRule(
            compare(
                source=transform("trim", transform("lowerCase", prop("label"))),
                target=transform("lowerCase", prop("label")),
                threshold=1.0,
            )
        )
        evaluator = PairEvaluator(pairs)
        result = prune_rule(rule, evaluator, labels)
        functions = {t.function for t in result.rule.transformations()}
        assert "trim" not in functions
        assert result.mcc_after >= result.mcc_before

    def test_keeps_needed_transformation(self):
        pairs, labels = _labelled_pairs()
        rule = LinkageRule(
            compare(
                source=transform("lowerCase", prop("label")),
                target=transform("lowerCase", prop("label")),
                threshold=0.0,
                metric="equality",
            )
        )
        evaluator = PairEvaluator(pairs)
        result = prune_rule(rule, evaluator, labels)
        # Case differs between sides, so lowerCase is load-bearing on at
        # least one side and MCC must not degrade.
        assert result.mcc_after >= result.mcc_before
        assert result.rule.transformations()

    def test_steps_recorded(self):
        pairs, labels = _labelled_pairs()
        good = compare(
            source=transform("lowerCase", prop("label")),
            target=transform("lowerCase", prop("label")),
            threshold=1.0,
        )
        noisy = compare(metric="equality", threshold=0.0, source=prop("noise"),
                        target=prop("noise"))
        rule = LinkageRule(
            AggregationNode(function="wmean", operators=(good, noisy))
        )
        result = prune_rule(rule, PairEvaluator(pairs), labels)
        assert result.edits == len(result.steps)
        for step in result.steps:
            assert step.operators_after < step.operators_before
            assert step.action in ("drop-operator", "strip-transformation")
        text = result.describe()
        assert "mcc" in text

    def test_label_count_mismatch_raises(self):
        pairs, labels = _labelled_pairs()
        rule = LinkageRule(compare())
        with pytest.raises(ValueError, match="label count"):
            prune_rule(rule, PairEvaluator(pairs), labels[:-1])

    def test_max_edits_bounds_work(self):
        pairs, labels = _labelled_pairs()
        comparisons = tuple(
            compare(
                source=transform("lowerCase", prop("label")),
                target=transform("lowerCase", prop("label")),
                threshold=float(t),
            )
            for t in range(1, 6)
        )
        rule = LinkageRule(AggregationNode(function="max", operators=comparisons))
        result = prune_rule(rule, PairEvaluator(pairs), labels, max_edits=1)
        assert result.edits <= 1

    def test_prune_monotone_operator_count(self):
        pairs, labels = _labelled_pairs()
        comparisons = tuple(
            compare(
                source=transform("lowerCase", prop("label")),
                target=transform("lowerCase", prop("label")),
                threshold=float(t),
            )
            for t in range(1, 5)
        )
        rule = LinkageRule(AggregationNode(function="max", operators=comparisons))
        result = prune_rule(rule, PairEvaluator(pairs), labels)
        counts = [rule.operator_count()]
        counts.extend(step.operators_after for step in result.steps)
        assert counts == sorted(counts, reverse=True)
        # max over identical-score children collapses to one comparison.
        assert len(result.rule.comparisons()) == 1


# -- property-based ----------------------------------------------------------

_idempotent = st.sampled_from(sorted(IDEMPOTENT_TRANSFORMATIONS - {"tokenize"}))
_values = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        min_size=0,
        max_size=12,
    ),
    min_size=1,
    max_size=3,
)


@st.composite
def _transformation_chains(draw):
    """A value tree of nested idempotent transformations over one property."""
    depth = draw(st.integers(min_value=1, max_value=4))
    node = prop("p")
    for __ in range(depth):
        node = transform(draw(_idempotent), node)
    return node


@given(chain=_transformation_chains(), values=_values)
@settings(max_examples=60, deadline=None)
def test_simplification_preserves_values(chain, values):
    """simplify_transformations never changes a comparison's inputs."""
    from repro.core.evaluation import evaluate_value
    from repro.transforms.registry import default_registry

    rule = LinkageRule(compare(source=chain, target=prop("p")))
    simplified = simplify_transformations(rule)
    registry = default_registry()
    e = entity("e", p=tuple(values))
    assert evaluate_value(simplified.root.source, e, registry) == evaluate_value(
        chain, e, registry
    )


@given(chain=_transformation_chains(), values=_values)
@settings(max_examples=30, deadline=None)
def test_simplification_idempotent(chain, values):
    rule = LinkageRule(compare(source=chain, target=prop("p")))
    once = simplify_transformations(rule)
    twice = simplify_transformations(once)
    assert once == twice


@given(
    seed=st.integers(min_value=0, max_value=2**30),
    tolerance=st.floats(min_value=0.0, max_value=0.2),
)
@settings(max_examples=20, deadline=None)
def test_prune_never_degrades_beyond_tolerance(seed, tolerance):
    """End-state MCC is bounded below by mcc_before - edits * tolerance."""
    rng = random.Random(seed)
    pairs, labels = _labelled_pairs()
    comparisons = tuple(
        compare(
            source=transform("lowerCase", prop("label")),
            target=transform("lowerCase", prop("label")),
            threshold=rng.uniform(0.5, 3.0),
        )
        for __ in range(rng.randint(1, 4))
    )
    root = (
        comparisons[0]
        if len(comparisons) == 1
        else AggregationNode(
            function=rng.choice(("min", "max", "wmean")), operators=comparisons
        )
    )
    rule = LinkageRule(root)
    result = prune_rule(rule, PairEvaluator(pairs), labels, tolerance=tolerance)
    assert result.mcc_after >= result.mcc_before - tolerance * max(1, result.edits)
    assert result.rule.operator_count() <= rule.operator_count()
