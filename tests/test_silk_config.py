"""Tests for full Silk configuration documents (repro.silk.config)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.core.nodes import AggregationNode, ComparisonNode, PropertyNode
from repro.core.rule import LinkageRule
from repro.silk.config import (
    SilkConfig,
    SilkDataSource,
    SilkInterlink,
    SilkPrefix,
    parse_silk_config,
    silk_config,
)
from repro.silk.lsl import LslError


def movie_rule() -> LinkageRule:
    title = ComparisonNode(
        metric="levenshtein",
        threshold=1.0,
        source=PropertyNode("title"),
        target=PropertyNode("label"),
    )
    year = ComparisonNode(
        metric="date",
        threshold=364.0,
        source=PropertyNode("date"),
        target=PropertyNode("initial_release_date"),
    )
    return LinkageRule(AggregationNode(function="min", operators=(title, year)))


def movie_interlink(**overrides) -> SilkInterlink:
    defaults = dict(
        id="movies",
        rule=movie_rule(),
        source_dataset="dbpedia",
        target_dataset="linkedmdb",
        source_restriction="?a rdf:type dbpedia:Film",
        target_restriction="?b rdf:type movie:film",
    )
    defaults.update(overrides)
    return SilkInterlink(**defaults)


class TestEmit:
    def test_document_structure(self):
        text = silk_config([movie_interlink()])
        root = ET.fromstring(text)
        assert root.tag == "Silk"
        assert root.find("Prefixes") is not None
        assert root.find("DataSources") is not None
        assert root.find("Interlinks/Interlink") is not None

    def test_default_prefixes_present(self):
        text = silk_config([movie_interlink()])
        root = ET.fromstring(text)
        ids = {p.get("id") for p in root.iterfind("Prefixes/Prefix")}
        assert {"rdf", "rdfs", "owl"} <= ids

    def test_custom_prefix_mapping(self):
        text = silk_config(
            [movie_interlink()],
            prefixes={"movie": "http://data.linkedmdb.org/resource/movie/"},
        )
        root = ET.fromstring(text)
        ids = {p.get("id") for p in root.iterfind("Prefixes/Prefix")}
        assert "movie" in ids

    def test_data_sources_synthesised(self):
        text = silk_config([movie_interlink()])
        root = ET.fromstring(text)
        ids = {s.get("id") for s in root.iterfind("DataSources/DataSource")}
        assert ids == {"dbpedia", "linkedmdb"}

    def test_explicit_data_sources_kept(self):
        sparql = SilkDataSource.sparql("dbpedia", "http://dbpedia.org/sparql")
        text = silk_config([movie_interlink()], data_sources=[sparql])
        root = ET.fromstring(text)
        dbpedia = root.find("DataSources/DataSource[@id='dbpedia']")
        assert dbpedia is not None
        assert dbpedia.get("type") == "sparqlEndpoint"
        param = dbpedia.find("Param")
        assert param is not None
        assert param.get("name") == "endpointURI"

    def test_restrictions_rendered(self):
        text = silk_config([movie_interlink()])
        assert "?a rdf:type dbpedia:Film" in text
        assert "?b rdf:type movie:film" in text

    def test_filter_threshold(self):
        text = silk_config([movie_interlink(filter_threshold=0.8)])
        assert 'threshold="0.8"' in text

    def test_file_source_helper(self):
        source = SilkDataSource.file("sider", "sider.nt", format="RDF/XML")
        assert ("file", "sider.nt") in source.params
        assert ("format", "RDF/XML") in source.params


class TestParse:
    def test_round_trip_rule(self):
        interlink = movie_interlink()
        config = parse_silk_config(silk_config([interlink]))
        assert isinstance(config, SilkConfig)
        parsed = config.interlink("movies")
        assert parsed.rule == interlink.rule
        assert parsed.source_dataset == "dbpedia"
        assert parsed.target_dataset == "linkedmdb"
        assert parsed.source_restriction == interlink.source_restriction
        assert parsed.link_type == "owl:sameAs"

    def test_round_trip_multiple_interlinks(self):
        drugs = movie_interlink(id="drugs")
        movies = movie_interlink(id="movies")
        config = parse_silk_config(silk_config([movies, drugs]))
        assert [link.id for link in config.interlinks] == ["movies", "drugs"]

    def test_round_trip_prefixes_and_sources(self):
        source = SilkDataSource.sparql("dbpedia", "http://dbpedia.org/sparql")
        text = silk_config(
            [movie_interlink()],
            data_sources=[source],
            prefixes={"movie": "http://example.org/movie/"},
        )
        config = parse_silk_config(text)
        assert SilkPrefix("movie", "http://example.org/movie/") in config.prefixes
        assert any(s.type == "sparqlEndpoint" for s in config.data_sources)

    def test_custom_variables_round_trip(self):
        interlink = movie_interlink(source_var="x", target_var="y")
        config = parse_silk_config(silk_config([interlink]))
        parsed = config.interlink("movies")
        assert parsed.rule == interlink.rule
        assert parsed.source_var == "x"

    def test_filter_threshold_round_trip(self):
        interlink = movie_interlink(filter_threshold=0.75)
        config = parse_silk_config(silk_config([interlink]))
        assert config.interlink("movies").filter_threshold == 0.75

    def test_unknown_interlink_raises(self):
        config = parse_silk_config(silk_config([movie_interlink()]))
        with pytest.raises(KeyError, match="no interlink"):
            config.interlink("nope")

    def test_not_silk_document_raises(self):
        with pytest.raises(LslError, match="<Silk>"):
            parse_silk_config("<LinkageRule/>")

    def test_malformed_xml_raises(self):
        with pytest.raises(LslError, match="not well-formed"):
            parse_silk_config("<Silk><Interlinks>")

    def test_interlink_without_rule_raises(self):
        text = """
        <Silk><Interlinks><Interlink id="x">
          <SourceDataset dataSource="s" var="a"/>
          <TargetDataset dataSource="t" var="b"/>
        </Interlink></Interlinks></Silk>
        """
        with pytest.raises(LslError, match="no <LinkageRule>"):
            parse_silk_config(text)

    def test_interlink_without_datasets_raises(self):
        text = """
        <Silk><Interlinks><Interlink id="x">
          <LinkageRule/>
        </Interlink></Interlinks></Silk>
        """
        with pytest.raises(LslError, match="SourceDataset"):
            parse_silk_config(text)


class TestEndToEnd:
    def test_learned_rule_exports_and_reimports(self, city_sources):
        """A rule evaluated here scores identically after a Silk round
        trip — the export is faithful, not just well-formed."""
        from repro.core.evaluation import evaluate_rule

        source_a, source_b = city_sources
        rule = movie_rule()
        config = parse_silk_config(silk_config([movie_interlink(rule=rule)]))
        reimported = config.interlink("movies").rule
        for a in source_a:
            for b in source_b:
                assert evaluate_rule(reimported.root, a, b) == pytest.approx(
                    evaluate_rule(rule.root, a, b)
                )
