"""Tests for the active learning extension."""

import random

import pytest

from repro.core.active import (
    ActiveGenLink,
    ActiveLearningConfig,
    oracle_from_links,
)
from repro.core.genlink import GenLinkConfig
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


def _task(n: int = 20):
    source_a = DataSource("A")
    source_b = DataSource("B")
    positive = []
    for i in range(n):
        source_a.add(Entity(f"a{i}", {"label": f"item number {i:03d}"}))
        source_b.add(Entity(f"b{i}", {"name": f"ITEM NUMBER {i:03d}"}))
        positive.append((f"a{i}", f"b{i}"))
    candidates = [(f"a{i}", f"b{j}") for i in range(n) for j in range(n)
                  if abs(i - j) <= 3]
    reference = ReferenceLinkSet(
        positive, [(f"a{i}", f"b{(i + 2) % n}") for i in range(n)]
    )
    return source_a, source_b, positive, candidates, reference


def _config(**kwargs) -> ActiveLearningConfig:
    defaults = dict(
        max_queries=12,
        bootstrap_queries=4,
        committee_size=5,
        genlink=GenLinkConfig(population_size=20, max_iterations=4),
    )
    defaults.update(kwargs)
    return ActiveLearningConfig(**defaults)


class TestActiveGenLink:
    def test_learns_with_few_queries(self):
        source_a, source_b, positive, candidates, reference = _task()
        learner = ActiveGenLink(_config())
        result = learner.run(
            source_a, source_b, candidates,
            oracle_from_links(positive), rng=3, reference=reference,
        )
        assert result.f_measure_curve[-1] >= 0.9
        assert len(result.queries) <= 12

    def test_query_budget_respected(self):
        source_a, source_b, positive, _candidates, _ = _task()
        # A dense pool (every pair within distance 1 — one third are
        # positives) so the bootstrap finds both classes quickly.
        n = len(positive)
        dense = [
            (f"a{i}", f"b{j}")
            for i in range(n)
            for j in range(n)
            if abs(i - j) <= 1
        ]
        learner = ActiveGenLink(_config(max_queries=8))
        result = learner.run(
            source_a, source_b, dense, oracle_from_links(positive), rng=1
        )
        assert len(result.queries) <= 8

    def test_labels_match_oracle(self):
        source_a, source_b, positive, candidates, _ = _task()
        learner = ActiveGenLink(_config())
        result = learner.run(
            source_a, source_b, candidates, oracle_from_links(positive), rng=2
        )
        truth = set(positive)
        for record in result.queries:
            assert record.label == (record.link in truth)
        assert set(result.labelled.positive) <= truth

    def test_queries_are_unique(self):
        source_a, source_b, positive, candidates, _ = _task()
        learner = ActiveGenLink(_config())
        result = learner.run(
            source_a, source_b, candidates, oracle_from_links(positive), rng=4
        )
        links = [record.link for record in result.queries]
        assert len(links) == len(set(links))

    def test_random_strategy_runs(self):
        source_a, source_b, positive, candidates, reference = _task()
        learner = ActiveGenLink(_config(strategy="random"))
        result = learner.run(
            source_a, source_b, candidates,
            oracle_from_links(positive), rng=3, reference=reference,
        )
        assert result.f_measure_curve

    def test_pool_too_small_rejected(self):
        source_a, source_b, positive, candidates, _ = _task()
        learner = ActiveGenLink(_config(max_queries=10_000))
        with pytest.raises(ValueError, match="pool"):
            learner.run(
                source_a, source_b, candidates[:5], oracle_from_links(positive)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ActiveLearningConfig(max_queries=0)
        with pytest.raises(ValueError):
            ActiveLearningConfig(bootstrap_queries=1)
        with pytest.raises(ValueError):
            ActiveLearningConfig(strategy="psychic")

    def test_disagreement_recorded(self):
        source_a, source_b, positive, candidates, _ = _task()
        learner = ActiveGenLink(_config())
        result = learner.run(
            source_a, source_b, candidates, oracle_from_links(positive), rng=6
        )
        assert all(0.0 <= q.disagreement <= 1.0 for q in result.queries)


class TestOracleFromLinks:
    def test_positive_pair(self):
        oracle = oracle_from_links([("a1", "b1")])
        assert oracle(Entity("a1", {}), Entity("b1", {}))

    def test_negative_pair(self):
        oracle = oracle_from_links([("a1", "b1")])
        assert not oracle(Entity("a1", {}), Entity("b2", {}))
