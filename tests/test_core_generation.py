"""Tests for random rule generation (Section 5.1)."""

import random

import pytest

from repro.core.compatible import CompatibleProperty
from repro.core.generation import RandomRuleGenerator
from repro.core.nodes import AggregationNode, PropertyNode, TransformationNode
from repro.core.representation import BOOLEAN, FULL, LINEAR
from repro.core.rule import validate_tree


def _generator(rng=None, representation=FULL, **kwargs) -> RandomRuleGenerator:
    pairs = [
        CompatibleProperty("label", "name", "levenshtein"),
        CompatibleProperty("point", "coord", "geographic"),
        CompatibleProperty("date", "released", "date"),
    ]
    return RandomRuleGenerator(
        pairs,
        rng if rng is not None else random.Random(7),
        representation=representation,
        **kwargs,
    )


class TestRandomRuleGenerator:
    def test_rules_are_valid(self):
        generator = _generator()
        for _ in range(50):
            rule = generator.random_rule()
            validate_tree(rule.root, expect_similarity=True)

    def test_initial_rules_have_one_or_two_comparisons(self):
        generator = _generator()
        for _ in range(50):
            assert 1 <= len(generator.random_rule().comparisons()) <= 2

    def test_comparisons_use_seeded_pairs(self):
        generator = _generator()
        allowed = {("label", "name"), ("point", "coord"), ("date", "released")}
        for _ in range(30):
            comparison = generator.random_comparison()
            source = comparison.source
            while isinstance(source, TransformationNode):
                source = source.inputs[0]
            target = comparison.target
            while isinstance(target, TransformationNode):
                target = target.inputs[0]
            assert (source.property_name, target.property_name) in allowed

    def test_seeded_measures_dominate_with_exploration(self):
        generator = _generator()
        metrics = [generator.random_comparison().metric for _ in range(200)]
        seeded = {"levenshtein", "geographic", "date"}
        catalogue = seeded | {"jaccard", "numeric", "normalizedLevenshtein"}
        assert set(metrics) <= catalogue
        # Most comparisons keep the seeded measure; exploration and
        # token-level seeding are the minority.
        seeded_fraction = sum(1 for m in metrics if m in seeded) / len(metrics)
        assert seeded_fraction > 0.55

    def test_transformation_probability_zero(self):
        generator = _generator(transformation_probability=0.0)
        for _ in range(30):
            assert generator.random_rule().transformations() == []

    def test_transformation_probability_one(self):
        generator = _generator(transformation_probability=1.0)
        rule = generator.random_rule()
        # Every property gets at least one transformation appended
        # (occasionally a two-step chain).
        transformation_count = len(rule.transformations())
        property_count = 2 * len(rule.comparisons())
        assert property_count <= transformation_count <= 2 * property_count
        for comparison in rule.comparisons():
            from repro.core.nodes import TransformationNode

            assert isinstance(comparison.source, TransformationNode)
            assert isinstance(comparison.target, TransformationNode)

    def test_thresholds_within_measure_range(self):
        generator = _generator()
        for _ in range(50):
            comparison = generator.random_comparison()
            from repro.distances.registry import get_measure

            low, high = get_measure(comparison.metric).threshold_range
            assert low <= comparison.threshold <= high

    def test_boolean_representation_restricts_functions(self):
        generator = _generator(representation=BOOLEAN)
        for _ in range(30):
            rule = generator.random_rule()
            for aggregation in rule.aggregations():
                assert aggregation.function in ("min", "max")
            assert rule.transformations() == []

    def test_linear_representation_uses_wmean_only(self):
        generator = _generator(representation=LINEAR)
        for _ in range(30):
            rule = generator.random_rule()
            for aggregation in rule.aggregations():
                assert aggregation.function == "wmean"

    def test_unseeded_fallback_uses_property_lists(self):
        generator = RandomRuleGenerator(
            [],
            random.Random(1),
            source_properties=["p1", "p2"],
            target_properties=["q1"],
        )
        comparison = generator.random_comparison()
        source = comparison.source
        while isinstance(source, TransformationNode):
            source = source.inputs[0]
        assert source.property_name in ("p1", "p2")

    def test_requires_pairs_or_properties(self):
        with pytest.raises(ValueError):
            RandomRuleGenerator([], random.Random(1))

    def test_population_size(self):
        assert len(_generator().population(25)) == 25

    def test_population_requires_positive_size(self):
        with pytest.raises(ValueError):
            _generator().population(0)

    def test_deterministic_given_seed(self):
        rules1 = _generator(rng=random.Random(42)).population(10)
        rules2 = _generator(rng=random.Random(42)).population(10)
        assert rules1 == rules2
