"""The linkage job service: lifecycle, queue, degradation, recovery.

The contracts under test, in the order an operator cares about them:

- **Byte-parity** — a job's links are identical to calling
  ``MatchingEngine.execute`` directly, whether the job ran inline
  (degraded, no queue) or through file-queue workers.
- **Degradation** — an unavailable backend falls back to inline
  execution with a recorded reason; links and record schema do not
  change.
- **Crash recovery** — a worker dying mid-job (stale heartbeat)
  leads to a backoff retry that completes the job; exhausted attempt
  budgets fail it with the error recorded.
- **Health** — one snapshot reports mode, queue, job counts, workers
  and the shared store.
"""

from __future__ import annotations

import time

import pytest

from repro.datasets import load_dataset
from repro.matching.engine import MatchingEngine
from repro.matching.incremental import dataset_rule
from repro.service import (
    FileQueue,
    InvalidTransition,
    JobStore,
    LinkageService,
    StaleJob,
    recover_stale,
    resolve_queue,
    run_worker,
)

DATASET = "restaurant"
SCALE = 0.3


def direct_links(seed: int = 0, scale: float = SCALE):
    """The oracle: engine-direct execution of the job's exact work."""
    dataset = load_dataset(DATASET, seed=seed, scale=scale)
    engine = MatchingEngine()
    try:
        return engine.execute(
            dataset_rule(DATASET), dataset.source_a, dataset.source_b
        )
    finally:
        engine.close()


# -- job store ---------------------------------------------------------------


def test_job_store_lifecycle_and_persistence(tmp_path):
    store = JobStore(tmp_path)
    record = store.create("link", {"dataset": DATASET})
    assert record.state == "queued" and record.attempts == 0

    record = store.transition(
        record.job_id, "running", expect="queued", attempts=1, worker="w0"
    )
    assert record.state == "running" and record.worker == "w0"

    # A fresh store over the same directory sees the same record.
    reread = JobStore(tmp_path).get(record.job_id)
    assert reread.state == "running" and reread.attempts == 1


def test_job_store_rejects_illegal_and_stale_transitions(tmp_path):
    store = JobStore(tmp_path)
    record = store.create("link", {"dataset": DATASET})

    with pytest.raises(InvalidTransition):
        store.transition(record.job_id, "succeeded", expect="queued")
    with pytest.raises(StaleJob):
        store.transition(record.job_id, "running", expect="running")

    store.transition(record.job_id, "running", expect="queued", worker="w0")
    # Owner mismatch: another worker must not complete w0's job.
    with pytest.raises(StaleJob):
        store.transition(
            record.job_id,
            "succeeded",
            expect="running",
            expect_worker="w1",
        )


# -- file queue --------------------------------------------------------------


def test_file_queue_orders_and_claims_exactly_once(tmp_path):
    queue = FileQueue(tmp_path)
    queue.submit("job-a")
    queue.submit("job-b")
    assert queue.depth() == 2

    first = queue.claim("w0")
    second = queue.claim("w1")
    assert first is not None and first.job_id == "job-a"
    assert second is not None and second.job_id == "job-b"
    assert queue.claim("w2") is None  # nothing left to win

    queue.ack(first)
    queue.release(second, not_before=time.time() + 60)
    # Backed-off entries exist but are not yet claimable.
    assert queue.depth() == 1
    assert queue.claim("w0") is None


def test_resolve_queue_backends(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_QUEUE", raising=False)
    queue, reason = resolve_queue(tmp_path)
    assert isinstance(queue, FileQueue) and reason is None

    queue, reason = resolve_queue(tmp_path, "inline")
    assert queue is None and reason is None  # chosen, not degraded

    monkeypatch.setenv("REPRO_SERVICE_QUEUE", "none")
    queue, reason = resolve_queue(tmp_path)
    assert queue is None and reason is None

    with pytest.raises(ValueError):
        resolve_queue(tmp_path, "carrier-pigeon")


# -- degradation -------------------------------------------------------------


def test_inline_service_matches_direct_execution(tmp_path):
    with LinkageService(root=tmp_path, queue="inline") as service:
        assert service.inline and service.degraded_reason is None
        record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
        assert record.state == "succeeded"
        assert record.worker == "inline" and record.attempts == 1
        assert record.stats is not None and record.stats["links"] > 0
        links = service.links(record.job_id)
    assert links == direct_links()


def test_unavailable_backend_degrades_with_reason(tmp_path):
    # The container deliberately has no redis server; requesting the
    # redis backend must degrade to inline, not fail, and the links
    # must be the same as any other execution mode.
    try:
        import redis  # noqa: F401 - probe only
    except ImportError:
        pass
    else:  # pragma: no cover - environment-dependent
        from repro.service import RedisQueue

        if RedisQueue.available():
            pytest.skip("a live redis server is reachable here")
    with LinkageService(root=tmp_path, queue="redis") as service:
        assert service.inline
        assert "redis" in (service.degraded_reason or "")
        record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
        assert record.state == "succeeded"
        assert service.links(record.job_id) == direct_links()
        assert service.health()["degraded_reason"] == service.degraded_reason


def test_inline_failure_is_recorded_not_raised(tmp_path):
    with LinkageService(root=tmp_path, queue="inline") as service:
        record = service.submit("link", dataset="no-such-dataset")
        assert record.state == "failed"
        assert record.error and "no-such-dataset" in record.error


# -- worker path -------------------------------------------------------------


def test_worker_executes_queued_job_with_identical_links(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    assert record.state == "queued"
    assert service.queue is not None and service.queue.depth() == 1

    processed = run_worker(
        tmp_path,
        worker_id="w0",
        cache_dir=service.cache_dir,
        drain=True,
    )
    assert processed == 1
    done = service.status(record.job_id)
    assert done.state == "succeeded" and done.worker == "w0"
    assert service.links(record.job_id) == direct_links()
    # The run's MatchStats payload rode along on the record.
    assert done.stats is not None and done.stats["links"] == len(
        service.links(record.job_id)
    )


def test_second_job_hits_the_shared_store(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    first = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    second = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    # Two drain invocations = two cold worker processes in sequence,
    # sharing only the on-disk store — the service's warm path.
    run_worker(tmp_path, worker_id="w0", cache_dir=service.cache_dir, drain=True, max_jobs=1)
    run_worker(tmp_path, worker_id="w1", cache_dir=service.cache_dir, drain=True)

    cold = service.status(first.job_id).stats
    warm = service.status(second.job_id).stats
    assert cold is not None and warm is not None
    assert cold["store"]["hits"] == 0
    assert warm["store"]["hits"] > 0 and warm["store"]["misses"] == 0
    assert warm["store"]["index_hits"] > 0
    assert service.links(first.job_id) == service.links(second.job_id)


def test_delta_job_builds_on_parent(tmp_path):
    with LinkageService(root=tmp_path, queue="inline") as service:
        parent = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
        assert parent.state == "succeeded"
        delta = service.submit(
            "delta", parent=parent.job_id, seed=1, upserts=4, deletes=2
        )
        assert delta.state == "succeeded"
        assert delta.result is not None
        assert delta.result["parent"] == parent.job_id
        counts = (
            delta.result["added"]
            + delta.result["removed"]
            + delta.result["unchanged"]
        )
        assert counts >= delta.result["links"] > 0
        # Incremental work happened: some links carried over unscored.
        assert delta.result["kept_links"] > 0


# -- crash recovery ----------------------------------------------------------


def _simulate_crash(service, record):
    """Claim the job and mark it running with a long-dead heartbeat —
    exactly the state a killed worker leaves behind."""
    ticket = service.queue.claim("dead-worker")
    assert ticket is not None and ticket.job_id == record.job_id
    service.store.transition(
        record.job_id,
        "running",
        expect="queued",
        attempts=record.attempts + 1,
        worker="dead-worker",
        heartbeat_at=time.time() - 3600.0,
    )


def test_crashed_worker_job_is_retried_and_completes(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    _simulate_crash(service, record)

    recovered = recover_stale(
        service.store, service.queue, lease=0.5, backoff_base=0.05
    )
    assert recovered == 1
    requeued = service.status(record.job_id)
    assert requeued.state == "queued"
    assert requeued.attempts == 1  # the lost attempt stays counted
    assert requeued.error and "dead-worker" in requeued.error

    time.sleep(0.1)  # let the backoff window pass
    run_worker(
        tmp_path, worker_id="w0", cache_dir=service.cache_dir, drain=True
    )
    done = service.status(record.job_id)
    assert done.state == "succeeded"
    assert done.attempts == 2 and done.error is None
    assert service.links(record.job_id) == direct_links()


def test_exhausted_attempts_fail_the_job(tmp_path):
    service = LinkageService(root=tmp_path, queue="file", max_attempts=1)
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    _simulate_crash(service, record)

    recovered = recover_stale(service.store, service.queue, lease=0.5)
    assert recovered == 1
    failed = service.status(record.job_id)
    assert failed.state == "failed"
    assert failed.error and "no heartbeat" in failed.error
    assert service.queue.depth() == 0 and not service.queue.claimed()


def test_reaper_requeues_first_then_slow_worker_steps_aside(tmp_path):
    """Race interleaving A: the reaper requeues a stale claim while the
    (actually alive, just slow) worker is still running. The worker's
    final transition must fail with StaleJob — exactly one process owns
    the job's outcome."""
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    _simulate_crash(service, record)  # "slow" worker: stale heartbeat

    assert recover_stale(
        service.store, service.queue, lease=0.5, backoff_base=0.01
    ) == 1
    assert service.status(record.job_id).state == "queued"

    # The slow worker finishes now and tries to publish its result.
    with pytest.raises(StaleJob):
        service.store.transition(
            record.job_id,
            "succeeded",
            expect="running",
            expect_worker="dead-worker",
            result={"links": 0},
        )

    # The retry converges to exactly one terminal record.
    time.sleep(0.1)
    run_worker(
        tmp_path, worker_id="w1", cache_dir=service.cache_dir, drain=True
    )
    done = service.status(record.job_id)
    assert done.state == "succeeded" and done.worker == "w1"
    assert done.attempts == 2
    assert service.links(record.job_id) == direct_links()
    assert service.queue.depth() == 0 and not service.queue.claimed()


def test_worker_completes_first_then_reaper_drops_the_claim(tmp_path):
    """Race interleaving B: the worker publishes success just before
    the reaper examines its stale-looking claim. The reaper must drop
    the ticket and leave the terminal record untouched."""
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    _simulate_crash(service, record)

    # The worker wins the race: terminal record lands first.
    service.store.transition(
        record.job_id,
        "succeeded",
        expect="running",
        expect_worker="dead-worker",
        result={"links": 7},
    )

    assert recover_stale(service.store, service.queue, lease=0.5) == 1
    done = service.status(record.job_id)
    assert done.state == "succeeded" and done.result == {"links": 7}
    assert done.attempts == 1  # no retry was ever scheduled
    assert service.queue.depth() == 0 and not service.queue.claimed()


def test_wait_backs_off_exponentially_with_jitter(tmp_path, monkeypatch):
    """The submitter poll loop must not busy-poll at a fixed interval:
    sleeps grow geometrically from ``poll`` to ``max_poll`` (with
    jitter), so long waits converge to a couple of store reads per
    second instead of ten."""
    service = LinkageService(root=tmp_path, queue="file")
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)

    clock = {"now": 0.0}
    sleeps: list[float] = []

    def fake_sleep(seconds: float) -> None:
        sleeps.append(seconds)
        clock["now"] += max(0.0, seconds)

    monkeypatch.setattr(time, "monotonic", lambda: clock["now"])
    monkeypatch.setattr(time, "sleep", fake_sleep)
    with pytest.raises(TimeoutError):
        service.wait(record.job_id, timeout=30.0, poll=0.1, max_poll=2.0)

    assert len(sleeps) >= 5
    # Early sleeps sit near ``poll``, late sleeps near ``max_poll``;
    # jitter keeps each within [0.8, 1.25] of its nominal interval.
    assert sleeps[0] <= 0.1 * 1.25
    assert max(sleeps) <= 2.0 * 1.25
    assert max(sleeps) >= 2.0 * 0.8
    # Monotone growth of the underlying interval (the final sleep is
    # clamped to the remaining timeout budget, so it is exempt): each
    # sleep, modulo jitter, is no smaller than 0.64x the previous one,
    # and the total poll count is far below a fixed-0.1s loop's 300.
    for earlier, later in zip(sleeps[:-1], sleeps[1:-1]):
        assert later >= earlier * 0.8 / 1.25
    assert len(sleeps) < 40


def test_wait_runs_the_reaper_for_a_blocked_submitter(tmp_path):
    service = LinkageService(root=tmp_path, queue="file", lease=0.2)
    record = service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    _simulate_crash(service, record)

    # No worker is running; wait() itself must recover the claim so
    # the job is claimable again, then time out (nothing executes it).
    with pytest.raises(TimeoutError):
        service.wait(record.job_id, timeout=0.8, poll=0.05)
    assert service.status(record.job_id).state == "queued"
    assert service.queue.depth() == 1 and not service.queue.claimed()


# -- health ------------------------------------------------------------------


def test_health_reports_queue_jobs_workers_and_store(tmp_path):
    service = LinkageService(root=tmp_path, queue="file")
    service.submit("link", dataset=DATASET, seed=0, scale=SCALE)
    run_worker(
        tmp_path, worker_id="w0", cache_dir=service.cache_dir, drain=True
    )

    health = service.health()
    assert health["mode"] == "queue" and health["degraded_reason"] is None
    assert health["queue"]["backend"] == "file"
    assert health["queue"]["depth"] == 0
    assert health["jobs"]["succeeded"] == 1
    workers = {entry["worker"] for entry in health["workers"]}
    assert "w0" in workers
    assert health["store"] is not None  # the shared cache dir exists
