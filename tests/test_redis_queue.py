"""Real-redis integration tests for :class:`RedisQueue`.

Gated on ``REPRO_TEST_REDIS_URL``: unset (the default container has no
redis server) the whole module skips cleanly; set it to a live server
url to assert claim/ack/release/recovery parity with the file backend.
Each test uses a unique key prefix and deletes its keys afterwards, so
a shared server stays clean.
"""

from __future__ import annotations

import os
import time
import uuid

import pytest

from repro.service import REDIS_URL_ENV, RedisQueue

URL = os.environ.get(REDIS_URL_ENV, "").strip()

pytestmark = pytest.mark.skipif(
    not URL, reason=f"{REDIS_URL_ENV} is not set (no redis server here)"
)


@pytest.fixture
def queue():
    if not RedisQueue.available(URL):
        pytest.skip(f"redis server at {URL} is unreachable")
    prefix = f"repro-test-{uuid.uuid4().hex[:8]}"
    backend = RedisQueue(URL, prefix=prefix)
    yield backend
    client = backend._redis
    client.delete(backend._ready_key)
    for key in client.keys(backend._claimed_prefix + "*"):
        client.delete(key)


def test_orders_and_claims_exactly_once(queue):
    """Mirror of the FileQueue contract test: FIFO order, one winner
    per entry, backoff hides released entries."""
    queue.submit("job-a")
    queue.submit("job-b")
    assert queue.depth() == 2

    first = queue.claim("w0")
    second = queue.claim("w1")
    assert first is not None and first.job_id == "job-a"
    assert second is not None and second.job_id == "job-b"
    assert queue.claim("w2") is None

    queue.ack(first)
    queue.release(second, not_before=time.time() + 60)
    assert queue.depth() == 1
    assert queue.claim("w0") is None  # backing off, not claimable


def test_claimed_entries_feed_the_reaper(queue):
    queue.submit("job-a")
    ticket = queue.claim("w0")
    assert ticket is not None

    inflight = queue.claimed()
    assert [entry[0] for entry in inflight] == ["job-a"]
    job_id, token, _claimed_at = inflight[0]
    assert token == ticket.token

    queue.ack(ticket)
    assert queue.claimed() == [] and queue.depth() == 0


def test_release_requeues_for_a_different_worker(queue):
    queue.submit("job-a")
    ticket = queue.claim("w0")
    queue.release(ticket, not_before=0.0)
    assert queue.claimed() == []

    retry = queue.claim("w1")
    assert retry is not None and retry.job_id == "job-a"
    queue.ack(retry)
    assert queue.depth() == 0 and queue.claimed() == []


def test_ack_is_idempotent(queue):
    queue.submit("job-a")
    ticket = queue.claim("w0")
    queue.ack(ticket)
    queue.ack(ticket)  # double-ack must not corrupt anything
    assert queue.depth() == 0 and queue.claimed() == []
