"""Tests for the additional token-based and relative measures."""

import pytest

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.tokenbased import (
    DiceDistance,
    MongeElkanDistance,
    OverlapDistance,
    RelativeNumericDistance,
)


class TestDice:
    def test_identical(self):
        assert DiceDistance().evaluate(("a", "b"), ("a", "b")) == 0.0

    def test_disjoint(self):
        assert DiceDistance().evaluate(("a",), ("b",)) == 1.0

    def test_half_overlap(self):
        # {a,b} vs {b,c}: 2*1 / 4 = 0.5 -> distance 0.5
        assert DiceDistance().evaluate(("a", "b"), ("b", "c")) == pytest.approx(0.5)

    def test_dice_leq_jaccard_distance(self):
        from repro.distances.jaccard import jaccard_distance

        pairs = [(("a", "b"), ("b", "c")), (("x",), ("x", "y", "z"))]
        for a, b in pairs:
            assert DiceDistance().evaluate(a, b) <= jaccard_distance(a, b)

    def test_empty_infinite(self):
        assert DiceDistance().evaluate((), ("a",)) == INFINITE_DISTANCE


class TestOverlap:
    def test_containment_is_zero(self):
        assert OverlapDistance().evaluate(("a",), ("a", "b", "c")) == 0.0

    def test_disjoint(self):
        assert OverlapDistance().evaluate(("a",), ("b",)) == 1.0

    def test_partial(self):
        # {a,b} vs {b,c}: 1 / 2
        assert OverlapDistance().evaluate(("a", "b"), ("b", "c")) == pytest.approx(0.5)

    def test_empty_infinite(self):
        assert OverlapDistance().evaluate((), ("a",)) == INFINITE_DISTANCE


class TestMongeElkan:
    def test_identical(self):
        measure = MongeElkanDistance()
        assert measure.evaluate(("John Smith",), ("John Smith",)) == pytest.approx(0.0)

    def test_reordered_tokens_close(self):
        measure = MongeElkanDistance()
        assert measure.evaluate(("John Smith",), ("Smith John",)) < 0.05

    def test_typo_tolerated(self):
        measure = MongeElkanDistance()
        assert measure.evaluate(("John Smith",), ("Jon Smith",)) < 0.15

    def test_different_names_far(self):
        measure = MongeElkanDistance()
        assert measure.evaluate(("John Smith",), ("Mary Davis",)) > 0.3

    def test_symmetrised(self):
        measure = MongeElkanDistance()
        d1 = measure.evaluate(("John Smith",), ("John Smith extra tokens",))
        d2 = measure.evaluate(("John Smith extra tokens",), ("John Smith",))
        assert d1 == pytest.approx(d2)

    def test_empty_infinite(self):
        assert MongeElkanDistance().evaluate((), ("x",)) == INFINITE_DISTANCE

    def test_bounded(self):
        measure = MongeElkanDistance()
        assert 0.0 <= measure.evaluate(("abc def",), ("xyz uvw",)) <= 1.0


class TestRelativeNumeric:
    def test_equal(self):
        assert RelativeNumericDistance().evaluate(("100",), ("100.0",)) == 0.0

    def test_ten_percent(self):
        assert RelativeNumericDistance().evaluate(("100",), ("110",)) == pytest.approx(
            10 / 110
        )

    def test_scale_free(self):
        measure = RelativeNumericDistance()
        small = measure.evaluate(("1.0",), ("1.1",))
        large = measure.evaluate(("1000",), ("1100",))
        assert small == pytest.approx(large)

    def test_both_zero(self):
        assert RelativeNumericDistance().evaluate(("0",), ("0",)) == 0.0

    def test_unparseable_infinite(self):
        assert (
            RelativeNumericDistance().evaluate(("abc",), ("1",))
            == INFINITE_DISTANCE
        )

    def test_min_over_sets(self):
        distance = RelativeNumericDistance().evaluate(("1", "100"), ("105",))
        assert distance == pytest.approx(5 / 105)


class TestRegistryIntegration:
    def test_new_measures_registered(self):
        from repro.distances.registry import default_registry

        for name in ("dice", "overlap", "mongeElkan", "relativeNumeric"):
            assert name in default_registry()


class TestReduceTransforms:
    def test_alpha_reduce(self):
        from repro.transforms.reduce import AlphaReduce

        assert AlphaReduce()([("ab-12 cd!",)]) == ("abcd",)

    def test_num_reduce_phone_numbers(self):
        from repro.transforms.reduce import NumReduce

        assert NumReduce()([("310-246-1501", "310/246.1501")]) == (
            "3102461501",
            "3102461501",
        )

    def test_normalize_whitespace(self):
        from repro.transforms.reduce import NormalizeWhitespace

        assert NormalizeWhitespace()([("  a \t b  ",)]) == ("a b",)

    def test_registered(self):
        from repro.transforms.registry import default_registry

        for name in ("alphaReduce", "numReduce", "normalizeWhitespace"):
            assert name in default_registry()
