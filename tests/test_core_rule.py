"""Tests for LinkageRule and grammar validation."""

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule, RuleValidationError, validate_tree


def _comparison(prop_a="a", prop_b="b") -> ComparisonNode:
    return ComparisonNode("levenshtein", 1.0, PropertyNode(prop_a), PropertyNode(prop_b))


class TestValidation:
    def test_valid_comparison_root(self):
        LinkageRule(_comparison())  # no raise

    def test_valid_nested_aggregations(self):
        inner = AggregationNode("max", (_comparison(),))
        LinkageRule(AggregationNode("min", (inner, _comparison())))

    def test_property_cannot_be_root(self):
        with pytest.raises(RuleValidationError):
            validate_tree(PropertyNode("x"), expect_similarity=True)

    def test_transformation_cannot_be_root(self):
        with pytest.raises(RuleValidationError):
            validate_tree(
                TransformationNode("lowerCase", (PropertyNode("x"),)),
                expect_similarity=True,
            )

    def test_transformations_nest_inside_values_only(self):
        nested = TransformationNode(
            "tokenize", (TransformationNode("lowerCase", (PropertyNode("x"),)),)
        )
        LinkageRule(
            ComparisonNode("jaccard", 0.5, nested, PropertyNode("y"))
        )  # no raise


class TestLinkageRule:
    def _rule(self) -> LinkageRule:
        return LinkageRule(
            AggregationNode(
                "wmean",
                (
                    _comparison("title", "title"),
                    AggregationNode("max", (_comparison("date", "date"),)),
                ),
            )
        )

    def test_operator_count(self):
        # 2 agg + 2 cmp + 4 props = 8
        assert self._rule().operator_count() == 8

    def test_comparisons(self):
        assert len(self._rule().comparisons()) == 2

    def test_aggregations(self):
        assert len(self._rule().aggregations()) == 2

    def test_transformations_empty(self):
        assert self._rule().transformations() == []

    def test_properties(self):
        assert len(self._rule().properties()) == 4

    def test_depth(self):
        # wmean -> max -> comparison -> property = 4
        assert self._rule().depth() == 4

    def test_with_root(self):
        rule = self._rule()
        new_rule = rule.with_root(_comparison())
        assert new_rule.operator_count() == 3
        assert rule.operator_count() == 8

    def test_str_renders_functions(self):
        assert "wmean" in str(self._rule())

    def test_rule_is_frozen_and_hashable(self):
        rule = self._rule()
        assert hash(rule) == hash(self._rule())
