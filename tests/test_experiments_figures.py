"""Tests for the ASCII chart renderer (repro.experiments.figures)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.aggregate import MeanStd
from repro.experiments.figures import Series, bar_chart, learning_curve_chart, line_chart
from repro.experiments.protocol import CrossValidationResult, IterationAggregate


class TestSeries:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="x values"):
            Series("s", (1.0, 2.0), (1.0,))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Series("s", (), ())


class TestLineChart:
    def curve(self):
        return Series("f1", (0.0, 10.0, 20.0), (0.2, 0.8, 0.95))

    def test_contains_title_and_legend(self):
        text = line_chart([self.curve()], title="Cora")
        assert text.splitlines()[0] == "Cora"
        assert "o f1" in text

    def test_y_axis_labels(self):
        text = line_chart([self.curve()], y_min=0.0, y_max=1.0)
        assert "1.00" in text
        assert "0.00" in text

    def test_marker_positions_monotone_curve(self):
        text = line_chart([self.curve()], y_min=0.0, y_max=1.0, width=30, height=10)
        rows = [line for line in text.splitlines() if "|" in line]
        columns = {}
        for row_index, row in enumerate(rows):
            body = row.split("|", 1)[1]
            for column_index, char in enumerate(body):
                if char == "o":
                    columns[column_index] = row_index
        # Rising curve: later x -> higher on the chart (smaller row).
        ordered = [columns[c] for c in sorted(columns)]
        assert ordered == sorted(ordered, reverse=True)

    def test_two_series_use_distinct_markers(self):
        other = Series("val", (0.0, 10.0, 20.0), (0.1, 0.5, 0.7))
        text = line_chart([self.curve(), other])
        assert "o f1" in text and "x val" in text

    def test_no_series_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            line_chart([])

    def test_tiny_chart_raises(self):
        with pytest.raises(ValueError, match="at least"):
            line_chart([self.curve()], width=4, height=2)

    def test_flat_series_renders(self):
        flat = Series("flat", (0.0, 1.0), (0.5, 0.5))
        text = line_chart([flat])
        assert "flat" in text


class TestLearningCurveChart:
    def result(self) -> CrossValidationResult:
        rows = [
            IterationAggregate(
                iteration=i,
                seconds=MeanStd(float(i), 0.0, 3),
                train_f_measure=MeanStd(0.5 + i * 0.05, 0.01, 3),
                validation_f_measure=MeanStd(0.45 + i * 0.05, 0.01, 3),
                comparisons=MeanStd(2.0, 0.0, 3),
                transformations=MeanStd(1.0, 0.0, 3),
            )
            for i in range(0, 30, 10)
        ]
        return CrossValidationResult(dataset="cora", runs=3, rows=rows)

    def test_renders_both_curves(self):
        text = learning_curve_chart(self.result())
        assert "train F1" in text
        assert "validation F1" in text
        assert "cora" in text


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart({"Boolean": 0.5, "Full": 1.0}, width=10, maximum=1.0)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        text = bar_chart({"a": 0.123})
        assert "0.123" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            bar_chart({})

    def test_negative_clamped(self):
        text = bar_chart({"neg": -0.5}, width=10, maximum=1.0)
        assert "#" not in text.splitlines()[0].split("|")[1]

    def test_title(self):
        text = bar_chart({"a": 1.0}, title="Table 13")
        assert text.splitlines()[0] == "Table 13"


# -- property-based -----------------------------------------------------------


@given(
    ys=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    width=st.integers(min_value=8, max_value=100),
    height=st.integers(min_value=4, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_line_chart_never_crashes_and_has_fixed_geometry(ys, width, height):
    series = Series("s", tuple(float(i) for i in range(len(ys))), tuple(ys))
    text = line_chart([series], width=width, height=height)
    body_rows = [line for line in text.splitlines() if "|" in line]
    assert len(body_rows) == height
    assert all(len(row.split("|", 1)[1]) == width for row in body_rows)


@given(
    values=st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_bar_chart_one_line_per_value(values):
    text = bar_chart(values, maximum=1.0)
    assert len(text.splitlines()) == len(values)
