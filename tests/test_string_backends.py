"""String-backend determinism: whatever backend
``REPRO_ENGINE_STRING_BACKEND`` selects — the pure-Python oracle, the
numpy kernels, or the optional rapidfuzz package — links, scores and
learning history must be bit-identical. The variable may only move
wall-clock. CI's optional-deps leg re-runs these suites with rapidfuzz
installed; locally the rapidfuzz leg is skipped when absent.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.nodes import AggregationNode, ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule
from repro.data.splits import train_validation_split
from repro.datasets import load_dataset
from repro.distances.strings import BACKEND_ENV, _rapidfuzz_levenshtein
from repro.matching.engine import MatchingEngine


def _backends() -> list[str]:
    backends = ["python", "numpy"]
    if _rapidfuzz_levenshtein() is not None:
        backends.append("rapidfuzz")
    return backends


class _backend:
    def __init__(self, spec: str):
        self._spec = spec

    def __enter__(self):
        self._saved = os.environ.get(BACKEND_ENV)
        os.environ[BACKEND_ENV] = self._spec

    def __exit__(self, *exc_info):
        if self._saved is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = self._saved


def _string_rule() -> LinkageRule:
    """A rule leaning on every string-kernel family at once."""
    name = PropertyNode("name")
    tokens = TransformationNode("tokenize", (PropertyNode("address"),))
    return LinkageRule(
        AggregationNode(
            function="wmean",
            operators=(
                ComparisonNode("levenshtein", 3.0, name, name),
                ComparisonNode("jaroWinkler", 0.25, name, name),
                ComparisonNode("jaccard", 0.8, tokens, tokens),
            ),
        )
    )


def _restaurant():
    return load_dataset("restaurant", seed=5, scale=0.3)


def test_links_identical_across_backends_and_workers():
    """One string-heavy rule, every backend × workers {0, 2,
    process:2}: identical links including emission order."""
    dataset = _restaurant()
    rule = _string_rule()
    reference = None
    for backend in _backends():
        with _backend(backend):
            for workers in (0, 2, "process:2"):
                engine = MatchingEngine(workers=workers, batch_size=128)
                try:
                    links = [
                        (link.uid_a, link.uid_b, link.score)
                        for link in engine.iter_links(
                            rule, dataset.source_a, dataset.source_b
                        )
                    ]
                finally:
                    engine.close()
                if reference is None:
                    reference = links
                    assert links, "rule generated no links"
                else:
                    assert links == reference, (backend, workers)


def test_routing_counters_reported_per_run():
    """The per-run MatchStats carry the kernel-routing split: all-batch
    under numpy, all-fallback under the python oracle."""
    dataset = _restaurant()
    rule = _string_rule()
    for backend, expect_batch in (("numpy", True), ("python", False)):
        with _backend(backend):
            engine = MatchingEngine(batch_size=128)
            try:
                list(engine.iter_links(rule, dataset.source_a, dataset.source_b))
                stats = engine.last_run_stats()
            finally:
                engine.close()
        routing = {name: (batch, fallback) for name, batch, fallback in stats.kernel_routing}
        assert set(routing) == {"levenshtein", "jaroWinkler", "jaccard"}, routing
        for name, (batch, fallback) in routing.items():
            total = batch + fallback
            assert total > 0, (backend, name)
            if expect_batch:
                assert fallback == 0, (backend, name, routing)
            else:
                assert batch == 0, (backend, name, routing)


def test_learning_identical_across_backends():
    """Full GenLink learning (history and best rule) is bit-identical
    across backends on a real dataset slice."""
    results = []
    for backend in _backends():
        with _backend(backend):
            dataset = _restaurant()
            rng = random.Random(5)
            train, validation = train_validation_split(dataset.links, rng)
            result = GenLink(
                GenLinkConfig(population_size=24, max_iterations=3)
            ).learn(
                dataset.source_a,
                dataset.source_b,
                train,
                validation_links=validation,
                rng=rng,
            )
        results.append(
            (
                result.best_rule,
                [
                    (
                        record.iteration,
                        record.best_fitness,
                        record.train_f_measure,
                    )
                    for record in result.history
                ],
            )
        )
    for backend, got in zip(_backends()[1:], results[1:]):
        assert got == results[0], backend


def test_invalid_backend_fails_loudly():
    dataset = _restaurant()
    rule = _string_rule()
    with _backend("turbo"):
        engine = MatchingEngine(batch_size=128)
        try:
            with pytest.raises(ValueError, match="turbo"):
                list(engine.iter_links(rule, dataset.source_a, dataset.source_b))
        finally:
            engine.close()
