"""End-to-end integration: the full linkage workflow across modules.

Each test chains several subsystems the way a downstream user would:
learn → lint → prune → export → re-import → execute → evaluate. The
goal is to catch interface drift between packages, not to re-test each
piece.
"""

from __future__ import annotations

import io as io_module
import random

import pytest

from repro.core.evaluation import PairEvaluator
from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.lint import lint_rule
from repro.core.pruning import prune_rule
from repro.data.entity import Entity
from repro.data.io import (
    load_links_csv,
    load_source_csv,
    load_source_ntriples,
    save_links_csv,
    save_source_csv,
    save_source_ntriples,
)
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource
from repro.matching.engine import MatchingEngine
from repro.matching.evaluation import evaluate_links
from repro.matching.multiblock import MultiBlocker, blocking_quality
from repro.silk import SilkInterlink, parse_silk_config, silk_config


def build_city_workload(n: int = 20):
    """Two sources with case noise; returns sources and true matches."""
    names = [f"City Number {i}" for i in range(n)]
    source_a = DataSource(
        "a",
        [
            Entity(f"a{i}", {"label": name, "population": str(1000 + 7 * i)})
            for i, name in enumerate(names)
        ],
    )
    source_b = DataSource(
        "b",
        [
            Entity(f"b{i}", {"label": name.upper(), "population": str(1000 + 7 * i)})
            for i, name in enumerate(names)
        ],
    )
    matches = [(f"a{i}", f"b{i}") for i in range(n)]
    return source_a, source_b, matches


def train_links(matches, k: int = 10) -> ReferenceLinkSet:
    rng = random.Random(99)
    positive = matches[:k]
    negative = [
        (positive[i][0], positive[(i + 3) % k][1]) for i in range(k)
    ]
    return ReferenceLinkSet(positive=positive, negative=negative)


class TestFullPipeline:
    def test_learn_lint_prune_export_execute_evaluate(self):
        source_a, source_b, matches = build_city_workload()
        links = train_links(matches)

        # 1. learn
        result = GenLink(GenLinkConfig(population_size=40, max_iterations=10)).learn(
            source_a, source_b, links, rng=17
        )
        assert result.history[-1].train_f_measure >= 0.9

        # 2. lint: learned rules must be clean against their sources
        report = lint_rule(result.best_rule, source_a, source_b)
        assert report.ok, report.render()

        # 3. prune: never degrades training MCC
        pairs, labels = links.labelled_pairs(source_a, source_b)
        pruned = prune_rule(result.best_rule, PairEvaluator(pairs), labels)
        assert pruned.mcc_after >= pruned.mcc_before - 1e-9

        # 4. Silk round trip is loss-free
        document = silk_config(
            [SilkInterlink(id="cities", rule=pruned.rule)]
        )
        reimported = parse_silk_config(document).interlink("cities").rule
        assert reimported == pruned.rule

        # 5. execute with MultiBlock and evaluate against all matches
        engine = MatchingEngine(blocker=MultiBlocker(reimported))
        generated = engine.execute(reimported, source_a, source_b)
        evaluation = evaluate_links(
            [link.as_pair() for link in generated], matches
        )
        assert evaluation.f_measure >= 0.9

    def test_multiblock_equals_full_index_on_learned_rule(self):
        source_a, source_b, matches = build_city_workload()
        links = train_links(matches)
        result = GenLink(GenLinkConfig(population_size=40, max_iterations=10)).learn(
            source_a, source_b, links, rng=23
        )
        quality = blocking_quality(
            MultiBlocker(result.best_rule), source_a, source_b, matches
        )
        assert quality.pairs_completeness == 1.0


class TestIoRoundTrips:
    def test_csv_round_trip_preserves_learning(self):
        """Learning after a CSV save/load cycle gives the same curve —
        the serialisation loses nothing the learner sees."""
        source_a, source_b, matches = build_city_workload(12)
        links = train_links(matches, k=8)

        buffer_a, buffer_b, buffer_links = (
            io_module.StringIO(),
            io_module.StringIO(),
            io_module.StringIO(),
        )
        save_source_csv(source_a, buffer_a)
        save_source_csv(source_b, buffer_b)
        save_links_csv(links, buffer_links)
        for buffer in (buffer_a, buffer_b, buffer_links):
            buffer.seek(0)
        reloaded_a = load_source_csv(buffer_a, "a")
        reloaded_b = load_source_csv(buffer_b, "b")
        reloaded_links = load_links_csv(buffer_links)

        config = GenLinkConfig(population_size=30, max_iterations=5)
        original = GenLink(config).learn(source_a, source_b, links, rng=7)
        reloaded = GenLink(config).learn(
            reloaded_a, reloaded_b, reloaded_links, rng=7
        )
        assert [r.train_f_measure for r in original.history] == [
            r.train_f_measure for r in reloaded.history
        ]

    def test_ntriples_sources_feed_the_learner(self, tmp_path):
        """The RDF path: dump sources as N-Triples, reload, learn."""
        source_a, source_b, matches = build_city_workload(10)
        path_a = tmp_path / "a.nt"
        path_b = tmp_path / "b.nt"
        save_source_ntriples(source_a, path_a)
        save_source_ntriples(source_b, path_b)
        prefixes = {
            "http://example.org/entity/": "",
            "http://example.org/property/": "",
        }
        reloaded_a = load_source_ntriples(path_a, "a", prefixes=prefixes)
        reloaded_b = load_source_ntriples(path_b, "b", prefixes=prefixes)
        links = train_links(matches, k=6)
        result = GenLink(GenLinkConfig(population_size=30, max_iterations=6)).learn(
            reloaded_a, reloaded_b, links, rng=3
        )
        assert result.history[-1].train_f_measure >= 0.9


class TestDiagnosticsIntegration:
    def test_tracker_and_pruning_on_one_run(self):
        from repro.core.diversity import DiversityTracker
        from repro.core.fitness import FitnessFunction

        source_a, source_b, matches = build_city_workload()
        links = train_links(matches)
        pairs, labels = links.labelled_pairs(source_a, source_b)
        fitness = FitnessFunction(PairEvaluator(pairs), labels)
        tracker = DiversityTracker(fitness.fitness)
        learner = GenLink(GenLinkConfig(population_size=30, max_iterations=6))
        result = learner.learn(source_a, source_b, links, rng=11, observer=tracker)
        assert len(tracker.snapshots) == len(result.history)
        # Best fitness in the tracker is monotonically non-decreasing
        # (elitism keeps the best rule alive).
        best = [s.best_fitness for s in tracker.snapshots]
        assert best == sorted(best)

    def test_profiler_guides_rule_construction(self):
        """key_candidates surfaces the property a good rule compares."""
        from repro.data.profiling import profile_source

        source_a, source_b, matches = build_city_workload()
        profile = profile_source(source_a)
        candidates = profile.key_candidates()
        assert "label" in candidates
        links = train_links(matches)
        result = GenLink(GenLinkConfig(population_size=40, max_iterations=8)).learn(
            source_a, source_b, links, rng=29
        )
        compared = {
            prop
            for comparison in result.best_rule.comparisons()
            for prop in [
                node.property_name
                for node in comparison.source.children() or [comparison.source]
                if hasattr(node, "property_name")
            ]
        }
        # The learner's chosen properties are a subset of the profiled
        # schema (sanity: profiling and learning see the same world).
        assert compared <= set(p.name for p in profile.properties)
