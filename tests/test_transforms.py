"""Tests for all value transformations."""

import pytest

from repro.transforms.base import Transformation
from repro.transforms.case import Capitalize, LowerCase, UpperCase
from repro.transforms.concat import Concatenate
from repro.transforms.normalize import Replace, StripPunctuation, Trim
from repro.transforms.stem import PorterStemmer, StemWords, porter_stem
from repro.transforms.tokenize import Tokenize
from repro.transforms.uri import StripUriPrefix, strip_uri_prefix


class TestCaseTransformations:
    def test_lower_case(self):
        assert LowerCase()([("iPod", "IPOD")]) == ("ipod", "ipod")

    def test_upper_case(self):
        assert UpperCase()([("iPod",)]) == ("IPOD",)

    def test_capitalize(self):
        assert Capitalize()([("new york city",)]) == ("New York City",)

    def test_empty_value_set(self):
        assert LowerCase()([()]) == ()

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            LowerCase()([("a",), ("b",)])


class TestTokenize:
    def test_splits_on_whitespace_and_punctuation(self):
        assert Tokenize()([("Salem, Massachusetts",)]) == ("Salem", "Massachusetts")

    def test_flattens_multiple_values(self):
        assert Tokenize()([("a b", "c")]) == ("a", "b", "c")

    def test_deduplicates_preserving_order(self):
        assert Tokenize()([("x y x",)]) == ("x", "y")

    def test_underscores_split(self):
        assert Tokenize()([("New_York",)]) == ("New", "York")

    def test_numbers_kept(self):
        assert Tokenize()([("route 66",)]) == ("route", "66")

    def test_empty(self):
        assert Tokenize()([("",)]) == ()


class TestStripUriPrefix:
    def test_dbpedia_resource(self):
        assert strip_uri_prefix("http://dbpedia.org/resource/Berlin") == "Berlin"

    def test_underscores_become_spaces(self):
        assert (
            strip_uri_prefix("http://dbpedia.org/resource/New_York_City")
            == "New York City"
        )

    def test_fragment_uri(self):
        assert strip_uri_prefix("http://example.org/onto#Thing") == "Thing"

    def test_percent_decoding(self):
        assert strip_uri_prefix("http://x.org/r/Caf%C3%A9") == "Café"

    def test_non_uri_unchanged(self):
        assert strip_uri_prefix("Berlin") == "Berlin"

    def test_trailing_slash(self):
        assert strip_uri_prefix("http://x.org/r/Berlin/") == "Berlin"

    def test_transformation_wrapper(self):
        transform = StripUriPrefix()
        assert transform([("http://dbpedia.org/resource/Paris", "Lyon")]) == (
            "Paris",
            "Lyon",
        )


class TestConcatenate:
    def test_single_values(self):
        assert Concatenate()([("John",), ("Smith",)]) == ("John Smith",)

    def test_custom_separator(self):
        assert Concatenate(separator=", ")([("Smith",), ("John",)]) == ("Smith, John",)

    def test_cross_product(self):
        result = Concatenate()([("a", "b"), ("x",)])
        assert result == ("a x", "b x")

    def test_empty_side_passthrough(self):
        assert Concatenate()([(), ("x",)]) == ("x",)
        assert Concatenate()([("x",), ()]) == ("x",)

    def test_arity_is_two(self):
        with pytest.raises(ValueError):
            Concatenate()([("only one",)])

    def test_cross_product_capped(self):
        many = tuple(str(i) for i in range(20))
        result = Concatenate()([many, many])
        assert len(result) == Concatenate.max_outputs


class TestPorterStemmer:
    @pytest.mark.parametrize(
        "word,stem",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("hopefulness", "hope"),
            ("formalize", "formal"),
            ("adjustable", "adjust"),
            ("probate", "probat"),
            ("cease", "ceas"),
        ],
    )
    def test_known_stems(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_unchanged(self):
        assert porter_stem("at") == "at"

    def test_lowercases(self):
        assert porter_stem("Running") == porter_stem("running")

    def test_stem_words_transformation(self):
        assert StemWords()([("running computers",)]) == ("run comput",)

    def test_idempotent_on_stems(self):
        stemmer = PorterStemmer()
        once = stemmer.stem("computers")
        assert stemmer.stem(once) == once


class TestNormalizeTransformations:
    def test_replace(self):
        assert Replace(search="-", replacement=" ")([("beta-blocker",)]) == (
            "beta blocker",
        )

    def test_replace_requires_search(self):
        with pytest.raises(ValueError):
            Replace(search="")

    def test_strip_punctuation(self):
        assert StripPunctuation()([("St. John's, #1!",)]) == ("St Johns 1",)

    def test_strip_punctuation_collapses_whitespace(self):
        assert StripPunctuation()([("a  -  b",)]) == ("a b",)

    def test_trim(self):
        assert Trim()([("  padded  ",)]) == ("padded",)
