"""Tests for the matching engine and link evaluation."""

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.matching.blocking import (
    FullIndexBlocker,
    RuleBlocker,
    TokenBlocker,
)
from repro.matching.engine import (
    BLOCKER_ENV,
    GeneratedLink,
    MatchingEngine,
    default_blocker,
    generate_links,
)
from repro.matching.evaluation import evaluate_links
from repro.matching.multiblock import MultiBlocker


@pytest.fixture
def rule() -> LinkageRule:
    return LinkageRule(
        ComparisonNode(
            "levenshtein",
            1.0,
            TransformationNode("lowerCase", (PropertyNode("label"),)),
            TransformationNode("lowerCase", (PropertyNode("name"),)),
        )
    )


@pytest.fixture
def sources():
    source_a = DataSource(
        "A",
        [
            Entity("a1", {"label": "Berlin"}),
            Entity("a2", {"label": "Hamburg"}),
            Entity("a3", {"label": "Unmatched Place"}),
        ],
    )
    source_b = DataSource(
        "B",
        [
            Entity("b1", {"name": "berlin"}),
            Entity("b2", {"name": "HAMBURG"}),
            Entity("b3", {"name": "something else"}),
        ],
    )
    return source_a, source_b


class TestMatchingEngine:
    def test_generates_expected_links(self, rule, sources):
        source_a, source_b = sources
        links = generate_links(rule, source_a, source_b)
        pairs = {link.as_pair() for link in links}
        assert pairs == {("a1", "b1"), ("a2", "b2")}

    def test_scores_at_least_threshold(self, rule, sources):
        source_a, source_b = sources
        for link in generate_links(rule, source_a, source_b):
            assert link.score >= 0.5

    def test_sorted_by_score_desc(self, rule, sources):
        source_a, source_b = sources
        links = MatchingEngine().execute(rule, source_a, source_b)
        scores = [link.score for link in links]
        assert scores == sorted(scores, reverse=True)

    def test_explicit_full_blocker(self, rule, sources):
        source_a, source_b = sources
        links = generate_links(rule, source_a, source_b, blocker=FullIndexBlocker())
        assert {link.as_pair() for link in links} == {("a1", "b1"), ("a2", "b2")}

    def test_small_batches_match_single_batch(self, rule, sources):
        source_a, source_b = sources
        small = MatchingEngine(blocker=FullIndexBlocker(), batch_size=2)
        big = MatchingEngine(blocker=FullIndexBlocker(), batch_size=1000)
        assert {l.as_pair() for l in small.execute(rule, source_a, source_b)} == {
            l.as_pair() for l in big.execute(rule, source_a, source_b)
        }

    def test_custom_threshold(self, rule, sources):
        source_a, source_b = sources
        strict = MatchingEngine(blocker=FullIndexBlocker(), threshold=1.0)
        links = strict.execute(rule, source_a, source_b)
        assert all(link.score == 1.0 for link in links)

    def test_deduplication_execution(self, rule):
        source = DataSource(
            "dedup",
            [
                Entity("e1", {"label": "Berlin", "name": "irrelevant"}),
                Entity("e2", {"label": "x", "name": "berlin"}),
                Entity("e3", {"label": "y", "name": "zzz"}),
            ],
        )
        links = generate_links(rule, source, source, blocker=FullIndexBlocker())
        assert {link.as_pair() for link in links} == {("e1", "e2")}


class TestDefaultBlocker:
    def _indexable_rule(self):
        return LinkageRule(
            ComparisonNode(
                "levenshtein",
                1.0,
                TransformationNode("lowerCase", (PropertyNode("label"),)),
                TransformationNode("lowerCase", (PropertyNode("name"),)),
            )
        )

    def _unindexable_rule(self):
        # mongeElkan has no dismissal-free index; the property roots
        # still allow token blocking.
        return LinkageRule(
            ComparisonNode(
                "mongeElkan", 0.5, PropertyNode("label"), PropertyNode("name")
            )
        )

    def test_auto_picks_multiblock_for_indexable_rules(self):
        assert isinstance(default_blocker(self._indexable_rule()), MultiBlocker)

    def test_auto_falls_back_to_rule_blocking(self):
        assert isinstance(default_blocker(self._unindexable_rule()), RuleBlocker)

    def test_auto_max_needs_every_branch_indexable(self):
        rule = LinkageRule(
            AggregationNode(
                "max",
                (
                    self._indexable_rule().root,
                    self._unindexable_rule().root,
                ),
            )
        )
        assert isinstance(default_blocker(rule), RuleBlocker)
        intersecting = LinkageRule(
            AggregationNode(
                "min",
                (
                    self._indexable_rule().root,
                    self._unindexable_rule().root,
                ),
            )
        )
        assert isinstance(default_blocker(intersecting), MultiBlocker)

    def test_explicit_specs(self):
        rule = self._unindexable_rule()
        assert isinstance(default_blocker(rule, "full"), FullIndexBlocker)
        assert isinstance(default_blocker(rule, "multiblock"), MultiBlocker)
        assert isinstance(default_blocker(rule, "rule"), RuleBlocker)
        with pytest.raises(ValueError, match="invalid blocker spec"):
            default_blocker(rule, "bogus")

    def test_env_var_overrides_auto(self, monkeypatch, rule, sources):
        source_a, source_b = sources
        monkeypatch.setenv(BLOCKER_ENV, "full")
        engine = MatchingEngine()
        links = engine.execute(rule, source_a, source_b)
        assert {link.as_pair() for link in links} == {("a1", "b1"), ("a2", "b2")}

    def test_default_run_equals_full_index_run(self, rule, sources):
        source_a, source_b = sources
        default_links = MatchingEngine().execute(rule, source_a, source_b)
        full_links = MatchingEngine(blocker=FullIndexBlocker()).execute(
            rule, source_a, source_b
        )
        assert default_links == full_links

    def test_explicit_blocker_wins_over_env(self, monkeypatch, rule, sources):
        source_a, source_b = sources
        monkeypatch.setenv(BLOCKER_ENV, "full")
        engine = MatchingEngine(blocker=TokenBlocker(["label"], ["name"]))
        links = engine.execute(rule, source_a, source_b)
        assert {link.as_pair() for link in links} == {("a1", "b1"), ("a2", "b2")}


class TestWindow:
    def test_default_window_is_twice_the_workers(self):
        # Explicit worker counts: the ambient REPRO_ENGINE_WORKERS (set
        # by CI's matrix legs) must not leak into this assertion.
        assert MatchingEngine(workers=0).window == 1  # serial floor
        engine = MatchingEngine(workers=3)
        try:
            assert engine.window == 6
        finally:
            engine.close()

    def test_explicit_window_resolves(self):
        engine = MatchingEngine(workers=2, window=7)
        try:
            assert engine.window == 7
        finally:
            engine.close()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            MatchingEngine(window=0)

    def test_window_depth_never_changes_links(self, rule, sources):
        source_a, source_b = sources
        reference = None
        for window in (1, 2, 8):
            engine = MatchingEngine(
                blocker=FullIndexBlocker(),
                batch_size=2,
                workers=2,
                window=window,
            )
            try:
                links = list(engine.iter_links(rule, source_a, source_b))
            finally:
                engine.close()
            if reference is None:
                reference = links
            else:
                assert links == reference


class TestEvaluateLinks:
    def test_perfect(self):
        generated = [GeneratedLink("a1", "b1", 1.0), GeneratedLink("a2", "b2", 0.9)]
        expected = [("a1", "b1"), ("a2", "b2")]
        result = evaluate_links(generated, expected)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f_measure == 1.0

    def test_partial(self):
        generated = [GeneratedLink("a1", "b1", 1.0), GeneratedLink("a9", "b9", 0.8)]
        expected = [("a1", "b1"), ("a2", "b2")]
        result = evaluate_links(generated, expected)
        assert result.precision == 0.5
        assert result.recall == 0.5

    def test_accepts_plain_tuples(self):
        result = evaluate_links([("a1", "b1")], [("a1", "b1")])
        assert result.f_measure == 1.0

    def test_symmetric_mode(self):
        result = evaluate_links(
            [("b1", "a1")], [("a1", "b1")], symmetric=True
        )
        assert result.f_measure == 1.0

    def test_empty_generated(self):
        result = evaluate_links([], [("a1", "b1")])
        assert result.recall == 0.0
        assert result.f_measure == 0.0

    def test_empty_expected(self):
        result = evaluate_links([GeneratedLink("a1", "b1", 1.0)], [])
        assert result.precision == 0.0


class TestEndToEnd:
    def test_learn_then_execute(self):
        """Learned rules generalise to unlinked entities at execution."""
        from repro.core.genlink import GenLink, GenLinkConfig
        from repro.data.reference_links import ReferenceLinkSet

        words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta",
                 "theta", "kappa", "sigma", "omega", "lambda", "omicron"]
        source_a = DataSource("A")
        source_b = DataSource("B")
        for i, word in enumerate(words):
            source_a.add(Entity(f"a{i}", {"label": word.capitalize()}))
            source_b.add(Entity(f"b{i}", {"name": word.upper()}))
        train = ReferenceLinkSet(
            [(f"a{i}", f"b{i}") for i in range(8)],
            [(f"a{i}", f"b{(i + 3) % 8}") for i in range(8)],
        )
        config = GenLinkConfig(population_size=30, max_iterations=10)
        result = GenLink(config).learn(source_a, source_b, train, rng=3)
        links = generate_links(
            result.best_rule, source_a, source_b, blocker=FullIndexBlocker()
        )
        evaluation = evaluate_links(
            links, [(f"a{i}", f"b{i}") for i in range(len(words))]
        )
        assert evaluation.recall >= 0.9
        # Trained on 8 of 12 pairs; a couple of near-miss false positives
        # are acceptable at this scale.
        assert evaluation.precision >= 0.75
