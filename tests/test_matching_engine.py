"""Tests for the matching engine and link evaluation."""

import pytest

from repro.core.nodes import ComparisonNode, PropertyNode, TransformationNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.matching.blocking import FullIndexBlocker
from repro.matching.engine import GeneratedLink, MatchingEngine, generate_links
from repro.matching.evaluation import evaluate_links


@pytest.fixture
def rule() -> LinkageRule:
    return LinkageRule(
        ComparisonNode(
            "levenshtein",
            1.0,
            TransformationNode("lowerCase", (PropertyNode("label"),)),
            TransformationNode("lowerCase", (PropertyNode("name"),)),
        )
    )


@pytest.fixture
def sources():
    source_a = DataSource(
        "A",
        [
            Entity("a1", {"label": "Berlin"}),
            Entity("a2", {"label": "Hamburg"}),
            Entity("a3", {"label": "Unmatched Place"}),
        ],
    )
    source_b = DataSource(
        "B",
        [
            Entity("b1", {"name": "berlin"}),
            Entity("b2", {"name": "HAMBURG"}),
            Entity("b3", {"name": "something else"}),
        ],
    )
    return source_a, source_b


class TestMatchingEngine:
    def test_generates_expected_links(self, rule, sources):
        source_a, source_b = sources
        links = generate_links(rule, source_a, source_b)
        pairs = {link.as_pair() for link in links}
        assert pairs == {("a1", "b1"), ("a2", "b2")}

    def test_scores_at_least_threshold(self, rule, sources):
        source_a, source_b = sources
        for link in generate_links(rule, source_a, source_b):
            assert link.score >= 0.5

    def test_sorted_by_score_desc(self, rule, sources):
        source_a, source_b = sources
        links = MatchingEngine().execute(rule, source_a, source_b)
        scores = [link.score for link in links]
        assert scores == sorted(scores, reverse=True)

    def test_explicit_full_blocker(self, rule, sources):
        source_a, source_b = sources
        links = generate_links(rule, source_a, source_b, blocker=FullIndexBlocker())
        assert {link.as_pair() for link in links} == {("a1", "b1"), ("a2", "b2")}

    def test_small_batches_match_single_batch(self, rule, sources):
        source_a, source_b = sources
        small = MatchingEngine(blocker=FullIndexBlocker(), batch_size=2)
        big = MatchingEngine(blocker=FullIndexBlocker(), batch_size=1000)
        assert {l.as_pair() for l in small.execute(rule, source_a, source_b)} == {
            l.as_pair() for l in big.execute(rule, source_a, source_b)
        }

    def test_custom_threshold(self, rule, sources):
        source_a, source_b = sources
        strict = MatchingEngine(blocker=FullIndexBlocker(), threshold=1.0)
        links = strict.execute(rule, source_a, source_b)
        assert all(link.score == 1.0 for link in links)

    def test_deduplication_execution(self, rule):
        source = DataSource(
            "dedup",
            [
                Entity("e1", {"label": "Berlin", "name": "irrelevant"}),
                Entity("e2", {"label": "x", "name": "berlin"}),
                Entity("e3", {"label": "y", "name": "zzz"}),
            ],
        )
        links = generate_links(rule, source, source, blocker=FullIndexBlocker())
        assert {link.as_pair() for link in links} == {("e1", "e2")}


class TestEvaluateLinks:
    def test_perfect(self):
        generated = [GeneratedLink("a1", "b1", 1.0), GeneratedLink("a2", "b2", 0.9)]
        expected = [("a1", "b1"), ("a2", "b2")]
        result = evaluate_links(generated, expected)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f_measure == 1.0

    def test_partial(self):
        generated = [GeneratedLink("a1", "b1", 1.0), GeneratedLink("a9", "b9", 0.8)]
        expected = [("a1", "b1"), ("a2", "b2")]
        result = evaluate_links(generated, expected)
        assert result.precision == 0.5
        assert result.recall == 0.5

    def test_accepts_plain_tuples(self):
        result = evaluate_links([("a1", "b1")], [("a1", "b1")])
        assert result.f_measure == 1.0

    def test_symmetric_mode(self):
        result = evaluate_links(
            [("b1", "a1")], [("a1", "b1")], symmetric=True
        )
        assert result.f_measure == 1.0

    def test_empty_generated(self):
        result = evaluate_links([], [("a1", "b1")])
        assert result.recall == 0.0
        assert result.f_measure == 0.0

    def test_empty_expected(self):
        result = evaluate_links([GeneratedLink("a1", "b1", 1.0)], [])
        assert result.precision == 0.0


class TestEndToEnd:
    def test_learn_then_execute(self):
        """Learned rules generalise to unlinked entities at execution."""
        from repro.core.genlink import GenLink, GenLinkConfig
        from repro.data.reference_links import ReferenceLinkSet

        words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta",
                 "theta", "kappa", "sigma", "omega", "lambda", "omicron"]
        source_a = DataSource("A")
        source_b = DataSource("B")
        for i, word in enumerate(words):
            source_a.add(Entity(f"a{i}", {"label": word.capitalize()}))
            source_b.add(Entity(f"b{i}", {"name": word.upper()}))
        train = ReferenceLinkSet(
            [(f"a{i}", f"b{i}") for i in range(8)],
            [(f"a{i}", f"b{(i + 3) % 8}") for i in range(8)],
        )
        config = GenLinkConfig(population_size=30, max_iterations=10)
        result = GenLink(config).learn(source_a, source_b, train, rng=3)
        links = generate_links(
            result.best_rule, source_a, source_b, blocker=FullIndexBlocker()
        )
        evaluation = evaluate_links(
            links, [(f"a{i}", f"b{i}") for i in range(len(words))]
        )
        assert evaluation.recall >= 0.9
        # Trained on 8 of 12 pairs; a couple of near-miss false positives
        # are acceptable at this scale.
        assert evaluation.precision >= 0.75
