"""Tests for the transformation registry."""

import pytest

from repro.transforms.base import Transformation
from repro.transforms.registry import (
    TransformationRegistry,
    default_registry,
    get_transformation,
    transformation_names,
)


class TestDefaultRegistry:
    def test_contains_table1_transformations(self):
        # Table 1 of the paper.
        for name in ("lowerCase", "tokenize", "stripUriPrefix", "concatenate"):
            assert name in default_registry()

    def test_contains_figure6_stem(self):
        assert "stem" in default_registry()

    def test_unary_names_exclude_concatenate(self):
        unary = default_registry().unary_names()
        assert "concatenate" not in unary
        assert "lowerCase" in unary

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_transformation("fooBar")

    def test_names_sorted(self):
        names = transformation_names()
        assert names == sorted(names)


class TestCustomRegistry:
    def test_register_custom(self):
        class Reverse(Transformation):
            name = "reverse"
            arity = 1

            def apply(self, inputs):
                return tuple(v[::-1] for v in inputs[0])

        registry = TransformationRegistry()
        registry.register(Reverse())
        assert registry.get("reverse")([("abc",)]) == ("cba",)

    def test_register_requires_name(self):
        class Nameless(Transformation):
            name = "abstract"

            def apply(self, inputs):
                return inputs[0]

        with pytest.raises(ValueError):
            TransformationRegistry().register(Nameless())


class _Affix(Transformation):
    """A parameterised test transformation (prefix/suffix wrapping)."""

    name = "affix"
    arity = 1

    def __init__(self, prefix: str = "", suffix: str = ""):
        self._prefix = prefix
        self._suffix = suffix

    def apply(self, inputs):
        return tuple(f"{self._prefix}{v}{self._suffix}" for v in inputs[0])


class TestParameterisedResolve:
    def test_resolve_without_params_is_get(self):
        registry = default_registry()
        assert registry.resolve("lowerCase") is registry.get("lowerCase")

    def test_default_replace_factory(self):
        replaced = default_registry().resolve(
            "replace", (("replacement", " "), ("search", "-"))
        )
        assert replaced([("beta-blocker",)]) == ("beta blocker",)

    def test_params_without_factory_fall_back_to_base(self):
        registry = default_registry()
        assert (
            registry.resolve("lowerCase", (("irrelevant", "x"),))
            is registry.get("lowerCase")
        )

    def test_custom_parameterised_transform(self):
        # Custom parameterised transformations work end-to-end without
        # editing core: register a factory, evaluate a rule node
        # carrying params.
        from repro.core.evaluation import evaluate_value
        from repro.core.nodes import PropertyNode, TransformationNode
        from repro.data.entity import Entity

        registry = TransformationRegistry()
        registry.register(
            _Affix(),
            factory=lambda params: _Affix(
                prefix=params.get("prefix", ""), suffix=params.get("suffix", "")
            ),
        )
        node = TransformationNode(
            "affix", (PropertyNode("name"),), params=(("prefix", "dr. "),)
        )
        entity = Entity("e", {"name": "who"})
        assert evaluate_value(node, entity, registry) == ("dr. who",)

    def test_resolve_memoises_instances(self):
        registry = TransformationRegistry()
        registry.register(_Affix(), factory=lambda params: _Affix(**params))
        params = (("prefix", "x"),)
        assert registry.resolve("affix", params) is registry.resolve(
            "affix", params
        )

    def test_register_factory_requires_known_name(self):
        with pytest.raises(KeyError):
            TransformationRegistry().register_factory("ghost", lambda p: _Affix())

    def test_reregister_without_factory_drops_old_factory(self):
        registry = TransformationRegistry()
        registry.register(
            _Affix(), factory=lambda params: _Affix(prefix=params["prefix"])
        )

        class PlainAffix(_Affix):
            pass

        replacement = PlainAffix()
        registry.register(replacement)
        # Parameterised nodes now resolve to the new registration, not
        # through the stale factory of the replaced one.
        assert registry.resolve("affix", (("prefix", "x"),)) is replacement

    def test_replacing_factory_invalidates_memoised_instances(self):
        registry = TransformationRegistry()
        registry.register(
            _Affix(), factory=lambda params: _Affix(prefix=params["prefix"])
        )
        params = (("prefix", "x"),)
        assert registry.resolve("affix", params)([("v",)]) == ("xv",)
        registry.register_factory(
            "affix", lambda p: _Affix(prefix=p["prefix"].upper())
        )
        assert registry.resolve("affix", params)([("v",)]) == ("Xv",)
