"""Tests for the transformation registry."""

import pytest

from repro.transforms.base import Transformation
from repro.transforms.registry import (
    TransformationRegistry,
    default_registry,
    get_transformation,
    transformation_names,
)


class TestDefaultRegistry:
    def test_contains_table1_transformations(self):
        # Table 1 of the paper.
        for name in ("lowerCase", "tokenize", "stripUriPrefix", "concatenate"):
            assert name in default_registry()

    def test_contains_figure6_stem(self):
        assert "stem" in default_registry()

    def test_unary_names_exclude_concatenate(self):
        unary = default_registry().unary_names()
        assert "concatenate" not in unary
        assert "lowerCase" in unary

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_transformation("fooBar")

    def test_names_sorted(self):
        names = transformation_names()
        assert names == sorted(names)


class TestCustomRegistry:
    def test_register_custom(self):
        class Reverse(Transformation):
            name = "reverse"
            arity = 1

            def apply(self, inputs):
                return tuple(v[::-1] for v in inputs[0])

        registry = TransformationRegistry()
        registry.register(Reverse())
        assert registry.get("reverse")([("abc",)]) == ("cba",)

    def test_register_requires_name(self):
        class Nameless(Transformation):
            name = "abstract"

            def apply(self, inputs):
                return inputs[0]

        with pytest.raises(ValueError):
            TransformationRegistry().register(Nameless())
