"""Integration: GenLink learns a usable rule on every dataset.

Small-scale end-to-end runs — a regression net for the dataset
generators and the learner together. Thresholds are deliberately loose
(tiny populations and datasets); the benchmark suite checks the real
shapes at larger scale.
"""

import random

import pytest

from repro.core.genlink import GenLink, GenLinkConfig
from repro.data.splits import train_validation_split
from repro.datasets import DATASET_NAMES, load_dataset

#: (scale, minimum final training F1) per dataset at test budgets.
EXPECTATIONS = {
    "cora": (0.10, 0.70),
    "restaurant": (0.60, 0.90),
    "sider_drugbank": (0.15, 0.90),
    "nyt": (0.08, 0.70),
    "linkedmdb": (0.60, 0.80),
    "dbpedia_drugbank": (0.10, 0.90),
}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_genlink_learns_dataset(name):
    scale, minimum_f1 = EXPECTATIONS[name]
    dataset = load_dataset(name, seed=5, scale=scale)
    rng = random.Random(5)
    train, validation = train_validation_split(dataset.links, rng)
    config = GenLinkConfig(population_size=50, max_iterations=10)
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train,
        validation_links=validation, rng=rng,
    )
    last = result.history[-1]
    assert last.train_f_measure >= minimum_f1, (
        f"{name}: train F1 {last.train_f_measure:.3f} < {minimum_f1}"
    )
    # The learned rule must be serialisable and renderable.
    from repro.core.serialization import render_rule, rule_from_json, rule_to_json

    assert rule_from_json(rule_to_json(result.best_rule)) == result.best_rule
    assert render_rule(result.best_rule)
