"""Tests for rule serialisation and rendering."""

import json

import pytest

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.core.serialization import (
    render_rule,
    rule_from_dict,
    rule_from_json,
    rule_to_dict,
    rule_to_json,
)


def _complex_rule() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "wmean",
            (
                ComparisonNode(
                    "levenshtein",
                    1.5,
                    TransformationNode(
                        "replace",
                        (PropertyNode("label"),),
                        params=(("replacement", " "), ("search", "-")),
                    ),
                    TransformationNode("lowerCase", (PropertyNode("name"),)),
                    weight=3,
                ),
                AggregationNode(
                    "max",
                    (
                        ComparisonNode(
                            "geographic", 1000.0, PropertyNode("p"), PropertyNode("c")
                        ),
                    ),
                    weight=2,
                ),
            ),
        )
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        rule = _complex_rule()
        assert rule_from_dict(rule_to_dict(rule)) == rule

    def test_json_round_trip(self):
        rule = _complex_rule()
        assert rule_from_json(rule_to_json(rule)) == rule

    def test_json_is_valid_json(self):
        json.loads(rule_to_json(_complex_rule()))

    def test_params_preserved(self):
        rule = rule_from_dict(rule_to_dict(_complex_rule()))
        transformations = rule.transformations()
        replace = next(t for t in transformations if t.function == "replace")
        assert dict(replace.params) == {"replacement": " ", "search": "-"}

    def test_weights_preserved(self):
        rule = rule_from_dict(rule_to_dict(_complex_rule()))
        assert rule.comparisons()[0].weight == 3

    def test_missing_key_raises(self):
        with pytest.raises(ValueError, match="linkageRule"):
            rule_from_dict({})

    def test_value_root_rejected(self):
        with pytest.raises(ValueError):
            rule_from_dict({"linkageRule": {"type": "property", "property": "x"}})

    def test_unknown_node_type_rejected(self):
        with pytest.raises(ValueError, match="mystery"):
            rule_from_dict({"linkageRule": {"type": "mystery"}})

    def test_invalid_tree_rejected_on_load(self):
        payload = {
            "linkageRule": {
                "type": "aggregation",
                "function": "min",
                "operators": [{"type": "property", "property": "x"}],
            }
        }
        with pytest.raises(Exception):
            rule_from_dict(payload)


class TestRendering:
    def test_render_contains_all_operators(self, city_rule):
        text = render_rule(city_rule)
        assert "Aggregate: min" in text
        assert "Compare: levenshtein" in text
        assert "Compare: geographic" in text
        assert "Transform: lowerCase" in text
        assert "Property: label" in text

    def test_render_title(self, city_rule):
        text = render_rule(city_rule, title="Figure 2")
        assert text.startswith("Figure 2")

    def test_render_comparison_root(self):
        rule = LinkageRule(
            ComparisonNode("jaccard", 0.5, PropertyNode("a"), PropertyNode("b"))
        )
        text = render_rule(rule)
        assert "Compare: jaccard" in text
        assert "θ=0.5" in text

    def test_render_shows_params(self):
        text = render_rule(_complex_rule())
        assert "search" in text
