"""Edge-case and behavioural tests for the GenLink learner."""

import random

import pytest

from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.nodes import AggregationNode, ComparisonNode, PropertyNode
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


def _task(n: int = 16):
    source_a = DataSource("A")
    source_b = DataSource("B")
    positive = []
    for i in range(n):
        source_a.add(Entity(f"a{i}", {"key": f"value-{i:03d}"}))
        source_b.add(Entity(f"b{i}", {"ident": f"VALUE-{i:03d}"}))
        positive.append((f"a{i}", f"b{i}"))
    negative = [(f"a{i}", f"b{(i + 4) % n}") for i in range(n)]
    return source_a, source_b, ReferenceLinkSet(positive, negative)


class TestSeedingModes:
    def test_unseeded_learning_runs(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(
            population_size=20, max_iterations=3, seeding=False
        )
        result = GenLink(config).learn(source_a, source_b, links, rng=1)
        assert result.history

    def test_unseeded_generator_uses_schema_properties(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(population_size=10, seeding=False)
        learner = GenLink(config)
        generator = learner.build_generator(
            source_a, source_b, links, random.Random(0)
        )
        rule = generator.random_rule()
        properties = {p.property_name for p in rule.properties()}
        assert properties <= {"key", "ident"}

    def test_seeded_generator_finds_compatible_pair(self):
        source_a, source_b, links = _task()
        learner = GenLink(GenLinkConfig(population_size=10))
        generator = learner.build_generator(
            source_a, source_b, links, random.Random(0)
        )
        # 'value-003' vs 'VALUE-003' tokens are within Levenshtein
        # distance... actually case-differing tokens are not, so the
        # generator may fall back; either way rules must be valid.
        rule = generator.random_rule()
        assert rule.operator_count() >= 3


class TestSizeControl:
    def test_max_operator_count_enforced(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(
            population_size=20, max_iterations=6, max_operator_count=10,
            stop_f_measure=2.0,
        )
        result = GenLink(config).learn(source_a, source_b, links, rng=3)
        assert result.best_rule.operator_count() <= 10

    def test_parsimony_prefers_smaller_equal_rules(self):
        """Two rules with equal MCC: the smaller one has higher fitness."""
        from repro.core.evaluation import PairEvaluator
        from repro.core.fitness import FitnessFunction

        source_a, source_b, links = _task()
        pairs, labels = links.labelled_pairs(source_a, source_b)
        fitness = FitnessFunction(PairEvaluator(pairs), labels)
        small = LinkageRule(
            ComparisonNode("equality", 0.5, PropertyNode("key"), PropertyNode("key"))
        )
        big = LinkageRule(
            AggregationNode(
                "min",
                (
                    small.root,
                    ComparisonNode(
                        "equality", 0.5, PropertyNode("key"), PropertyNode("key")
                    ),
                ),
            )
        )
        assert fitness.mcc(small) == fitness.mcc(big)
        assert fitness.fitness(small) > fitness.fitness(big)


class TestHistorySemantics:
    def test_best_so_far_never_decreases_without_elitism(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(
            population_size=20, max_iterations=8, elitism=0, stop_f_measure=2.0
        )
        result = GenLink(config).learn(source_a, source_b, links, rng=4)
        scores = [r.train_f_measure for r in result.history]
        assert scores == sorted(scores)

    def test_record_at_unknown_early_iteration_raises(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(population_size=20, max_iterations=2)
        result = GenLink(config).learn(source_a, source_b, links, rng=4)
        with pytest.raises(KeyError):
            result.record_at(-1)

    def test_zero_iterations_returns_initial_best(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(population_size=20, max_iterations=0)
        result = GenLink(config).learn(source_a, source_b, links, rng=4)
        assert [r.iteration for r in result.history] == [0]

    def test_rng_accepts_int_and_none(self):
        source_a, source_b, links = _task()
        config = GenLinkConfig(population_size=10, max_iterations=1)
        GenLink(config).learn(source_a, source_b, links, rng=5)
        GenLink(config).learn(source_a, source_b, links, rng=None)
