"""Batch-probe parity with the frozen per-entity probe loops.

``Blocker.probe_batch`` replaced the per-entity Python probe loops;
these tests pin it to the frozen copies in
``benchmarks/_seed_blocking.py`` property-based: for random sources,
every blocker's batch probe must produce exactly the per-entity
candidates the seed loops produced, for every chunking of the A side —
and the probe memo must actually hit on duplicate-heavy sources, with
the traffic reported through the session's probe counters
(``EngineStats.probe_batches`` / ``probe_memo_hits``, surfaced per run
in ``MatchStats``).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# The frozen probe baselines live with the benchmarks (they are the
# "do not improve" reference the speedup bench gates against).
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from _seed_blocking import (  # noqa: E402  (path set up above)
    seed_multiblock_probe_kernel,
    seed_snb_probe_kernel,
    seed_token_probe_kernel,
)

from repro.core.nodes import (  # noqa: E402
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule  # noqa: E402
from repro.data.entity import Entity  # noqa: E402
from repro.data.source import DataSource  # noqa: E402
from repro.engine.session import EngineSession  # noqa: E402
from repro.matching.blocking import (  # noqa: E402
    SortedNeighbourhoodBlocker,
    TokenBlocker,
)
from repro.matching.engine import MatchingEngine  # noqa: E402
from repro.matching.multiblock import MultiBlocker  # noqa: E402


def _lower(prop: str):
    return TransformationNode("lowerCase", (PropertyNode(prop),))


def _equality_rule() -> LinkageRule:
    return LinkageRule(
        ComparisonNode("equality", 0.0, _lower("label"), _lower("label"))
    )


def _algebra_rules() -> dict[str, LinkageRule]:
    """Rules exercising every branch of the candidate algebra:
    single comparison, min (intersection), max (union), and an
    unindexable child (``relativeNumeric``) contributing the full
    candidate universe."""
    equality = ComparisonNode("equality", 0.0, _lower("label"), _lower("label"))
    jaccard = ComparisonNode(
        "jaccard",
        0.5,
        TransformationNode("tokenize", (PropertyNode("label"),)),
        TransformationNode("tokenize", (PropertyNode("label"),)),
    )
    unindexable = ComparisonNode(
        "relativeNumeric", 0.1, PropertyNode("label"), PropertyNode("label")
    )
    return {
        "single": LinkageRule(equality),
        "min": LinkageRule(AggregationNode("min", (equality, jaccard))),
        "max": LinkageRule(AggregationNode("max", (equality, jaccard))),
        "min-unindexable": LinkageRule(
            AggregationNode("min", (equality, unindexable))
        ),
    }


@st.composite
def _sources(draw):
    """Two sources over a shared multi-word vocabulary (labels may
    repeat within a source, so blocks and probe memos see duplicates)."""
    pool = draw(
        st.lists(
            st.text(alphabet="abcd ", min_size=1, max_size=7),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    labels_a = draw(st.lists(st.sampled_from(pool), min_size=1, max_size=12))
    labels_b = draw(st.lists(st.sampled_from(pool), min_size=1, max_size=12))
    shout_a = draw(st.booleans())
    source_a = DataSource(
        "A",
        [
            Entity(f"a{i}", {"label": label.upper() if shout_a else label})
            for i, label in enumerate(labels_a)
        ],
    )
    source_b = DataSource(
        "B", [Entity(f"b{i}", {"label": label}) for i, label in enumerate(labels_b)]
    )
    dedup = draw(st.booleans())
    if dedup:
        return source_a, source_a
    return source_a, source_b


def _chunked_probe(blocker, entities, index, chunk_size):
    results = []
    for start in range(0, len(entities), chunk_size):
        results.extend(
            blocker.probe_batch(entities[start : start + chunk_size], index)
        )
    return results


CHUNK_SIZES = (1, 3, 1000)


@given(sources=_sources(), chunk=st.sampled_from(CHUNK_SIZES))
@settings(max_examples=40, deadline=None)
def test_token_probe_batch_matches_seed(sources, chunk):
    """Token batch probing == the frozen per-entity token probe, per
    entity, for every chunking; chunking never changes the arrays."""
    source_a, source_b = sources
    blocker = TokenBlocker(["label"])
    raw_index = blocker.build_index(source_b)
    probe_index = blocker.probe_index(source_a, source_b)
    entities = source_a.entities()
    results = _chunked_probe(blocker, entities, probe_index, chunk)
    seed = seed_token_probe_kernel(source_a, raw_index, ["label"])
    assert len(results) == len(seed)
    for (uid_a, partners), codes in zip(seed, results):
        assert set(blocker.probe_uids(probe_index, codes)) == set(
            partners
        ), uid_a
    whole = blocker.probe_batch(entities, probe_index)
    assert [c.tolist() for c in whole] == [c.tolist() for c in results]


@given(sources=_sources(), chunk=st.sampled_from(CHUNK_SIZES))
@settings(max_examples=25, deadline=None)
def test_multiblock_probe_batch_matches_seed(sources, chunk):
    """MultiBlock batch probing == the frozen per-entity candidate
    algebra, exactly (order included), across aggregation shapes."""
    source_a, source_b = sources
    for label, rule in _algebra_rules().items():
        blocker = MultiBlocker(rule)
        indexes = blocker.build_index(source_b)
        probe_index = blocker.probe_index(source_a, source_b)
        session = EngineSession()
        seed = seed_multiblock_probe_kernel(
            rule,
            source_a,
            indexes,
            frozenset(entity.uid for entity in source_b),
            session,
        )
        results = _chunked_probe(
            blocker, source_a.entities(), probe_index, chunk
        )
        assert len(results) == len(seed)
        for (uid_a, partners), codes in zip(seed, results):
            assert (
                list(blocker.probe_uids(probe_index, codes)) == partners
            ), (label, uid_a)


@given(sources=_sources(), chunk=st.sampled_from(CHUNK_SIZES))
@settings(max_examples=40, deadline=None)
def test_snb_probe_batch_matches_seed(sources, chunk):
    """Sorted-neighbourhood batch probing covers exactly the window
    pairs the frozen merge + sliding-window scan produced."""
    source_a, source_b = sources
    window = 4
    blocker = SortedNeighbourhoodBlocker("label", window=window)
    seed_pairs = set(
        seed_snb_probe_kernel(
            source_a,
            source_b,
            blocker.build_index(source_a),
            blocker.build_index(source_b),
            window,
        )
    )
    state = blocker.probe_index(source_a, source_b)
    entities = state.probe_entities
    results = _chunked_probe(blocker, entities, state, chunk)
    dedup = source_a is source_b
    batch_pairs = set()
    for entity, partners in zip(entities, results):
        for uid in blocker.probe_uids(state, partners):
            if dedup and entity.uid > uid:
                batch_pairs.add((uid, entity.uid))
            else:
                batch_pairs.add((entity.uid, uid))
    assert batch_pairs == seed_pairs


class TestProbeMemo:
    def _duplicate_sources(self) -> tuple[DataSource, DataSource]:
        source_a = DataSource(
            "A",
            [Entity(f"a{i}", {"label": f"value {i % 5}"}) for i in range(200)],
        )
        source_b = DataSource(
            "B",
            [Entity(f"b{i}", {"label": f"value {i % 5}"}) for i in range(50)],
        )
        return source_a, source_b

    def test_multiblock_probe_memo_hits_on_duplicate_heavy_source(self):
        """200 probe entities over 5 distinct transformed tuples: at
        most 5 probes derive keys, the rest hit the memo."""
        source_a, source_b = self._duplicate_sources()
        rule = _equality_rule()
        with MatchingEngine(blocker=MultiBlocker(rule), workers=0) as engine:
            links = engine.execute(rule, source_a, source_b)
            stats = engine.last_run_stats()
        assert links  # the workload matches, so the probe found pairs
        assert stats.probe_batches >= 1
        assert stats.probe_memo_hits >= 195
        hit_rate = stats.probe_memo_hits / len(source_a.entities())
        assert hit_rate >= 0.97

    def test_token_probe_memo_hits_on_duplicate_heavy_source(self):
        source_a, source_b = self._duplicate_sources()
        rule = _equality_rule()
        with MatchingEngine(
            blocker=TokenBlocker(["label"]), workers=0
        ) as engine:
            engine.execute(rule, source_a, source_b)
            stats = engine.last_run_stats()
        assert stats.probe_batches >= 1
        assert stats.probe_memo_hits >= 195

    def test_distinct_values_produce_no_memo_hits(self):
        source_a = DataSource(
            "A", [Entity(f"a{i}", {"label": f"unique {i}"}) for i in range(50)]
        )
        source_b = DataSource(
            "B", [Entity(f"b{i}", {"label": f"unique {i}"}) for i in range(50)]
        )
        rule = _equality_rule()
        with MatchingEngine(blocker=MultiBlocker(rule), workers=0) as engine:
            engine.execute(rule, source_a, source_b)
            stats = engine.last_run_stats()
        assert stats.probe_batches >= 1
        assert stats.probe_memo_hits == 0


class TestMatchStatsProbeCounters:
    @pytest.mark.parametrize("workers", [0, 2, "process:2"])
    def test_probe_counters_reported_per_run(self, workers):
        """Every execution shape reports probe traffic (process pools
        probe parent-side; the parent delta carries the counters)."""
        source_a = DataSource(
            "A", [Entity(f"a{i}", {"label": f"w{i % 7}"}) for i in range(30)]
        )
        source_b = DataSource(
            "B", [Entity(f"b{i}", {"label": f"w{i % 7}"}) for i in range(30)]
        )
        rule = _equality_rule()
        with MatchingEngine(workers=workers) as engine:
            first = list(engine.iter_links(rule, source_a, source_b))
            stats = engine.last_run_stats()
            assert stats.probe_batches >= 1
            assert stats.probe_memo_hits >= 0
            # Per-run delta: a second run reports its own traffic, not
            # the accumulated history.
            second = list(engine.iter_links(rule, source_a, source_b))
            again = engine.last_run_stats()
        assert second == first
        assert again.probe_batches >= 1
        assert again.probe_batches <= stats.probe_batches + 2
