"""Incremental matching equivalence gate.

The contract under test: after any sequence of
``DataSource.apply_delta`` calls, ``MatchingEngine.link_diff`` produces
a link list **byte-identical** to a cold ``execute`` over freshly
rebuilt sources — across every bundled dataset, every delta-aware
blocker and every executor shape. The diff's bookkeeping (added /
removed / unchanged, carried-over links) must also reconcile exactly
with the two link sets it claims to compare.
"""

from __future__ import annotations

import random

import pytest

from repro.data.source import DataSource
from repro.datasets import load_dataset
from repro.matching.blocking import SortedNeighbourhoodBlocker, TokenBlocker
from repro.matching.engine import MatchingEngine
from repro.matching.incremental import (
    DATASET_RULE_PROPERTIES,
    dataset_rule,
    random_source_delta,
    rebuilt,
)
from repro.matching.multiblock import MultiBlocker

#: Subsample scales keeping the full dataset x blocker x executor
#: matrix fast while every side stays large enough for K=25 mutations.
_SCALES = {
    "cora": 0.05,
    "restaurant": 0.1,
    "sider_drugbank": 0.05,
    "nyt": 0.04,
    "linkedmdb": 0.5,
    "dbpedia_drugbank": 0.04,
}

#: K = 25 mutation events per side, split over two delta steps so the
#: gate exercises multi-epoch chains (patch replay, not just one hop).
_STEPS = ((9, 4), (8, 4))

_BLOCKERS = ("multiblock", "token", "snb")
_WORKERS = (0, 2, "process:2")


def _blocker(kind: str, name: str):
    prop_a, prop_b = DATASET_RULE_PROPERTIES[name]
    if kind == "token":
        return TokenBlocker([prop_a], [prop_b], max_block_size=200)
    if kind == "snb":
        return SortedNeighbourhoodBlocker(prop_a, window=6)
    return MultiBlocker(dataset_rule(name))


def _links(links) -> list[tuple[str, str, float]]:
    return [(link.uid_a, link.uid_b, link.score) for link in links]


def _run_combo(name: str, kind: str, workers, tmp_path) -> None:
    rule = dataset_rule(name)
    dataset = load_dataset(name, seed=0, scale=_SCALES[name])
    source_a, source_b = dataset.source_a, dataset.source_b
    dedup = source_a is source_b
    rng = random.Random(f"{name}/{kind}/{workers}")
    engine = MatchingEngine(
        blocker=_blocker(kind, name),
        cache_dir=str(tmp_path / f"{kind}-{workers}"),
        workers=workers,
        batch_size=512,
    )
    try:
        previous = list(engine.execute(rule, source_a, source_b))
        deltas_a = []
        deltas_b = deltas_a if dedup else []
        for upserts, deletes in _STEPS:
            deltas_a.append(
                random_source_delta(
                    source_a,
                    rng,
                    upserts=upserts,
                    deletes=min(deletes, len(source_a) // 3),
                )
            )
            if not dedup:
                deltas_b.append(
                    random_source_delta(
                        source_b,
                        rng,
                        upserts=upserts,
                        deletes=min(deletes, len(source_b) // 3),
                    )
                )
        diff = engine.link_diff(
            rule,
            source_a,
            source_b,
            previous,
            deltas_a=deltas_a,
            deltas_b=deltas_b,
        )
    finally:
        engine.close()

    # Cold reference: rebuilt sources (no epoch chain, no persisted
    # lineage), fresh serial engine, no store. Dedup identity must
    # survive the rebuild — two distinct copies would change the
    # pair-orientation semantics.
    cold_a = rebuilt(source_a)
    cold_b = cold_a if dedup else rebuilt(source_b)
    verifier = MatchingEngine(blocker=_blocker(kind, name), batch_size=512)
    try:
        cold = list(verifier.execute(rule, cold_a, cold_b))
    finally:
        verifier.close()

    label = (name, kind, workers)
    assert _links(diff.links) == _links(cold), label

    # Diff bookkeeping reconciles with the two link sets exactly.
    assert set(diff.added) | set(diff.unchanged) == set(diff.links), label
    assert not set(diff.added) & set(diff.unchanged), label
    assert set(diff.unchanged) <= set(previous), label
    assert set(diff.removed) <= set(previous), label
    previous_pairs = {link.as_pair(): link for link in previous}
    for link in diff.added:
        assert previous_pairs.get(link.as_pair()) != link, label
    for link in diff.removed:
        assert link not in diff.links, label
    assert diff.kept_links <= len(previous), label
    if diff.affected_uids is not None:
        changed = set()
        for delta in deltas_a:
            changed |= delta.changed_uids
        for delta in deltas_b:
            changed |= delta.changed_uids
        assert changed <= diff.affected_uids, label


@pytest.mark.parametrize("name", sorted(_SCALES))
@pytest.mark.parametrize("kind", _BLOCKERS)
def test_incremental_equivalence(name, kind, tmp_path):
    """Thread/serial legs of the matrix for every dataset x blocker."""
    for workers in (0, 2):
        _run_combo(name, kind, workers, tmp_path)


@pytest.mark.parametrize("kind", _BLOCKERS)
def test_incremental_equivalence_process_pool(kind, tmp_path):
    """Process-pool leg: one dedup and one two-source dataset per
    blocker (pool startup is too slow for the full dataset matrix;
    the serial/thread legs above cover it)."""
    for name in ("restaurant", "sider_drugbank"):
        _run_combo(name, kind, "process:2", tmp_path)


def test_empty_delta_is_identity(tmp_path):
    """No deltas: everything carries over, nothing is re-scored."""
    dataset = load_dataset("restaurant", seed=0, scale=_SCALES["restaurant"])
    source = dataset.source_a
    rule = dataset_rule("restaurant")
    engine = MatchingEngine(
        blocker=_blocker("token", "restaurant"), cache_dir=str(tmp_path)
    )
    try:
        previous = list(engine.execute(rule, source, source))
        diff = engine.link_diff(rule, source, source, previous)
    finally:
        engine.close()
    assert list(diff.links) == previous
    assert diff.added == () and diff.removed == ()
    assert diff.unchanged == tuple(diff.links)
    assert diff.rescored_pairs == 0
    assert diff.kept_links == len(previous)
    assert diff.affected_uids == frozenset()


def test_full_rescore_fallback(tmp_path):
    """A blocker without delta support returns None from
    affected_probe_uids: link_diff degrades to a cold execute and
    reports it (affected_uids is None)."""
    from repro.matching.blocking import FullIndexBlocker

    dataset = load_dataset("restaurant", seed=0, scale=_SCALES["restaurant"])
    source = dataset.source_a
    rule = dataset_rule("restaurant")
    engine = MatchingEngine(blocker=FullIndexBlocker(), batch_size=512)
    try:
        previous = list(engine.execute(rule, source, source))
        rng = random.Random(3)
        delta = random_source_delta(source, rng, upserts=5, deletes=2)
        diff = engine.link_diff(
            rule, source, source, previous,
            deltas_a=[delta], deltas_b=[delta],
        )
        cold_source = rebuilt(source)
        cold = list(engine.execute(rule, cold_source, cold_source))
    finally:
        engine.close()
    assert diff.affected_uids is None
    assert diff.kept_links == 0
    assert _links(diff.links) == _links(cold)


def test_iter_link_diff_streams_the_diff(tmp_path):
    dataset = load_dataset("restaurant", seed=0, scale=_SCALES["restaurant"])
    source = dataset.source_a
    rule = dataset_rule("restaurant")
    engine = MatchingEngine(
        blocker=_blocker("token", "restaurant"), cache_dir=str(tmp_path)
    )
    try:
        previous = list(engine.execute(rule, source, source))
        rng = random.Random(5)
        delta = random_source_delta(source, rng, upserts=6, deletes=3)
        events = list(
            engine.iter_link_diff(
                rule, source, source, previous,
                deltas_a=[delta], deltas_b=[delta],
            )
        )
    finally:
        engine.close()
    kinds = {kind for kind, _ in events}
    assert kinds <= {"added", "removed", "unchanged"}
    by_kind = {
        kind: [link for k, link in events if k == kind]
        for kind in ("added", "removed", "unchanged")
    }
    assert set(by_kind["unchanged"]) <= set(previous)
    # Every event link is a real link of one of the two link sets.
    new_links = set(by_kind["added"]) | set(by_kind["unchanged"])
    for link in by_kind["removed"]:
        assert link in previous
    for link in new_links:
        assert link.score >= 0.5
