"""Tests for rule linting (repro.core.lint)."""

from __future__ import annotations

import pytest

from repro.core.lint import LintReport, lint_rule
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.rule import LinkageRule
from repro.data.entity import Entity
from repro.data.source import DataSource


def compare(metric="levenshtein", threshold=1.0, source="label", target="label",
            weight=1):
    return ComparisonNode(
        metric=metric,
        threshold=threshold,
        source=PropertyNode(source),
        target=PropertyNode(target),
        weight=weight,
    )


@pytest.fixture
def sources():
    source_a = DataSource("a", [Entity("a1", {"label": "x", "date": "1999"})])
    source_b = DataSource("b", [Entity("b1", {"label": "x", "year": "1999"})])
    return source_a, source_b


class TestCleanRules:
    def test_clean_rule_passes(self, sources):
        report = lint_rule(LinkageRule(compare()), *sources)
        assert report.ok
        assert report.findings == ()
        assert report.render() == "no findings"

    def test_without_sources_property_checks_skipped(self):
        report = lint_rule(LinkageRule(compare(source="anything")))
        assert report.ok


class TestErrors:
    def test_unknown_measure(self, sources):
        report = lint_rule(LinkageRule(compare(metric="nope")), *sources)
        assert not report.ok
        assert any(f.code == "unknown-measure" for f in report.errors)

    def test_unknown_property_source_side(self, sources):
        report = lint_rule(LinkageRule(compare(source="missing")), *sources)
        codes = [f.code for f in report.errors]
        assert "unknown-property" in codes
        assert "source" in report.errors[0].message

    def test_unknown_property_target_side(self, sources):
        report = lint_rule(LinkageRule(compare(target="date")), *sources)
        # 'date' exists in source A but not in B.
        assert any(f.code == "unknown-property" for f in report.errors)

    def test_unknown_transformation(self, sources):
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode("frobnicate", (PropertyNode("label"),)),
                target=PropertyNode("label"),
            )
        )
        report = lint_rule(rule, *sources)
        assert any(f.code == "unknown-transformation" for f in report.errors)

    def test_bad_arity(self, sources):
        rule = LinkageRule(
            ComparisonNode(
                metric="levenshtein",
                threshold=1.0,
                source=TransformationNode(
                    "concatenate", (PropertyNode("label"),)
                ),
                target=PropertyNode("label"),
            )
        )
        report = lint_rule(rule, *sources)
        assert any(f.code == "bad-arity" for f in report.errors)


class TestWarnings:
    def test_threshold_out_of_range(self, sources):
        report = lint_rule(
            LinkageRule(compare(metric="levenshtein", threshold=5000.0)), *sources
        )
        assert report.ok  # warnings only
        assert any(f.code == "threshold-out-of-range" for f in report.warnings)

    def test_zero_threshold_on_continuous_measure(self, sources):
        report = lint_rule(
            LinkageRule(compare(metric="numeric", threshold=0.0)), *sources
        )
        assert any(f.code == "zero-threshold" for f in report.warnings)

    def test_zero_threshold_on_equality_is_fine(self, sources):
        report = lint_rule(
            LinkageRule(compare(metric="equality", threshold=0.0)), *sources
        )
        assert not any(f.code == "zero-threshold" for f in report.warnings)

    def test_duplicate_comparison(self, sources):
        rule = LinkageRule(
            AggregationNode(function="min", operators=(compare(), compare()))
        )
        report = lint_rule(rule, *sources)
        assert any(f.code == "duplicate-comparison" for f in report.warnings)

    def test_constant_wmean_weight(self, sources):
        rule = LinkageRule(
            AggregationNode(
                function="wmean",
                operators=(
                    compare(weight=5),
                    compare(metric="jaccard", threshold=0.4, weight=5),
                ),
            )
        )
        report = lint_rule(rule, *sources)
        assert any(f.code == "constant-wmean-weight" for f in report.warnings)

    def test_weight_one_everywhere_not_flagged(self, sources):
        rule = LinkageRule(
            AggregationNode(
                function="wmean",
                operators=(compare(), compare(metric="jaccard", threshold=0.4)),
            )
        )
        report = lint_rule(rule, *sources)
        assert not any(
            f.code == "constant-wmean-weight" for f in report.warnings
        )


class TestReport:
    def test_render_lists_findings(self, sources):
        report = lint_rule(LinkageRule(compare(metric="nope")), *sources)
        assert "unknown-measure" in report.render()

    def test_errors_and_warnings_partition(self, sources):
        rule = LinkageRule(
            AggregationNode(
                function="min",
                operators=(compare(metric="nope"), compare(threshold=9000.0)),
            )
        )
        report = lint_rule(rule, *sources)
        assert set(report.errors) | set(report.warnings) == set(report.findings)
        assert not set(report.errors) & set(report.warnings)

    def test_lints_nested_aggregations(self, sources):
        inner = AggregationNode(
            function="max", operators=(compare(metric="alsoNope"),)
        )
        rule = LinkageRule(
            AggregationNode(function="min", operators=(inner, compare()))
        )
        report = lint_rule(rule, *sources)
        assert any(f.code == "unknown-measure" for f in report.errors)

    def test_learned_rules_lint_clean(self, sources):
        """GenLink never produces rules that lint with errors."""
        from repro.core.genlink import GenLink, GenLinkConfig
        from repro.data.reference_links import ReferenceLinkSet

        source_a = DataSource(
            "a",
            [Entity(f"a{i}", {"label": f"Item {i}"}) for i in range(6)],
        )
        source_b = DataSource(
            "b",
            [Entity(f"b{i}", {"label": f"ITEM {i}"}) for i in range(6)],
        )
        links = ReferenceLinkSet(
            positive=[(f"a{i}", f"b{i}") for i in range(4)],
            negative=[(f"a{i}", f"b{(i + 2) % 4}") for i in range(4)],
        )
        result = GenLink(GenLinkConfig(population_size=20, max_iterations=3)).learn(
            source_a, source_b, links, rng=5
        )
        report = lint_rule(result.best_rule, source_a, source_b)
        assert report.ok, report.render()
