"""Tests for the date distance."""

import datetime

from repro.distances.base import INFINITE_DISTANCE
from repro.distances.dates import DateDistance, parse_date


class TestParseDate:
    def test_iso(self):
        assert parse_date("1994-05-20") == datetime.date(1994, 5, 20)

    def test_slash(self):
        assert parse_date("1994/05/20") == datetime.date(1994, 5, 20)

    def test_german_dotted(self):
        assert parse_date("20.05.1994") == datetime.date(1994, 5, 20)

    def test_long_month_name(self):
        assert parse_date("May 20, 1994") == datetime.date(1994, 5, 20)

    def test_bare_year_resolves_to_january_first(self):
        assert parse_date("1994") == datetime.date(1994, 1, 1)

    def test_whitespace_tolerated(self):
        assert parse_date("  1994  ") == datetime.date(1994, 1, 1)

    def test_garbage(self):
        assert parse_date("not a date") is None

    def test_year_zero_rejected(self):
        assert parse_date("0000") is None


class TestDateDistance:
    def test_same_date_zero(self):
        assert DateDistance().evaluate(("1994-05-20",), ("20.05.1994",)) == 0.0

    def test_days_difference(self):
        assert DateDistance().evaluate(("1994-05-20",), ("1994-05-25",)) == 5.0

    def test_year_vs_full_date(self):
        # 1994 -> Jan 1; May 20 is 139 days later.
        assert DateDistance().evaluate(("1994",), ("1994-05-20",)) == 139.0

    def test_unparseable_infinite(self):
        assert DateDistance().evaluate(("soon",), ("1994",)) == INFINITE_DISTANCE

    def test_min_over_sets(self):
        distance = DateDistance().evaluate(
            ("1990-01-01", "1994-05-20"), ("1994-05-21",)
        )
        assert distance == 1.0
