"""Tests for the specialised crossover operators (Section 5.3)."""

import random

import pytest

from repro.core.compatible import CompatibleProperty
from repro.core.crossover import (
    AggregationCrossover,
    FunctionCrossover,
    OperatorsCrossover,
    SubtreeCrossover,
    ThresholdCrossover,
    TransformationCrossover,
    WeightCrossover,
    default_crossover_operators,
)
from repro.core.generation import RandomRuleGenerator
from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    TransformationNode,
)
from repro.core.representation import FULL, LINEAR
from repro.core.rule import LinkageRule, validate_tree


@pytest.fixture
def generator(rng) -> RandomRuleGenerator:
    return RandomRuleGenerator(
        [
            CompatibleProperty("label", "name", "levenshtein"),
            CompatibleProperty("point", "coord", "geographic"),
        ],
        rng,
    )


def _rule_one() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "min",
            (
                ComparisonNode(
                    "levenshtein",
                    2.0,
                    TransformationNode("lowerCase", (PropertyNode("label"),)),
                    PropertyNode("name"),
                    weight=2,
                ),
                ComparisonNode(
                    "geographic", 1000.0, PropertyNode("point"), PropertyNode("coord")
                ),
            ),
        )
    )


def _rule_two() -> LinkageRule:
    return LinkageRule(
        AggregationNode(
            "wmean",
            (
                ComparisonNode(
                    "jaccard",
                    0.6,
                    TransformationNode(
                        "tokenize",
                        (TransformationNode("stem", (PropertyNode("label"),)),),
                    ),
                    TransformationNode("tokenize", (PropertyNode("name"),)),
                    weight=6,
                ),
                ComparisonNode(
                    "date", 100.0, PropertyNode("date"), PropertyNode("released"),
                    weight=4,
                ),
            ),
        )
    )


def _apply_many(operator, rule1, rule2, generator, rng, n=40):
    children = []
    for _ in range(n):
        children.append(operator.apply(rule1, rule2, rng, generator, FULL))
    return children


class TestAllOperators:
    def test_offspring_always_valid(self, rng, generator):
        for operator in default_crossover_operators() + [SubtreeCrossover()]:
            for child in _apply_many(operator, _rule_one(), _rule_two(), generator, rng):
                validate_tree(child.root, expect_similarity=True)

    def test_parents_untouched(self, rng, generator):
        rule1, rule2 = _rule_one(), _rule_two()
        snapshot1, snapshot2 = rule1.root, rule2.root
        for operator in default_crossover_operators():
            operator.apply(rule1, rule2, rng, generator, FULL)
        assert rule1.root == snapshot1
        assert rule2.root == snapshot2

    def test_six_default_operators(self):
        names = [op.name for op in default_crossover_operators()]
        assert names == [
            "function", "operators", "aggregation",
            "transformation", "threshold", "weight",
        ]


class TestFunctionCrossover:
    def test_swaps_a_function_from_second_parent(self, rng, generator):
        functions_before = {"min", "levenshtein", "geographic", "lowerCase"}
        donor_functions = {"wmean", "jaccard", "date", "tokenize", "stem"}
        found_donor_function = False
        for child in _apply_many(
            FunctionCrossover(), _rule_one(), _rule_two(), generator, rng
        ):
            child_functions = {a.function for a in child.aggregations()}
            child_functions |= {c.metric for c in child.comparisons()}
            child_functions |= {t.function for t in child.transformations()}
            if child_functions & donor_functions:
                found_donor_function = True
                break
        assert found_donor_function

    def test_metric_swap_resamples_threshold(self, rng, generator):
        # Swapping levenshtein -> geographic must move the threshold
        # into the geographic range.
        for child in _apply_many(
            FunctionCrossover(), _rule_one(), _rule_two(), generator, rng, n=100
        ):
            for comparison in child.comparisons():
                if comparison.metric == "jaccard":
                    assert comparison.threshold <= 1.0

    def test_structure_preserved(self, rng, generator):
        child = FunctionCrossover().apply(
            _rule_one(), _rule_two(), rng, generator, FULL
        )
        assert len(child.comparisons()) == 2


class TestOperatorsCrossover:
    def test_pools_comparisons_from_both_parents(self, rng, generator):
        all_metrics = set()
        for child in _apply_many(
            OperatorsCrossover(), _rule_one(), _rule_two(), generator, rng
        ):
            all_metrics |= {c.metric for c in child.comparisons()}
        assert "levenshtein" in all_metrics or "geographic" in all_metrics
        assert "jaccard" in all_metrics or "date" in all_metrics

    def test_never_produces_empty_aggregation(self, rng, generator):
        for child in _apply_many(
            OperatorsCrossover(), _rule_one(), _rule_two(), generator, rng
        ):
            for aggregation in child.aggregations():
                assert aggregation.operators

    def test_bare_comparison_parent_handled(self, rng, generator):
        bare = LinkageRule(
            ComparisonNode("equality", 0.5, PropertyNode("x"), PropertyNode("y"))
        )
        for child in _apply_many(
            OperatorsCrossover(), bare, _rule_two(), generator, rng, n=20
        ):
            validate_tree(child.root, expect_similarity=True)


class TestAggregationCrossover:
    def test_can_grow_hierarchy(self, rng, generator):
        grew = False
        for child in _apply_many(
            AggregationCrossover(), _rule_one(), _rule_two(), generator, rng, n=100
        ):
            if child.depth() > _rule_one().depth():
                grew = True
                break
        assert grew

    def test_can_replace_root(self, rng, generator):
        replaced = False
        for child in _apply_many(
            AggregationCrossover(), _rule_one(), _rule_two(), generator, rng, n=100
        ):
            if isinstance(child.root, AggregationNode) and (
                child.root.function == "wmean"
            ):
                replaced = True
                break
        assert replaced


class TestTransformationCrossover:
    def test_grafts_onto_transformation_free_rule(self, rng, generator):
        bare = LinkageRule(
            ComparisonNode("levenshtein", 1.0, PropertyNode("a"), PropertyNode("b"))
        )
        grafted = False
        for child in _apply_many(
            TransformationCrossover(), bare, _rule_two(), generator, rng, n=50
        ):
            if child.transformations():
                grafted = True
        assert grafted

    def test_noop_when_neither_parent_has_transformations(self, rng, generator):
        bare = LinkageRule(
            ComparisonNode("levenshtein", 1.0, PropertyNode("a"), PropertyNode("b"))
        )
        child = TransformationCrossover().apply(bare, bare, rng, generator, FULL)
        assert child.root == bare.root

    def test_deduplicates_chains(self, rng, generator):
        # lowerCase(lowerCase(x)) collapses to lowerCase(x).
        doubled = LinkageRule(
            ComparisonNode(
                "levenshtein",
                1.0,
                TransformationNode(
                    "lowerCase",
                    (TransformationNode("lowerCase", (PropertyNode("a"),)),),
                ),
                PropertyNode("b"),
            )
        )
        for child in _apply_many(
            TransformationCrossover(), doubled, _rule_two(), generator, rng, n=30
        ):
            for transformation in child.transformations():
                for node in transformation.inputs:
                    if isinstance(node, TransformationNode):
                        assert not (
                            node.function == transformation.function
                            and node.params == transformation.params
                        )

    def test_can_build_longer_chains(self, rng, generator):
        lengthened = False
        for child in _apply_many(
            TransformationCrossover(), _rule_one(), _rule_two(), generator, rng, n=100
        ):
            if len(child.transformations()) > len(_rule_one().transformations()):
                lengthened = True
                break
        assert lengthened


class TestThresholdCrossover:
    def test_averages_same_metric_thresholds(self, rng, generator):
        rule1 = LinkageRule(
            ComparisonNode("levenshtein", 2.0, PropertyNode("a"), PropertyNode("b"))
        )
        rule2 = LinkageRule(
            ComparisonNode("levenshtein", 4.0, PropertyNode("a"), PropertyNode("b"))
        )
        child = ThresholdCrossover().apply(rule1, rule2, rng, generator, FULL)
        assert child.comparisons()[0].threshold == pytest.approx(3.0)

    def test_prefers_same_metric_donor(self, rng, generator):
        rule1 = LinkageRule(
            ComparisonNode("levenshtein", 2.0, PropertyNode("a"), PropertyNode("b"))
        )
        rule2 = LinkageRule(
            AggregationNode(
                "min",
                (
                    ComparisonNode(
                        "levenshtein", 4.0, PropertyNode("a"), PropertyNode("b")
                    ),
                    ComparisonNode(
                        "geographic", 9000.0, PropertyNode("p"), PropertyNode("c")
                    ),
                ),
            )
        )
        for _ in range(20):
            child = ThresholdCrossover().apply(rule1, rule2, rng, generator, FULL)
            assert child.comparisons()[0].threshold == pytest.approx(3.0)


class TestWeightCrossover:
    def test_averages_weights(self, rng, generator):
        rule1 = LinkageRule(
            ComparisonNode(
                "levenshtein", 1.0, PropertyNode("a"), PropertyNode("b"), weight=2
            )
        )
        rule2 = LinkageRule(
            ComparisonNode(
                "levenshtein", 1.0, PropertyNode("a"), PropertyNode("b"), weight=8
            )
        )
        child = WeightCrossover().apply(rule1, rule2, rng, generator, FULL)
        assert child.comparisons()[0].weight == 5

    def test_weight_stays_positive(self, rng, generator):
        rule = LinkageRule(
            ComparisonNode(
                "levenshtein", 1.0, PropertyNode("a"), PropertyNode("b"), weight=1
            )
        )
        child = WeightCrossover().apply(rule, rule, rng, generator, FULL)
        assert child.comparisons()[0].weight >= 1


class TestSubtreeCrossover:
    def test_type_correct_offspring(self, rng, generator):
        for child in _apply_many(
            SubtreeCrossover(), _rule_one(), _rule_two(), generator, rng, n=100
        ):
            validate_tree(child.root, expect_similarity=True)


class TestRepresentationRepair:
    def test_linear_offspring_stay_linear(self, rng, generator):
        for operator in default_crossover_operators():
            for _ in range(20):
                child = operator.apply(_rule_one(), _rule_two(), rng, generator, LINEAR)
                assert LINEAR.allows(child.root), (
                    f"{operator.name} produced a non-linear offspring"
                )
