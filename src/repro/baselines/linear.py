"""A from-scratch linear classifier over similarity features.

Stand-in for the SVM-based MARLIN system (Bilenko & Mooney) referenced
in Section 4: a regularised logistic regression trained by batch
gradient descent on the same pre-computed similarity feature matrix the
Carvalho baseline uses. Like every linear classifier over similarity
features — and unlike GenLink — it cannot express data transformations
or non-linear aggregation hierarchies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.baselines.carvalho import SimilarityFeatures
from repro.core.fitness import confusion_counts
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource
from repro.core.compatible import find_compatible_properties


@dataclass
class LinearConfig:
    learning_rate: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    max_seeding_links: int = 100
    max_attribute_pairs: int = 12


class LinearClassifier:
    """Logistic regression on similarity features."""

    def __init__(self, config: LinearConfig | None = None):
        self.config = config if config is not None else LinearConfig()
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self.attribute_pairs: list[tuple[str, str]] = []

    def fit_matrix(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        """Train on a pre-built feature matrix."""
        config = self.config
        n, d = matrix.shape
        weights = np.zeros(d)
        bias = 0.0
        y = labels.astype(np.float64)
        for _ in range(config.epochs):
            logits = matrix @ weights + bias
            probabilities = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            error = probabilities - y
            gradient_w = matrix.T @ error / n + config.l2 * weights
            gradient_b = float(error.mean())
            weights -= config.learning_rate * gradient_w
            bias -= config.learning_rate * gradient_b
        self.weights = weights
        self.bias = bias

    def learn(
        self,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        rng: random.Random | int | None = None,
    ) -> float:
        """Derive attribute pairs, train, return the training F1."""
        rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        compatible = find_compatible_properties(
            source_a,
            source_b,
            train_links.positive,
            max_links=self.config.max_seeding_links,
            rng=rng,
        )
        pairs_seen: list[tuple[str, str]] = []
        for pair in compatible:
            key = (pair.source_property, pair.target_property)
            if key not in pairs_seen:
                pairs_seen.append(key)
        self.attribute_pairs = pairs_seen[: self.config.max_attribute_pairs]
        if not self.attribute_pairs:
            raise ValueError("no compatible attribute pairs found")
        entity_pairs, labels = train_links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(self.attribute_pairs, entity_pairs)
        label_array = np.asarray(labels, dtype=bool)
        self.fit_matrix(features.matrix, label_array)
        return self.f_measure(source_a, source_b, train_links)

    def predict_matrix(self, matrix: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("classifier is not trained")
        logits = matrix @ self.weights + self.bias
        return logits >= 0.0

    def f_measure(
        self,
        source_a: DataSource,
        source_b: DataSource,
        links: ReferenceLinkSet,
    ) -> float:
        entity_pairs, labels = links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(self.attribute_pairs, entity_pairs)
        predictions = self.predict_matrix(features.matrix)
        return confusion_counts(
            predictions, np.asarray(labels, dtype=bool)
        ).f_measure()
