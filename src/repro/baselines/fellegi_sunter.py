"""A Fellegi-Sunter / Naive Bayes matcher over similarity features.

Section 4 traces record linkage back to the Fellegi-Sunter statistical
model [15] and its Naive Bayes descendants [32]. This baseline
implements that model from scratch:

* each similarity feature is binarised into an agree/disagree
  indicator,
* per-indicator match probabilities ``m = P(agree | match)`` and
  non-match probabilities ``u = P(agree | non-match)`` are estimated
  from the labelled reference links with Laplace smoothing,
* a pair's score is the log-likelihood ratio ``sum(log(m/u))`` over
  agreeing indicators plus ``sum(log((1-m)/(1-u)))`` over disagreeing
  ones,
* the decision threshold is chosen on the training scores to maximise
  F1 (the paper's single-threshold reading: no "possible match" band).

Like every classifier over fixed similarity features — the paper's
point in Section 4 — it cannot express data transformations.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import numpy as np

from repro.baselines.carvalho import SimilarityFeatures
from repro.core.compatible import find_compatible_properties
from repro.core.fitness import confusion_counts
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


@dataclass
class FellegiSunterConfig:
    """Model parameters."""

    #: Similarity level at which a feature counts as an agreement.
    agreement_threshold: float = 0.5
    #: Laplace smoothing pseudo-count for the m/u estimates.
    smoothing: float = 1.0
    max_seeding_links: int = 100
    max_attribute_pairs: int = 12


class FellegiSunterClassifier:
    """Naive Bayes record linkage (Fellegi-Sunter model)."""

    def __init__(self, config: FellegiSunterConfig | None = None):
        self.config = config if config is not None else FellegiSunterConfig()
        self.log_agree: np.ndarray | None = None
        self.log_disagree: np.ndarray | None = None
        self.decision_threshold: float = 0.0
        self.attribute_pairs: list[tuple[str, str]] = []
        self.feature_names: list[str] = []

    # -- training -------------------------------------------------------------
    def fit_matrix(self, matrix: np.ndarray, labels: np.ndarray) -> None:
        """Estimate m/u probabilities and pick the decision threshold."""
        labels = np.asarray(labels, dtype=bool)
        if matrix.shape[0] != len(labels):
            raise ValueError(
                f"matrix rows {matrix.shape[0]} != label count {len(labels)}"
            )
        if not labels.any() or labels.all():
            raise ValueError(
                "training data must contain both matches and non-matches"
            )
        agreements = matrix >= self.config.agreement_threshold
        smoothing = self.config.smoothing
        matches = labels.sum()
        non_matches = len(labels) - matches

        m = (agreements[labels].sum(axis=0) + smoothing) / (matches + 2 * smoothing)
        u = (agreements[~labels].sum(axis=0) + smoothing) / (
            non_matches + 2 * smoothing
        )
        self.log_agree = np.log(m) - np.log(u)
        self.log_disagree = np.log(1.0 - m) - np.log(1.0 - u)

        scores = self._scores_from_agreements(agreements)
        self.decision_threshold = self._best_threshold(scores, labels)

    def _scores_from_agreements(self, agreements: np.ndarray) -> np.ndarray:
        assert self.log_agree is not None and self.log_disagree is not None
        return agreements @ self.log_agree + (~agreements) @ self.log_disagree

    @staticmethod
    def _best_threshold(scores: np.ndarray, labels: np.ndarray) -> float:
        """Midpoint cut over sorted training scores with the best F1."""
        order = np.argsort(scores, kind="stable")
        sorted_scores = scores[order]
        best_threshold = 0.0
        best_f1 = -1.0
        candidates = [sorted_scores[0] - 1.0]
        candidates.extend(
            (sorted_scores[i] + sorted_scores[i + 1]) / 2.0
            for i in range(len(sorted_scores) - 1)
        )
        for threshold in candidates:
            predictions = scores >= threshold
            f1 = confusion_counts(predictions, labels).f_measure()
            if f1 > best_f1:
                best_f1 = f1
                best_threshold = float(threshold)
        return best_threshold

    def learn(
        self,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        rng: random.Random | int | None = None,
    ) -> float:
        """Derive attribute pairs, fit the model, return training F1."""
        rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        compatible = find_compatible_properties(
            source_a,
            source_b,
            train_links.positive,
            max_links=self.config.max_seeding_links,
            rng=rng,
        )
        pairs_seen: list[tuple[str, str]] = []
        for pair in compatible:
            key = (pair.source_property, pair.target_property)
            if key not in pairs_seen:
                pairs_seen.append(key)
        self.attribute_pairs = pairs_seen[: self.config.max_attribute_pairs]
        if not self.attribute_pairs:
            raise ValueError("no compatible attribute pairs found")
        entity_pairs, labels = train_links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(self.attribute_pairs, entity_pairs)
        self.feature_names = features.names
        self.fit_matrix(features.matrix, np.asarray(labels, dtype=bool))
        return self.f_measure(source_a, source_b, train_links)

    # -- prediction -----------------------------------------------------------
    def score_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Log-likelihood-ratio scores for a feature matrix."""
        if self.log_agree is None:
            raise RuntimeError("classifier is not trained")
        agreements = matrix >= self.config.agreement_threshold
        return self._scores_from_agreements(agreements)

    def predict_matrix(self, matrix: np.ndarray) -> np.ndarray:
        return self.score_matrix(matrix) >= self.decision_threshold

    def f_measure(
        self,
        source_a: DataSource,
        source_b: DataSource,
        links: ReferenceLinkSet,
    ) -> float:
        entity_pairs, labels = links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(self.attribute_pairs, entity_pairs)
        predictions = self.predict_matrix(features.matrix)
        return confusion_counts(
            predictions, np.asarray(labels, dtype=bool)
        ).f_measure()

    # -- explanations ----------------------------------------------------------
    def weight_table(self) -> str:
        """Per-indicator agreement/disagreement log-weights."""
        if self.log_agree is None or self.log_disagree is None:
            raise RuntimeError("classifier is not trained")
        names = self.feature_names or [
            f"f{i}" for i in range(len(self.log_agree))
        ]
        width = max(len(name) for name in names)
        lines = [f"{'feature'.ljust(width)}  agree    disagree"]
        for name, agree, disagree in zip(names, self.log_agree, self.log_disagree):
            lines.append(f"{name.ljust(width)}  {agree:+.3f}   {disagree:+.3f}")
        lines.append(f"decision threshold: {self.decision_threshold:+.3f}")
        return "\n".join(lines)


def log_likelihood_ratio(m: float, u: float) -> tuple[float, float]:
    """The classic Fellegi-Sunter agreement/disagreement weights for
    one indicator with match probability ``m`` and chance-agreement
    probability ``u``.

    The naive ``log(m/u)`` / ``log((1-m)/(1-u))`` loses the weights'
    signs for nearly-equal probabilities: the ratio (or the ``1 - x``
    complements) rounds to exactly 1.0 and the weight collapses to 0.
    Rewritten as ``log1p`` of the relative difference, the sign of
    ``m - u`` survives exactly — float subtraction of nearby values is
    exact (Sterbenz) and ``log1p`` preserves the sign of arbitrarily
    small arguments — so the weight ordering always follows the m-vs-u
    ordering.
    """
    if not (0.0 < m < 1.0 and 0.0 < u < 1.0):
        raise ValueError("m and u must lie strictly between 0 and 1")
    agree = math.log1p((m - u) / u)
    disagree = math.log1p((u - m) / (1.0 - u))
    return agree, disagree
