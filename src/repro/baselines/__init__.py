"""Baseline learners the paper compares against (Section 4).

* :mod:`repro.baselines.carvalho` — the state-of-the-art GP approach of
  de Carvalho et al. (TKDE 24(3), 2012), re-implemented from its
  description: arithmetic function trees over pre-supplied
  <attribute, similarity function> pairs.
* :mod:`repro.baselines.linear` — a from-scratch logistic/linear
  classifier over similarity features, standing in for the SVM-based
  MARLIN system referenced in Section 4.
* :mod:`repro.baselines.decision_tree` — CART-style induction of
  threshold-based boolean classifiers (Definition 10), standing in for
  Active Atlas / TAILOR.
* :mod:`repro.baselines.fellegi_sunter` — the Fellegi-Sunter / Naive
  Bayes statistical model [15, 32].
"""

from repro.baselines.carvalho import (
    CarvalhoConfig,
    CarvalhoGP,
    CarvalhoResult,
    SimilarityFeatures,
)
from repro.baselines.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeConfig,
    TreeNode,
)
from repro.baselines.fellegi_sunter import (
    FellegiSunterClassifier,
    FellegiSunterConfig,
    log_likelihood_ratio,
)
from repro.baselines.linear import LinearClassifier, LinearConfig

__all__ = [
    "CarvalhoConfig",
    "CarvalhoGP",
    "CarvalhoResult",
    "SimilarityFeatures",
    "DecisionTreeClassifier",
    "DecisionTreeConfig",
    "TreeNode",
    "FellegiSunterClassifier",
    "FellegiSunterConfig",
    "log_likelihood_ratio",
    "LinearClassifier",
    "LinearConfig",
]
