"""The GP baseline of de Carvalho et al. (TKDE 24(3):399-412, 2012).

Their approach — the state of the art GenLink is compared against in
Section 6.2 — evolves arithmetic *function trees* that combine a set of
pre-supplied ``<attribute, similarity function>`` pairs (e.g.
``<name, Jaro>``) using the operators ``+ - * /`` and numeric
constants. The paper notes two structural limitations which this
implementation shares deliberately: no data transformations, and
rules that do not map onto a human-readable linkage rule model.

Record pairs are classified as replicas when the evolved expression's
value reaches the decision threshold (0.5, matching Definition 3 of the
host paper; the evolved constants make the classifier invariant to this
choice). Fitness is the training F-measure, as in the original work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.compatible import CompatibleProperty, find_compatible_properties
from repro.core.fitness import confusion_counts
from repro.data.entity import Entity
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource
from repro.distances.jaccard import jaccard_distance
from repro.distances.jaro import jaro_similarity, jaro_winkler_similarity
from repro.distances.levenshtein import normalized_levenshtein

#: The pre-supplied similarity functions applied to every compatible
#: attribute pair: (name, value-set similarity in [0, 1]).
SIMILARITY_FUNCTIONS: list[tuple[str, Callable]] = []


def _lift(pair_similarity: Callable[[str, str], float]) -> Callable:
    """Lift a pairwise similarity to value sets (max over pairs)."""

    def lifted(values_a: Sequence[str], values_b: Sequence[str]) -> float:
        if not values_a or not values_b:
            return 0.0
        return max(
            pair_similarity(a, b) for a in values_a[:8] for b in values_b[:8]
        )

    return lifted


def _jaccard_similarity(values_a: Sequence[str], values_b: Sequence[str]) -> float:
    # Tokens are compared verbatim: the Carvalho approach applies fixed
    # similarity functions to the attribute values as-is — it "cannot
    # express data transformations" (Section 4), so no case folding or
    # other normalisation happens here.
    tokens_a = [t for v in values_a for t in v.split()]
    tokens_b = [t for v in values_b for t in v.split()]
    if not tokens_a or not tokens_b:
        return 0.0
    return 1.0 - jaccard_distance(tokens_a, tokens_b)


def _exact(values_a: Sequence[str], values_b: Sequence[str]) -> float:
    return 1.0 if set(values_a) & set(values_b) else 0.0


SIMILARITY_FUNCTIONS.extend(
    [
        ("jaro", _lift(jaro_similarity)),
        ("jaroWinkler", _lift(jaro_winkler_similarity)),
        ("levenshteinSim", _lift(lambda a, b: 1.0 - normalized_levenshtein(a, b))),
        ("jaccardTokens", _jaccard_similarity),
        ("exact", _exact),
    ]
)


class SimilarityFeatures:
    """The pre-computed feature matrix: one similarity column per
    <attribute pair, similarity function> combination."""

    def __init__(
        self,
        attribute_pairs: Sequence[tuple[str, str]],
        pairs: Sequence[tuple[Entity, Entity]],
    ):
        if not attribute_pairs:
            raise ValueError("need at least one attribute pair")
        self.names: list[str] = []
        columns: list[np.ndarray] = []
        for prop_a, prop_b in attribute_pairs:
            for fn_name, fn in SIMILARITY_FUNCTIONS:
                column = np.fromiter(
                    (
                        fn(entity_a.values(prop_a), entity_b.values(prop_b))
                        for entity_a, entity_b in pairs
                    ),
                    dtype=np.float64,
                    count=len(pairs),
                )
                self.names.append(f"{fn_name}({prop_a},{prop_b})")
                columns.append(column)
        self.matrix = np.column_stack(columns) if columns else np.zeros((0, 0))

    @property
    def feature_count(self) -> int:
        return self.matrix.shape[1]

    def __len__(self) -> int:
        return self.matrix.shape[0]


# -- expression trees ---------------------------------------------------------
@dataclass(frozen=True)
class FeatureRef:
    index: int

    def evaluate(self, features: SimilarityFeatures) -> np.ndarray:
        return features.matrix[:, self.index]

    def size(self) -> int:
        return 1

    def render(self, names: Sequence[str]) -> str:
        return names[self.index]


@dataclass(frozen=True)
class Constant:
    value: float

    def evaluate(self, features: SimilarityFeatures) -> np.ndarray:
        return np.full(len(features), self.value)

    def size(self) -> int:
        return 1

    def render(self, names: Sequence[str]) -> str:
        return f"{self.value:g}"


_OPERATIONS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
}


def _protected_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """x / y with division by (near) zero yielding 1, the classic
    protected division of GP systems."""
    out = np.ones_like(a)
    np.divide(a, b, out=out, where=np.abs(b) > 1e-9)
    return out


@dataclass(frozen=True)
class BinaryOp:
    op: str
    left: "ExprNode"
    right: "ExprNode"

    def evaluate(self, features: SimilarityFeatures) -> np.ndarray:
        left = self.left.evaluate(features)
        right = self.right.evaluate(features)
        if self.op == "/":
            return _protected_divide(left, right)
        return _OPERATIONS[self.op](left, right)

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()

    def render(self, names: Sequence[str]) -> str:
        return f"({self.left.render(names)} {self.op} {self.right.render(names)})"


ExprNode = FeatureRef | Constant | BinaryOp

_OPERATORS = ("+", "-", "*", "/")


@dataclass
class CarvalhoConfig:
    """GP parameters following the published description."""

    population_size: int = 100
    max_generations: int = 30
    tournament_size: int = 5
    crossover_probability: float = 0.8
    mutation_probability: float = 0.2
    max_depth: int = 6
    elitism: int = 1
    decision_threshold: float = 0.5
    max_seeding_links: int = 100


@dataclass
class CarvalhoResult:
    best_tree: ExprNode
    features: SimilarityFeatures
    train_f_measure: float
    history: list[float] = field(default_factory=list)

    def predictions(
        self, features: SimilarityFeatures, threshold: float = 0.5
    ) -> np.ndarray:
        return self.best_tree.evaluate(features) >= threshold

    def render(self) -> str:
        return self.best_tree.render(self.features.names)


class CarvalhoGP:
    """Arithmetic-tree GP over pre-supplied similarity features."""

    def __init__(self, config: CarvalhoConfig | None = None):
        self.config = config if config is not None else CarvalhoConfig()

    # -- tree generation -------------------------------------------------------
    def _random_leaf(self, rng: random.Random, feature_count: int) -> ExprNode:
        if rng.random() < 0.75:
            return FeatureRef(rng.randrange(feature_count))
        return Constant(round(rng.uniform(0.0, 2.0), 3))

    def _random_tree(
        self, rng: random.Random, feature_count: int, depth: int
    ) -> ExprNode:
        if depth <= 1 or rng.random() < 0.3:
            return self._random_leaf(rng, feature_count)
        return BinaryOp(
            op=rng.choice(_OPERATORS),
            left=self._random_tree(rng, feature_count, depth - 1),
            right=self._random_tree(rng, feature_count, depth - 1),
        )

    # -- genetic operators -------------------------------------------------------
    def _nodes(self, tree: ExprNode) -> list[ExprNode]:
        if isinstance(tree, BinaryOp):
            return [tree] + self._nodes(tree.left) + self._nodes(tree.right)
        return [tree]

    def _replace(self, tree: ExprNode, old: ExprNode, new: ExprNode) -> ExprNode:
        if tree is old:
            return new
        if isinstance(tree, BinaryOp):
            left = self._replace(tree.left, old, new)
            if left is not tree.left:
                return BinaryOp(tree.op, left, tree.right)
            right = self._replace(tree.right, old, new)
            if right is not tree.right:
                return BinaryOp(tree.op, tree.left, right)
        return tree

    def _crossover(
        self, tree1: ExprNode, tree2: ExprNode, rng: random.Random
    ) -> ExprNode:
        target = rng.choice(self._nodes(tree1))
        donor = rng.choice(self._nodes(tree2))
        return self._replace(tree1, target, donor)

    def _mutate(
        self, tree: ExprNode, rng: random.Random, feature_count: int
    ) -> ExprNode:
        target = rng.choice(self._nodes(tree))
        replacement = self._random_tree(rng, feature_count, depth=rng.randint(1, 3))
        return self._replace(tree, target, replacement)

    # -- learning ----------------------------------------------------------------
    def attribute_pairs(
        self,
        source_a: DataSource,
        source_b: DataSource,
        links: ReferenceLinkSet,
        rng: random.Random,
    ) -> list[tuple[str, str]]:
        """The pre-supplied attribute pairs. Carvalho et al. supply
        these manually per dataset; we derive them with the same
        compatible-property analysis GenLink uses, which is strictly
        more information than their manual configuration."""
        compatible = find_compatible_properties(
            source_a,
            source_b,
            links.positive,
            max_links=self.config.max_seeding_links,
            rng=rng,
        )
        seen: list[tuple[str, str]] = []
        for pair in compatible:
            key = (pair.source_property, pair.target_property)
            if key not in seen:
                seen.append(key)
        return seen[:12]

    def learn(
        self,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        rng: random.Random | int | None = None,
    ) -> CarvalhoResult:
        rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        config = self.config
        attribute_pairs = self.attribute_pairs(source_a, source_b, train_links, rng)
        if not attribute_pairs:
            raise ValueError("no compatible attribute pairs found")
        pairs, labels = train_links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(attribute_pairs, pairs)
        label_array = np.asarray(labels, dtype=bool)

        fitness_cache: dict[int, float] = {}

        def fitness(tree: ExprNode) -> float:
            key = id(tree)
            cached = fitness_cache.get(key)
            if cached is None:
                predictions = tree.evaluate(features) >= config.decision_threshold
                cached = confusion_counts(predictions, label_array).f_measure()
                fitness_cache[key] = cached
            return cached

        population = [
            self._random_tree(rng, features.feature_count, depth=rng.randint(2, 4))
            for _ in range(config.population_size)
        ]
        history: list[float] = []
        for _ in range(config.max_generations):
            scored = sorted(population, key=fitness, reverse=True)
            history.append(fitness(scored[0]))
            if history[-1] >= 1.0:
                break
            next_population = list(scored[: config.elitism])
            while len(next_population) < config.population_size:
                parent1 = self._tournament(population, fitness, rng)
                roll = rng.random()
                if roll < config.crossover_probability:
                    parent2 = self._tournament(population, fitness, rng)
                    child = self._crossover(parent1, parent2, rng)
                elif roll < config.crossover_probability + config.mutation_probability:
                    child = self._mutate(parent1, rng, features.feature_count)
                else:
                    child = parent1
                if child.size() > 2 ** config.max_depth:
                    child = parent1
                next_population.append(child)
            population = next_population
        best = max(population, key=fitness)
        result = CarvalhoResult(
            best_tree=best,
            features=features,
            train_f_measure=fitness(best),
            history=history,
        )
        self._attribute_pairs = attribute_pairs
        return result

    def _tournament(self, population, fitness, rng: random.Random) -> ExprNode:
        best = None
        best_fitness = float("-inf")
        for _ in range(self.config.tournament_size):
            contestant = population[rng.randrange(len(population))]
            contestant_fitness = fitness(contestant)
            if contestant_fitness > best_fitness:
                best = contestant
                best_fitness = contestant_fitness
        return best

    def evaluate(
        self,
        result: CarvalhoResult,
        source_a: DataSource,
        source_b: DataSource,
        links: ReferenceLinkSet,
        attribute_pairs: Sequence[tuple[str, str]] | None = None,
    ) -> float:
        """F-measure of a learned tree on a (validation) link set."""
        pairs, labels = links.labelled_pairs(source_a, source_b)
        feature_pairs = (
            list(attribute_pairs)
            if attribute_pairs is not None
            else getattr(self, "_attribute_pairs")
        )
        features = SimilarityFeatures(feature_pairs, pairs)
        predictions = result.best_tree.evaluate(features) >= (
            self.config.decision_threshold
        )
        return confusion_counts(predictions, np.asarray(labels, dtype=bool)).f_measure()
