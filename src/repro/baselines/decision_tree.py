"""A from-scratch decision tree over similarity features.

Section 4 of the paper notes that threshold-based boolean classifiers
(Definition 10) "are usually represented with decision trees" and cites
Active Atlas and TAILOR as systems that learn them. This module is the
corresponding baseline: CART-style greedy induction (Gini impurity) on
the same pre-computed similarity feature matrix the Carvalho and linear
baselines use.

Besides classification it supports the selling point the paper
attributes to decision trees — explanations: :meth:`render` prints the
tree and :meth:`positive_paths` extracts the root-to-leaf conjunctions
that classify a pair as a match, i.e. the learned rule in disjunctive
normal form over ``similarity >= threshold`` literals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.carvalho import SimilarityFeatures
from repro.core.compatible import find_compatible_properties
from repro.core.fitness import confusion_counts
from repro.data.reference_links import ReferenceLinkSet
from repro.data.source import DataSource


@dataclass
class DecisionTreeConfig:
    """Induction parameters."""

    max_depth: int = 4
    min_samples_split: int = 4
    min_gain: float = 1e-6
    max_seeding_links: int = 100
    max_attribute_pairs: int = 12


@dataclass(frozen=True)
class TreeNode:
    """One tree node; a leaf when ``feature`` is None.

    Split convention: pairs with ``matrix[:, feature] >= threshold`` go
    right (towards "match"), the rest go left.
    """

    prediction: bool
    positives: int
    negatives: int
    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.node_count() + self.right.node_count()

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())


def _gini(positives: int, negatives: int) -> float:
    total = positives + negatives
    if total == 0:
        return 0.0
    p = positives / total
    return 2.0 * p * (1.0 - p)


def _best_split(
    matrix: np.ndarray, labels: np.ndarray, min_gain: float
) -> tuple[int, float, float] | None:
    """The (feature, threshold, gain) with the largest Gini gain.

    Thresholds are midpoints between consecutive distinct feature
    values; the scan per feature is a single pass over the sorted
    column with running class counts.
    """
    n = len(labels)
    total_positive = int(labels.sum())
    parent_impurity = _gini(total_positive, n - total_positive)
    best: tuple[float, int, float] | None = None  # (gain, feature, threshold)

    for feature in range(matrix.shape[1]):
        order = np.argsort(matrix[:, feature], kind="stable")
        values = matrix[order, feature]
        ordered_labels = labels[order]
        left_positive = 0
        for i in range(1, n):
            left_positive += int(ordered_labels[i - 1])
            if values[i] == values[i - 1]:
                continue
            left_total = i
            right_total = n - i
            right_positive = total_positive - left_positive
            weighted = (
                left_total * _gini(left_positive, left_total - left_positive)
                + right_total * _gini(right_positive, right_total - right_positive)
            ) / n
            gain = parent_impurity - weighted
            if gain > min_gain and (best is None or gain > best[0]):
                threshold = float((values[i] + values[i - 1]) / 2.0)
                best = (gain, feature, threshold)

    if best is None:
        return None
    gain, feature, threshold = best
    return feature, threshold, gain


def _grow(
    matrix: np.ndarray,
    labels: np.ndarray,
    config: DecisionTreeConfig,
    depth: int,
) -> TreeNode:
    positives = int(labels.sum())
    negatives = len(labels) - positives
    prediction = positives >= negatives and positives > 0
    if (
        depth >= config.max_depth
        or len(labels) < config.min_samples_split
        or positives == 0
        or negatives == 0
    ):
        return TreeNode(prediction, positives, negatives)

    split = _best_split(matrix, labels, config.min_gain)
    if split is None:
        return TreeNode(prediction, positives, negatives)
    feature, threshold, __ = split
    goes_right = matrix[:, feature] >= threshold
    left = _grow(matrix[~goes_right], labels[~goes_right], config, depth + 1)
    right = _grow(matrix[goes_right], labels[goes_right], config, depth + 1)
    if left.is_leaf and right.is_leaf and left.prediction == right.prediction:
        # The split did not change any decision; collapse it.
        return TreeNode(prediction, positives, negatives)
    return TreeNode(
        prediction=prediction,
        positives=positives,
        negatives=negatives,
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
    )


class DecisionTreeClassifier:
    """CART-style matcher over similarity features (TAILOR stand-in)."""

    def __init__(self, config: DecisionTreeConfig | None = None):
        self.config = config if config is not None else DecisionTreeConfig()
        self.root: TreeNode | None = None
        self.feature_names: list[str] = []
        self.attribute_pairs: list[tuple[str, str]] = []

    # -- training -------------------------------------------------------------
    def fit_matrix(
        self,
        matrix: np.ndarray,
        labels: np.ndarray,
        feature_names: Sequence[str] | None = None,
    ) -> None:
        """Induce the tree from a pre-built feature matrix."""
        labels = np.asarray(labels, dtype=bool)
        if matrix.shape[0] != len(labels):
            raise ValueError(
                f"matrix rows {matrix.shape[0]} != label count {len(labels)}"
            )
        if matrix.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty training set")
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"f{i}" for i in range(matrix.shape[1])]
        )
        self.root = _grow(matrix, labels, self.config, depth=0)

    def learn(
        self,
        source_a: DataSource,
        source_b: DataSource,
        train_links: ReferenceLinkSet,
        rng: random.Random | int | None = None,
    ) -> float:
        """Derive attribute pairs, induce the tree, return training F1."""
        rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        compatible = find_compatible_properties(
            source_a,
            source_b,
            train_links.positive,
            max_links=self.config.max_seeding_links,
            rng=rng,
        )
        pairs_seen: list[tuple[str, str]] = []
        for pair in compatible:
            key = (pair.source_property, pair.target_property)
            if key not in pairs_seen:
                pairs_seen.append(key)
        self.attribute_pairs = pairs_seen[: self.config.max_attribute_pairs]
        if not self.attribute_pairs:
            raise ValueError("no compatible attribute pairs found")
        entity_pairs, labels = train_links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(self.attribute_pairs, entity_pairs)
        self.fit_matrix(features.matrix, np.asarray(labels, dtype=bool), features.names)
        return self.f_measure(source_a, source_b, train_links)

    # -- prediction -----------------------------------------------------------
    def predict_matrix(self, matrix: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("classifier is not trained")
        out = np.zeros(matrix.shape[0], dtype=bool)
        for i in range(matrix.shape[0]):
            node = self.root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = (
                    node.right
                    if matrix[i, node.feature] >= node.threshold
                    else node.left
                )
            out[i] = node.prediction
        return out

    def f_measure(
        self,
        source_a: DataSource,
        source_b: DataSource,
        links: ReferenceLinkSet,
    ) -> float:
        entity_pairs, labels = links.labelled_pairs(source_a, source_b)
        features = SimilarityFeatures(self.attribute_pairs, entity_pairs)
        predictions = self.predict_matrix(features.matrix)
        return confusion_counts(
            predictions, np.asarray(labels, dtype=bool)
        ).f_measure()

    # -- explanations ----------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering of the induced tree."""
        if self.root is None:
            raise RuntimeError("classifier is not trained")
        lines: list[str] = []

        def visit(node: TreeNode, prefix: str) -> None:
            if node.is_leaf:
                verdict = "MATCH" if node.prediction else "NO-MATCH"
                lines.append(
                    f"{prefix}{verdict} ({node.positives}+/{node.negatives}-)"
                )
                return
            name = self.feature_names[node.feature]  # type: ignore[index]
            lines.append(f"{prefix}{name} >= {node.threshold:.3f}?")
            assert node.left is not None and node.right is not None
            lines.append(f"{prefix}├─ yes:")
            visit(node.right, prefix + "│    ")
            lines.append(f"{prefix}└─ no:")
            visit(node.left, prefix + "     ")

        visit(self.root, "")
        return "\n".join(lines)

    def positive_paths(self) -> list[list[tuple[str, str, float]]]:
        """The DNF of the learned classifier.

        Each element is one conjunction of ``(feature name, op,
        threshold)`` literals (``op`` is ``>=`` or ``<``) whose leaf
        predicts a match. Together the paths are exactly Definition
        10's threshold-based boolean classifier.
        """
        if self.root is None:
            raise RuntimeError("classifier is not trained")
        paths: list[list[tuple[str, str, float]]] = []

        def visit(node: TreeNode, literals: list[tuple[str, str, float]]) -> None:
            if node.is_leaf:
                if node.prediction:
                    paths.append(list(literals))
                return
            name = self.feature_names[node.feature]  # type: ignore[index]
            assert node.left is not None and node.right is not None
            visit(node.right, literals + [(name, ">=", node.threshold)])
            visit(node.left, literals + [(name, "<", node.threshold)])

        visit(self.root, [])
        return paths
