"""Queue workers: claim jobs, execute them, survive crashes.

A worker is a plain loop: recover stale claims, claim a ticket,
transition the job ``queued -> running``, execute it through a
:class:`JobRunner` (one persistent engine session per worker process —
the in-memory analogue of the shared on-disk cache), persist links and
:class:`~repro.matching.engine.MatchStats` into the job record, and
transition to ``succeeded``. Every transition is validated against the
expected state and claim owner, so a worker whose lease was reaped
mid-run fails loudly instead of overwriting the retry.

Crash recovery needs no supervisor: a dead worker leaves a claimed
ticket and a record whose heartbeat stops. :func:`recover_stale`
(run by every worker before claiming, and by service health checks)
requeues such jobs with exponential backoff until ``max_attempts`` is
exhausted, then fails them. Because link generation is deterministic,
a retried job produces byte-identical links — retry is always safe.

All workers share one :class:`~repro.engine.store.ColumnStore` cache
dir (atomic-rename writes were built for concurrent writers): the
first job over a dataset builds columns/indexes/probes, every later
job on any worker loads them, which is the service's warm path.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path

from repro import faults
from repro.engine.session import EngineSession
from repro.faults import Cancelled, CancelToken
from repro.matching.engine import MatchingEngine
from repro.registry import (
    CorruptVersion,
    MigrationError,
    RegistryError,
    RuleRef,
    RuleRegistry,
    SchemaGapError,
    check_rule,
    resolve_rules_dir,
)
from repro.service.jobs import (
    CorruptRecord,
    InvalidTransition,
    JobRecord,
    JobStore,
    StaleJob,
    _atomic_write_json,
    stats_payload,
)
from repro.service.queue import ClaimTicket, FileQueue, QueueBackend

#: Seconds without a heartbeat after which a running job's claim is
#: considered lost and the job is requeued.
DEFAULT_LEASE = 30.0


class JobRunner:
    """Executes job records through one persistent matching engine.

    The engine (and, on serial/thread executors, its
    :class:`~repro.engine.session.EngineSession`) is created once and
    reused across every job the runner sees — transformed values,
    blocking indexes and probe results computed for one job warm the
    next, on top of the shared persistent store. Process-pool
    executors cannot share an in-process session; there the runner
    falls back to a per-run session over the same on-disk store.
    """

    def __init__(
        self, cache_dir: str | None = None, rules_dir: str | None = None
    ):
        self.cache_dir = cache_dir
        self.rules_dir = rules_dir
        self._session: EngineSession | None = None
        try:
            self._session = EngineSession(store=cache_dir)
            self._engine = MatchingEngine(session=self._session)
        except ValueError:
            # Process-pool executor (REPRO_ENGINE_WORKERS=process:N):
            # scoring sessions live in the worker processes, the
            # parent-side blocking session persists inside the engine.
            if self._session is not None:
                self._session.close()
                self._session = None
            self._engine = MatchingEngine(cache_dir=cache_dir)

    @property
    def engine(self) -> MatchingEngine:
        """The persistent engine jobs execute through."""
        return self._engine

    def close(self) -> None:
        """Release the engine's executor and session."""
        self._engine.close()
        if self._session is not None:
            self._session.close()

    def run(
        self,
        record: JobRecord,
        store: JobStore,
        cancel: CancelToken | None = None,
    ) -> tuple[list, dict | None, dict]:
        """Execute one job record; returns ``(links, stats, result)``.

        ``links`` are exact :class:`~repro.matching.engine.
        GeneratedLink` values — byte-identical to a direct
        ``MatchingEngine.execute`` because this *is* a direct execute,
        just on a persistent engine. ``stats`` is the run's
        :func:`~repro.service.jobs.stats_payload`; ``result`` the
        kind-specific summary stored on the record.

        ``cancel`` is threaded into the engine's shard loop: a deadline
        or operator cancel raises :class:`~repro.faults.Cancelled` at
        the next shard boundary.
        """
        if record.kind == "link":
            return self._run_link(record, cancel)
        if record.kind == "learn":
            return self._run_learn(record, cancel)
        if record.kind == "delta":
            return self._run_delta(record, store, cancel)
        raise ValueError(f"unknown job kind {record.kind!r}")

    # -- kinds -------------------------------------------------------------
    def _sources(self, spec: dict):
        from repro.datasets import load_dataset

        return load_dataset(
            spec["dataset"],
            seed=int(spec.get("seed", 0)),
            scale=float(spec.get("scale", 1.0)),
        )

    def _registry(self) -> RuleRegistry:
        """The registry this runner resolves references from.

        Workers and the submitting service must see the same directory
        (the service defaults both to ``<root>/rules``); a runner with
        no configured registry fails any referencing job terminally."""
        root = resolve_rules_dir(self.rules_dir)
        if root is None:
            raise RegistryError(
                "no rules directory configured: pass rules_dir= or set "
                "REPRO_RULES_DIR"
            )
        return RuleRegistry(root)

    def _rule(self, spec: dict):
        from repro.core.serialization import rule_from_dict
        from repro.matching.incremental import dataset_rule

        if spec.get("rule_ref"):
            return self._resolve_ref(spec).linkage_rule()
        if spec.get("rule"):
            return rule_from_dict(spec["rule"])
        return dataset_rule(spec["dataset"])

    def _resolve_ref(self, spec: dict):
        """Load the registry version a job spec references, re-verifying
        the content hash recorded at submission time — a registry whose
        version content drifted from what the submitter pinned is a
        corruption, not a silent substitution."""
        version = self._registry().resolve(RuleRef.parse(spec["rule_ref"]))
        expected = spec.get("rule_hash")
        if expected and version.rule_hash != expected:
            raise CorruptVersion(
                f"{version.ref}: content hash {version.rule_hash[:12]} "
                f"does not match {expected[:12]} recorded at submission"
            )
        return version

    def _run_link(self, record: JobRecord, cancel: CancelToken | None = None):
        from repro.core.serialization import rule_to_dict

        spec = record.spec
        dataset = self._sources(spec)
        rule = self._rule(spec)
        if spec.get("rule_ref") or spec.get("rule"):
            # Stored/inline rules may have been learned on a different
            # schema; an execute that would silently score starved
            # comparisons 0.0 is refused with the structured report.
            report = check_rule(
                rule,
                dataset.source_a,
                dataset.source_b,
                ref=spec.get("rule_ref"),
            )
            if not report.ok:
                raise SchemaGapError(report)
        links = self._engine.execute(
            rule, dataset.source_a, dataset.source_b, cancel=cancel
        )
        stats = self._engine.last_run_stats()
        result = {
            "links": len(links),
            "rule": rule_to_dict(rule),
        }
        if spec.get("rule_ref"):
            result["rule_ref"] = spec["rule_ref"]
            result["rule_hash"] = spec.get("rule_hash")
        return links, stats_payload(stats), result

    def _run_learn(self, record: JobRecord, cancel: CancelToken | None = None):
        import random

        from repro.core.genlink import GenLink, GenLinkConfig
        from repro.core.serialization import rule_to_dict
        from repro.data.splits import train_validation_split

        spec = record.spec
        dataset = self._sources(spec)
        rng = random.Random(int(spec.get("seed", 0)))
        train, validation = train_validation_split(dataset.links, rng)
        config = GenLinkConfig(
            population_size=int(spec.get("population_size", 20)),
            max_iterations=int(spec.get("iterations", 5)),
        )
        learned = GenLink(config).learn(
            dataset.source_a, dataset.source_b, train, validation, rng=rng
        )
        rule = learned.best_rule
        final = learned.history[-1]
        if cancel is not None:
            cancel.check()
        links = self._engine.execute(
            rule, dataset.source_a, dataset.source_b, cancel=cancel
        )
        stats = self._engine.last_run_stats()
        result = {
            "links": len(links),
            "rule": rule_to_dict(rule),
            "train_f_measure": final.train_f_measure,
            "validation_f_measure": final.validation_f_measure,
            "iterations": final.iteration,
        }
        if spec.get("publish"):
            # Publish the learned rule into the requested lineage with
            # full provenance: what it was learned on (down to the
            # source content fingerprints), how well it scored, and
            # which job produced it.
            ref = RuleRef.parse(spec["publish"])
            version = self._registry().publish(
                ref,
                rule,
                provenance={
                    "job_id": record.job_id,
                    "dataset": spec["dataset"],
                    "seed": int(spec.get("seed", 0)),
                    "scale": float(spec.get("scale", 1.0)),
                    "source_fingerprints": {
                        "a": dataset.source_a.fingerprint(),
                        "b": dataset.source_b.fingerprint(),
                    },
                    "train_f_measure": final.train_f_measure,
                    "validation_f_measure": final.validation_f_measure,
                    "iterations": final.iteration,
                },
            )
            result["published"] = {
                "ref": str(version.ref),
                "rule_hash": version.rule_hash,
            }
        return links, stats_payload(stats), result

    def _run_delta(
        self,
        record: JobRecord,
        store: JobStore,
        cancel: CancelToken | None = None,
    ):
        import random

        from repro.core.serialization import rule_from_dict, rule_to_dict
        from repro.matching.incremental import random_source_delta

        spec = record.spec
        parent = store.get(spec["parent"])
        if parent.state != "succeeded":
            raise ValueError(
                f"parent job {parent.job_id} is {parent.state!r}; delta "
                f"jobs build on a succeeded run"
            )
        previous = store.load_links(parent.job_id)
        # Re-materialise the parent's sources (datasets are generated
        # deterministically from name/seed/scale) and replay its rule.
        dataset = self._sources(parent.spec)
        rule = (
            rule_from_dict(parent.result["rule"])
            if parent.result and parent.result.get("rule")
            else self._rule(parent.spec)
        )
        rng = random.Random(int(spec.get("seed", 0)))
        upserts = int(spec.get("upserts", 0))
        deletes = int(spec.get("deletes", 0))
        source_a, source_b = dataset.source_a, dataset.source_b
        dedup = source_a is source_b
        deltas_a = [random_source_delta(source_a, rng, upserts=upserts, deletes=deletes)]
        deltas_b = (
            deltas_a
            if dedup
            else [random_source_delta(source_b, rng, upserts=upserts, deletes=deletes)]
        )
        diff = self._engine.link_diff(
            rule,
            source_a,
            source_b,
            previous,
            deltas_a=deltas_a,
            deltas_b=deltas_b,
            cancel=cancel,
        )
        result = {
            "links": len(diff.links),
            "rule": rule_to_dict(rule),
            "parent": parent.job_id,
            "added": len(diff.added),
            "removed": len(diff.removed),
            "unchanged": len(diff.unchanged),
            "kept_links": diff.kept_links,
            "rescored_pairs": diff.rescored_pairs,
            "affected_uids": (
                None
                if diff.affected_uids is None
                else len(diff.affected_uids)
            ),
        }
        return list(diff.links), stats_payload(diff.stats), result


def _worker_dir(root: str | os.PathLike) -> Path:
    return Path(root) / "workers"


def write_worker_heartbeat(
    root: str | os.PathLike, worker_id: str, jobs_done: int
) -> None:
    """Publish a worker's liveness record (atomic replace), read by
    :meth:`repro.service.service.LinkageService.health`."""
    _atomic_write_json(
        _worker_dir(root) / f"{worker_id}.json",
        {
            "worker": worker_id,
            "pid": os.getpid(),
            "heartbeat_at": time.time(),
            "jobs_done": jobs_done,
        },
    )


def live_workers(
    root: str | os.PathLike, lease: float = DEFAULT_LEASE
) -> list[dict]:
    """Worker liveness records with a heartbeat within ``lease``."""
    directory = _worker_dir(root)
    if not directory.is_dir():
        return []
    now = time.time()
    workers = []
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if now - float(payload.get("heartbeat_at", 0.0)) <= lease:
            workers.append(payload)
    return workers


def _backoff(attempts: int, base: float, cap: float) -> float:
    """Exponential retry delay: ``base * 2**(attempts-1)``, capped."""
    return min(cap, base * (2 ** max(0, attempts - 1)))


def _quiet(call, *args, **kwargs) -> bool:
    """Run a queue/store side effect, swallowing transient I/O faults.

    Used where failing the bookkeeping is strictly better than failing
    the worker: a ticket that couldn't be acked or released stays
    claimed and the reaper re-resolves it against the job record after
    the lease — the system self-heals, the worker keeps draining.
    """
    try:
        call(*args, **kwargs)
        return True
    except OSError:
        return False


def recover_stale(
    store: JobStore,
    queue: QueueBackend,
    lease: float = DEFAULT_LEASE,
    backoff_base: float = 0.5,
    max_backoff: float = 30.0,
) -> int:
    """Requeue (or fail) jobs whose claiming worker died; returns how
    many claims were recovered.

    A claim is stale when its job is ``running`` with no heartbeat for
    ``lease`` seconds, or still ``queued`` ``lease`` seconds after the
    claim (the worker died between claiming and transitioning). Stale
    running jobs requeue with exponential backoff until their attempt
    budget is spent, then fail. Concurrent reapers are safe: the
    validated transition picks one winner, the loser skips. A claim
    whose job is already terminal is simply dropped.
    """
    recovered = 0
    now = time.time()
    for job_id, token, claimed_at in queue.claimed():
        ticket = ClaimTicket(job_id=job_id, token=token)
        try:
            record = store.get(job_id)
        except KeyError:
            _quiet(queue.ack, ticket)
            recovered += 1
            continue
        except CorruptRecord:
            # An unreadable record can't be resolved either way; leave
            # the ticket claimed for the operator rather than guessing.
            continue
        if record.state == "running":
            last = record.heartbeat_at or claimed_at
            if now - last < lease:
                continue
            error = (
                f"worker {record.worker!r} lost "
                f"(no heartbeat for {now - last:.1f}s)"
            )
            if record.attempts >= record.max_attempts:
                try:
                    store.transition(
                        job_id, "failed", expect="running", error=error
                    )
                except (StaleJob, InvalidTransition, OSError):
                    continue
                _quiet(queue.ack, ticket)
            else:
                delay = _backoff(record.attempts, backoff_base, max_backoff)
                try:
                    store.transition(
                        job_id,
                        "queued",
                        expect="running",
                        error=error,
                        not_before=now + delay,
                        worker=None,
                        heartbeat_at=None,
                    )
                except (StaleJob, InvalidTransition, OSError):
                    continue
                _quiet(queue.release, ticket, not_before=now + delay)
            recovered += 1
        elif record.state == "queued":
            if now - claimed_at < lease:
                continue
            # Died between claim and the running transition: the
            # record needs no edge, the ticket just goes back.
            _quiet(queue.release, ticket, not_before=now)
            recovered += 1
        else:
            _quiet(queue.ack, ticket)
            recovered += 1
    return recovered


def run_worker(
    root: str | os.PathLike,
    worker_id: str | None = None,
    queue: QueueBackend | None = None,
    cache_dir: str | None = None,
    rules_dir: str | None = None,
    drain: bool = False,
    max_jobs: int | None = None,
    lease: float = DEFAULT_LEASE,
    poll_interval: float = 0.2,
    backoff_base: float = 0.5,
    max_backoff: float = 30.0,
    heartbeat_interval: float | None = None,
) -> int:
    """Run one worker loop over a service directory; returns how many
    claims it processed.

    ``drain=True`` exits once the queue is empty (the batch mode the
    CI smoke leg and ``repro-experiments serve --drain`` use);
    otherwise the loop runs until ``max_jobs`` or forever. The worker
    publishes its own liveness record every iteration and heartbeats
    the job record from a background thread while executing, so the
    reaper can tell a slow job from a dead worker.

    ``rules_dir`` names the rule registry referencing jobs resolve
    against (``REPRO_RULES_DIR``, then ``<root>/rules`` — the same
    default the submitting service uses over this directory).
    """
    store = JobStore(root)
    if queue is None:
        queue = FileQueue(root)
    worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    if heartbeat_interval is None:
        heartbeat_interval = max(0.05, lease / 3.0)
    runner = JobRunner(
        cache_dir,
        rules_dir=str(resolve_rules_dir(rules_dir, default=Path(root) / "rules")),
    )
    processed = 0
    try:
        while max_jobs is None or processed < max_jobs:
            recover_stale(
                store,
                queue,
                lease=lease,
                backoff_base=backoff_base,
                max_backoff=max_backoff,
            )
            _quiet(write_worker_heartbeat, root, worker_id, processed)
            try:
                ticket = queue.claim(worker_id)
            except OSError:
                # Transient claim fault (disk hiccup, injected): treat
                # as an empty poll and try again.
                ticket = None
            if ticket is None:
                if drain and queue.depth() == 0:
                    break
                time.sleep(poll_interval)
                continue
            processed += 1
            self_describe = f"attempt on {ticket.job_id} by {worker_id}"
            try:
                record = store.get(ticket.job_id)
                record = store.transition(
                    ticket.job_id,
                    "running",
                    expect="queued",
                    attempts=record.attempts + 1,
                    worker=worker_id,
                    heartbeat_at=time.time(),
                )
            except (KeyError, StaleJob, InvalidTransition, CorruptRecord):
                # Deleted, duplicate ticket, terminal, or unreadable:
                # drop the ticket.
                _quiet(queue.ack, ticket)
                continue
            except OSError:
                # The running transition failed to persist; the job is
                # still queued, so the ticket goes straight back.
                _quiet(queue.release, ticket, not_before=time.time())
                continue
            token = CancelToken(deadline=record.deadline)
            if record.cancel_requested:
                token.cancel("cancelled")
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(
                    store,
                    ticket.job_id,
                    worker_id,
                    stop,
                    heartbeat_interval,
                    token,
                ),
                name=self_describe,
                daemon=True,
            )
            beat.start()
            try:
                # The ``worker.execute`` seam sits after the running
                # transition and before any work: an injected crash
                # here leaves exactly the claimed-ticket-plus-running-
                # record state the reaper must recover from.
                faults.fire("worker.execute")
                links, stats, result = runner.run(record, store, cancel=token)
                stop.set()
                beat.join()
                store.save_links(ticket.job_id, links)
            except Cancelled as cancelled:
                stop.set()
                beat.join()
                _handle_cancel(store, queue, ticket, worker_id, cancelled.reason)
                continue
            except (RegistryError, MigrationError) as error:
                # Registry failures are terminal, never retried: a
                # missing lineage, an unactivated ``@active`` or a
                # schema gap will fail identically on every attempt.
                stop.set()
                beat.join()
                if isinstance(error, SchemaGapError):
                    message = f"schema gap: {error}"
                    result = {"gap_report": error.report.to_payload()}
                else:
                    message = f"registry: {error}"
                    result = None
                _handle_terminal(
                    store, queue, ticket, worker_id, message, result
                )
                continue
            except Exception as error:
                stop.set()
                beat.join()
                _handle_failure(
                    store,
                    queue,
                    ticket,
                    record,
                    worker_id,
                    f"{type(error).__name__}: {error}",
                    backoff_base,
                    max_backoff,
                )
                continue
            try:
                store.transition(
                    ticket.job_id,
                    "succeeded",
                    expect="running",
                    expect_worker=worker_id,
                    stats=stats,
                    result=result,
                    error=None,
                    heartbeat_at=time.time(),
                )
            except (StaleJob, InvalidTransition):
                # Lease reaped mid-run and the job retried elsewhere.
                # Links are deterministic, so the other attempt writes
                # the identical result; this one just steps aside.
                pass
            except OSError:
                # The succeeded transition failed to persist: the job
                # is still running on disk with a stopped heartbeat,
                # so the reaper requeues it after the lease and the
                # deterministic retry writes the identical result.
                continue
            _quiet(queue.ack, ticket)
    finally:
        runner.close()
        _quiet(write_worker_heartbeat, root, worker_id, processed)
    return processed


def _heartbeat_loop(
    store: JobStore,
    job_id: str,
    worker_id: str,
    stop: threading.Event,
    interval: float,
    token: CancelToken | None = None,
) -> None:
    """Background liveness updates while a job executes; exits as soon
    as the job is no longer this worker's (reaped lease). The beat
    doubles as the cancel relay: an operator ``cancel`` flags the
    record, the beat sees the flag and cancels the run's token, the
    engine raises at its next shard boundary."""
    while not stop.wait(interval):
        record = store.heartbeat(job_id, worker_id)
        if record is None:
            return
        if token is not None and record.cancel_requested:
            token.cancel("cancelled")


def _handle_cancel(
    store: JobStore,
    queue: QueueBackend,
    ticket: ClaimTicket,
    worker_id: str,
    reason: str,
) -> None:
    """Terminal bookkeeping after a cancelled/deadlined run.

    Cancellation never retries: a deadline would expire again and an
    operator cancel means stop. The job fails terminally with the
    cancel reason (``deadline`` or ``cancelled``) as its error."""
    try:
        store.transition(
            ticket.job_id,
            "failed",
            expect="running",
            expect_worker=worker_id,
            error=reason,
            heartbeat_at=time.time(),
        )
    except (StaleJob, InvalidTransition, OSError):
        pass
    _quiet(queue.ack, ticket)


def _handle_terminal(
    store: JobStore,
    queue: QueueBackend,
    ticket: ClaimTicket,
    worker_id: str,
    error: str,
    result: dict | None = None,
) -> None:
    """Fail a job with no retry, regardless of remaining attempts —
    used for registry and schema-gap failures, whose outcome is
    deterministic across attempts. ``result`` optionally carries a
    structured payload (the gap report) onto the record."""
    fields: dict = {"error": error, "heartbeat_at": time.time()}
    if result is not None:
        fields["result"] = result
    try:
        store.transition(
            ticket.job_id,
            "failed",
            expect="running",
            expect_worker=worker_id,
            **fields,
        )
    except (StaleJob, InvalidTransition, OSError):
        pass
    _quiet(queue.ack, ticket)


def _handle_failure(
    store: JobStore,
    queue: QueueBackend,
    ticket: ClaimTicket,
    record: JobRecord,
    worker_id: str,
    error: str,
    backoff_base: float,
    max_backoff: float,
) -> None:
    """Terminal-or-retry bookkeeping after an execution exception."""
    if record.attempts >= record.max_attempts:
        try:
            store.transition(
                ticket.job_id,
                "failed",
                expect="running",
                expect_worker=worker_id,
                error=error,
            )
        except (StaleJob, InvalidTransition, OSError):
            pass
        _quiet(queue.ack, ticket)
        return
    delay = _backoff(record.attempts, backoff_base, max_backoff)
    not_before = time.time() + delay
    try:
        store.transition(
            ticket.job_id,
            "queued",
            expect="running",
            expect_worker=worker_id,
            error=error,
            not_before=not_before,
            worker=None,
            heartbeat_at=None,
        )
    except (StaleJob, InvalidTransition):
        _quiet(queue.ack, ticket)
        return
    except OSError:
        # Couldn't persist the requeue: leave the running record and
        # claimed ticket for the reaper, which retries after the lease.
        return
    _quiet(queue.release, ticket, not_before=not_before)
