"""Linkage-as-a-service: an async job layer over the matching engine.

The package turns the batch library into a long-lived service: clients
submit learning, link-generation or delta jobs
(:class:`~repro.service.service.LinkageService`), worker processes
pull them from a pluggable queue (:mod:`repro.service.queue`) and
execute them through a shared :class:`~repro.engine.store.ColumnStore`
cache dir (:mod:`repro.service.worker`), and every job's lifecycle —
atomic state transitions, retry with backoff, the per-run
:class:`~repro.matching.engine.MatchStats` — lives in a file-backed
job store (:mod:`repro.service.jobs`).

Service-path links are byte-identical to a direct
:meth:`repro.matching.engine.MatchingEngine.execute` over the same
inputs: workers run the very same engine, and the queue only decides
*where* it runs. With no usable queue backend the service degrades to
inline execution in the submitting process — same job records, same
links, no workers required.
"""

from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    CorruptRecord,
    InvalidTransition,
    JobRecord,
    JobStore,
    StaleJob,
)
from repro.service.queue import (
    QUEUE_ENV,
    REDIS_URL_ENV,
    ClaimTicket,
    FileQueue,
    QueueBackend,
    RedisQueue,
    resolve_queue,
)
from repro.service.service import DEADLINE_ENV, SERVICE_DIR_ENV, LinkageService
from repro.service.worker import JobRunner, recover_stale, run_worker

__all__ = [
    "DEADLINE_ENV",
    "JOB_KINDS",
    "JOB_STATES",
    "QUEUE_ENV",
    "REDIS_URL_ENV",
    "SERVICE_DIR_ENV",
    "ClaimTicket",
    "CorruptRecord",
    "FileQueue",
    "InvalidTransition",
    "JobRecord",
    "JobRunner",
    "JobStore",
    "LinkageService",
    "QueueBackend",
    "RedisQueue",
    "StaleJob",
    "recover_stale",
    "resolve_queue",
    "run_worker",
]
