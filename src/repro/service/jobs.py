"""Job records and the file-backed job store.

A job is one unit of service work — generate links, learn a rule, or
re-derive links after a source delta — recorded as a single JSON file
under ``<root>/jobs/``. The store follows the persistence discipline
of :class:`repro.engine.store.ColumnStore`: every write lands in a
temporary file first and is published with an atomic ``os.replace``,
so concurrent readers (pollers, health checks, the reaper) never see a
torn record and a crashed writer leaves at most an orphaned temp file.

State transitions go through :meth:`JobStore.transition`, which
re-reads the record and validates the edge against the expected
current state (and, for workers, the expected claim owner) before
publishing — a worker whose lease was reaped mid-run fails its final
``running -> succeeded`` transition with :class:`StaleJob` instead of
silently overwriting the retry's record.

Generated links are stored next to the records under ``<root>/links/``
as exact ``(uid_a, uid_b, score)`` triples: JSON serialises floats via
``repr``, which round-trips IEEE doubles exactly, so links fetched
from a job record compare byte-identical to a direct
:meth:`repro.matching.engine.MatchingEngine.execute`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro import faults
from repro.matching.engine import GeneratedLink, MatchStats

#: Lifecycle states of a job record.
JOB_STATES = ("queued", "running", "succeeded", "failed")

#: Work kinds the service executes (see :mod:`repro.service.worker`).
JOB_KINDS = ("link", "learn", "delta")

#: Legal lifecycle edges. ``running -> queued`` is the retry path (a
#: crashed or reaped attempt goes back on the queue with backoff).
_TRANSITIONS = frozenset(
    [
        ("queued", "running"),
        ("running", "succeeded"),
        ("running", "failed"),
        ("running", "queued"),
        ("queued", "failed"),
    ]
)


class InvalidTransition(RuntimeError):
    """A requested lifecycle edge is not in the transition table."""


class StaleJob(RuntimeError):
    """The record on disk no longer matches the expected state/owner —
    another process (a retry after a reaped lease) took the job over."""


class CorruptRecord(RuntimeError):
    """A job record that persistently fails to parse. With atomic
    publication this should be unreachable — seeing it means the
    storage layer broke its rename guarantee (or something external
    damaged the file), so it is surfaced loudly rather than treated as
    an unknown job."""


@dataclass
class JobRecord:
    """One service job: payload, lifecycle state and bookkeeping.

    ``spec`` is the client-supplied work description (dataset, seed,
    scale, rule JSON, learn config, delta parameters — see
    :mod:`repro.service.worker` for the per-kind schema). ``stats``
    holds the executed run's :class:`~repro.matching.engine.MatchStats`
    as a JSON-safe payload (:func:`stats_payload`), ``result`` the
    kind-specific outcome summary (link counts, learned-rule JSON,
    diff buckets).
    """

    job_id: str
    kind: str
    spec: dict
    state: str = "queued"
    #: Claim attempts so far (incremented when a worker takes the job).
    attempts: int = 0
    max_attempts: int = 3
    created_at: float = 0.0
    updated_at: float = 0.0
    #: Earliest wall-clock time the next attempt may start (backoff).
    not_before: float = 0.0
    #: Worker id of the current/last attempt.
    worker: str | None = None
    #: Last liveness signal from the executing worker.
    heartbeat_at: float | None = None
    error: str | None = None
    stats: dict | None = None
    result: dict | None = None
    #: Per-attempt wall-clock budget in seconds (None: unbounded). The
    #: worker arms a :class:`~repro.faults.CancelToken` with it; an
    #: expired deadline is a terminal ``running -> failed`` transition
    #: with ``error="deadline"`` — never a retry, a too-slow job would
    #: just time out again.
    deadline: float | None = None
    #: Operator cancellation flag (the ``cancel`` verb). The executing
    #: worker's heartbeat loop observes it and cancels the run at the
    #: next shard boundary.
    cancel_requested: bool = False

    def to_payload(self) -> dict:
        """JSON-safe dict form of this record."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "JobRecord":
        """Rebuild a record from :meth:`to_payload` output."""
        return cls(**payload)


def stats_payload(stats: MatchStats | None) -> dict | None:
    """A job-record-safe payload of one run's match statistics.

    ``dataclasses.asdict`` recurses through the nested cache/store
    stats; tuples become JSON lists, which is fine for a read-only
    record (consumers index fields, they don't rebuild the dataclass).
    """
    if stats is None:
        return None
    return dataclasses.asdict(stats)


def _atomic_write_json(path: Path, payload) -> None:
    """Publish ``payload`` at ``path`` via temp file + ``os.replace``
    (the store-wide atomicity discipline: readers see the old file or
    the new file, never a partial one)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        # The ``jobs.write`` seam sits between content and publication:
        # an injected torn/ENOSPC fault here must leave the previous
        # record intact (the unlink below discards the temp file).
        faults.fire("jobs.write", tmp_path=tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class JobStore:
    """File-backed job records with validated atomic state transitions.

    One JSON file per job under ``<root>/jobs/``, links under
    ``<root>/links/``. Safe for concurrent processes: writes are
    atomic replaces, and :meth:`transition` validates the edge against
    the freshly-read record so racing writers fail loudly
    (:class:`StaleJob`) instead of clobbering each other's state.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._jobs = self.root / "jobs"
        self._links = self.root / "links"

    # -- record I/O --------------------------------------------------------
    def create(
        self,
        kind: str,
        spec: dict,
        max_attempts: int = 3,
        job_id: str | None = None,
        deadline: float | None = None,
    ) -> JobRecord:
        """Create and persist a new queued job record. ``deadline``
        bounds each attempt's wall-clock seconds (None: unbounded)."""
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; expected {JOB_KINDS}")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        now = time.time()
        record = JobRecord(
            job_id=job_id or f"job-{uuid.uuid4().hex[:12]}",
            kind=kind,
            spec=dict(spec),
            max_attempts=max_attempts,
            created_at=now,
            updated_at=now,
            deadline=deadline,
        )
        if self._record_path(record.job_id).exists():
            raise ValueError(f"job id {record.job_id!r} already exists")
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Persist a record (atomic replace)."""
        record.updated_at = time.time()
        _atomic_write_json(
            self._record_path(record.job_id), record.to_payload()
        )

    def get(self, job_id: str) -> JobRecord:
        """Load one record; raises ``KeyError`` for unknown ids.

        A parse failure is retried once (pure paranoia — atomic
        renames mean readers should never see partial JSON) and then
        surfaced as :class:`CorruptRecord`, not swallowed: a record
        that exists but cannot be read is an integrity violation the
        operator must see."""
        path = self._record_path(job_id)
        last_error: ValueError | None = None
        for _ in range(2):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                raise KeyError(f"unknown job {job_id!r}") from None
            except ValueError as error:
                last_error = error
                continue
            return JobRecord.from_payload(payload)
        raise CorruptRecord(
            f"job record {job_id!r} at {path} is unreadable: {last_error}"
        )

    def job_ids(self) -> list[str]:
        """All known job ids, sorted."""
        if not self._jobs.is_dir():
            return []
        return sorted(
            path.stem
            for path in self._jobs.iterdir()
            if path.suffix == ".json"
        )

    def records(self) -> Iterator[JobRecord]:
        """All records, in job-id order."""
        for job_id in self.job_ids():
            try:
                yield self.get(job_id)
            except KeyError:  # pragma: no cover - deleted mid-iteration
                continue
            except CorruptRecord:
                # Aggregate views stay usable with one damaged record;
                # a direct ``get`` of that id still raises loudly.
                continue

    def state_counts(self) -> dict[str, int]:
        """``{state: record count}`` over every known job."""
        counts = {state: 0 for state in JOB_STATES}
        for record in self.records():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    # -- lifecycle ---------------------------------------------------------
    def transition(
        self,
        job_id: str,
        to_state: str,
        expect: str,
        expect_worker: str | None = None,
        **fields,
    ) -> JobRecord:
        """Move a job along one validated lifecycle edge.

        Re-reads the record, checks it is still in ``expect`` (and, if
        ``expect_worker`` is given, still owned by that worker), checks
        the edge is legal, applies ``fields`` and publishes. Raises
        :class:`StaleJob` when the record moved underneath the caller
        and :class:`InvalidTransition` for an illegal edge — the two
        failure modes a retry loop must distinguish.
        """
        record = self.get(job_id)
        if record.state != expect:
            raise StaleJob(
                f"job {job_id} is {record.state!r}, expected {expect!r}"
            )
        if expect_worker is not None and record.worker != expect_worker:
            raise StaleJob(
                f"job {job_id} is owned by {record.worker!r}, "
                f"expected {expect_worker!r}"
            )
        if (record.state, to_state) not in _TRANSITIONS:
            raise InvalidTransition(
                f"illegal transition {record.state!r} -> {to_state!r} "
                f"for job {job_id}"
            )
        record.state = to_state
        for name, value in fields.items():
            if not hasattr(record, name):
                raise AttributeError(f"JobRecord has no field {name!r}")
            setattr(record, name, value)
        self.save(record)
        return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Flag a running job for cooperative cancellation.

        The executing worker's heartbeat loop sees the flag and cancels
        the run at its next shard boundary. Raises ``ValueError`` for
        jobs not currently running (queued jobs are cancelled by the
        service via a direct ``queued -> failed`` transition; terminal
        jobs have nothing to cancel)."""
        record = self.get(job_id)
        if record.state != "running":
            raise ValueError(
                f"job {job_id} is {record.state!r}; only running jobs "
                f"take a cancel request"
            )
        record.cancel_requested = True
        self.save(record)
        return record

    def heartbeat(self, job_id: str, worker: str) -> JobRecord | None:
        """Refresh a running job's liveness signal; returns the fresh
        record, or ``None`` (without writing) when the job is no longer
        this worker's. A transient write failure still returns the
        record — liveness is best-effort and the next beat retries."""
        try:
            record = self.get(job_id)
        except (KeyError, CorruptRecord):
            return None
        if record.state != "running" or record.worker != worker:
            return None
        record.heartbeat_at = time.time()
        try:
            self.save(record)
        except OSError:
            pass
        return record

    # -- links -------------------------------------------------------------
    def save_links(self, job_id: str, links: Iterable[GeneratedLink]) -> int:
        """Persist a job's generated links; returns the link count."""
        triples = [
            [link.uid_a, link.uid_b, link.score] for link in links
        ]
        _atomic_write_json(self._links_path(job_id), triples)
        return len(triples)

    def load_links(self, job_id: str) -> list[GeneratedLink]:
        """A job's persisted links as exact :class:`GeneratedLink`
        values (float scores round-trip bit-for-bit through JSON)."""
        path = self._links_path(job_id)
        try:
            triples = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise KeyError(f"no links stored for job {job_id!r}") from None
        return [
            GeneratedLink(uid_a, uid_b, float(score))
            for uid_a, uid_b, score in triples
        ]

    def describe(self) -> dict:
        """Store summary for health checks."""
        return {
            "path": str(self.root),
            "jobs": self.state_counts(),
        }

    def _record_path(self, job_id: str) -> Path:
        return self._jobs / f"{job_id}.json"

    def _links_path(self, job_id: str) -> Path:
        return self._links / f"{job_id}.json"
