"""Pluggable job queues: file-backed default, optional redis.

The queue carries only job *ids* — the payload lives in the
:class:`~repro.service.jobs.JobStore` — so a backend needs exactly
four operations: submit, claim, ack, release. The file backend builds
mutual exclusion out of ``os.rename``: a ready ticket is one file
under ``<root>/queue/ready/``, claiming renames it into
``<root>/queue/claimed/``, and POSIX rename atomicity guarantees
exactly one winner however many workers race. A crashed worker leaves
its claimed ticket behind; :func:`repro.service.worker.recover_stale`
turns those back into ready tickets with backoff.

Ticket filenames are ``<not_before_ms>-<submit_ns>-<job_id>``:
lexicographic order is eligibility order, so claiming is one sorted
directory listing, and retry backoff is encoded in the name instead of
requiring a scheduler.

The redis backend is import-gated: the container may not ship the
``redis`` package, so :meth:`RedisQueue.available` reports whether it
can run and :func:`resolve_queue` degrades to ``None`` (inline
execution) instead of failing when it cannot.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro import faults

#: Environment variable selecting the queue backend when a service is
#: constructed without an explicit ``queue=`` (values: ``file`` — the
#: default — ``redis``, ``inline``/``none`` to force inline execution).
QUEUE_ENV = "REPRO_SERVICE_QUEUE"

#: Environment variable naming a live redis server url. Doubles as the
#: :class:`RedisQueue` default url and as the integration-test gate
#: (``tests/test_redis_queue.py`` skips cleanly when unset).
REDIS_URL_ENV = "REPRO_TEST_REDIS_URL"

#: Fallback url when neither an argument nor the environment names one.
_DEFAULT_REDIS_URL = "redis://localhost:6379/0"


def _default_redis_url() -> str:
    return os.environ.get(REDIS_URL_ENV, "").strip() or _DEFAULT_REDIS_URL


@dataclass(frozen=True)
class ClaimTicket:
    """A successfully claimed queue entry: the job to run plus the
    backend token (file path / redis entry) to ack or release it."""

    job_id: str
    token: str


class QueueBackend:
    """Interface of a job queue backend.

    All methods operate on job ids; payloads live in the job store.
    Backends must be safe for concurrent submitters and claimers in
    separate processes.
    """

    #: Short backend name for health checks and logs.
    name = "abstract"

    def submit(self, job_id: str, not_before: float = 0.0) -> None:
        """Enqueue a job id, eligible for claiming at ``not_before``
        (a wall-clock timestamp; 0 = immediately)."""
        raise NotImplementedError

    def claim(self, worker_id: str) -> ClaimTicket | None:
        """Atomically take the oldest eligible entry, or ``None`` when
        nothing is eligible right now."""
        raise NotImplementedError

    def ack(self, ticket: ClaimTicket) -> None:
        """Drop a claimed entry for good (job finished, terminally)."""
        raise NotImplementedError

    def release(self, ticket: ClaimTicket, not_before: float = 0.0) -> None:
        """Return a claimed entry to the queue (retry with backoff)."""
        raise NotImplementedError

    def depth(self) -> int:
        """Entries waiting to be claimed (eligible or backing off)."""
        raise NotImplementedError

    def claimed(self) -> list[tuple[str, str, float]]:
        """In-flight claims as ``(job_id, token, claimed_at)`` — the
        reaper's input for crash recovery."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Backend summary for health checks."""
        return {
            "backend": self.name,
            "depth": self.depth(),
            "claimed": len(self.claimed()),
        }


class FileQueue(QueueBackend):
    """Directory-backed queue with atomic-rename claiming.

    Requires no services and no locks: submission is one atomic JSON-
    free file creation, claiming is one ``os.rename`` race that exactly
    one worker wins, and crash recovery is a directory scan. Suited to
    single-host worker fleets sharing a filesystem — the same scope as
    the shared :class:`~repro.engine.store.ColumnStore` cache dir.
    """

    name = "file"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._ready = self.root / "queue" / "ready"
        self._claimed = self.root / "queue" / "claimed"
        self._ready.mkdir(parents=True, exist_ok=True)
        self._claimed.mkdir(parents=True, exist_ok=True)

    def submit(self, job_id: str, not_before: float = 0.0) -> None:
        if "/" in job_id or job_id != job_id.strip() or not job_id:
            raise ValueError(f"unsupported job id for file queue: {job_id!r}")
        # Two fixed-width numeric fields then the job id: parsing
        # splits on the first two dashes, so ids may contain dashes.
        name = f"{int(max(0.0, not_before) * 1000):015d}-{time.time_ns():020d}-{job_id}"
        path = self._ready / name
        with open(path, "x", encoding="utf-8") as handle:
            handle.write(job_id)

    def claim(self, worker_id: str) -> ClaimTicket | None:
        faults.fire("queue.claim")
        now_ms = int(time.time() * 1000)
        for path in sorted(self._ready.iterdir()):
            not_before_ms, _, job_id = self._parse(path.name)
            if job_id is None:
                continue
            if not_before_ms > now_ms:
                # Names sort by eligibility time first: everything
                # after this entry is even further in the future.
                return None
            target = self._claimed / f"{path.name}--{worker_id}"
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # another worker won this ticket
            return ClaimTicket(job_id=job_id, token=str(target))
        return None

    def ack(self, ticket: ClaimTicket) -> None:
        faults.fire("queue.ack")
        try:
            os.unlink(ticket.token)
        except FileNotFoundError:
            pass

    def release(self, ticket: ClaimTicket, not_before: float = 0.0) -> None:
        self.submit(ticket.job_id, not_before=not_before)
        self.ack(ticket)

    def depth(self) -> int:
        return sum(1 for _ in self._ready.iterdir())

    def claimed(self) -> list[tuple[str, str, float]]:
        entries: list[tuple[str, str, float]] = []
        for path in sorted(self._claimed.iterdir()):
            base = path.name.rsplit("--", 1)[0]
            _, _, job_id = self._parse(base)
            if job_id is None:
                continue
            try:
                claimed_at = path.stat().st_mtime
            except FileNotFoundError:
                continue
            entries.append((job_id, str(path), claimed_at))
        return entries

    @staticmethod
    def _parse(name: str) -> tuple[int, int, str | None]:
        parts = name.split("-", 2)
        if len(parts) != 3:
            return 0, 0, None
        try:
            return int(parts[0]), int(parts[1]), parts[2]
        except ValueError:
            return 0, 0, None


def _redis_module():
    """The ``redis`` package, or ``None`` when not importable (the
    container intentionally does not bundle it)."""
    try:
        import redis
    except ImportError:
        return None
    return redis


class RedisQueue(QueueBackend):
    """Redis-list-backed queue for multi-host worker fleets.

    Submission pushes the job id onto a ready list; claiming moves it
    atomically onto a per-worker processing list (``LMPOP``-free
    ``RPOPLPUSH`` pattern, available on every redis version); acking
    removes it from the processing list. Backoff rides in the job
    record's ``not_before`` — an ineligible claim is released straight
    back. Only constructed when the ``redis`` package imports *and*
    the server answers a ping; otherwise :func:`resolve_queue`
    degrades to inline execution.
    """

    name = "redis"

    def __init__(self, url: str | None = None, prefix: str = "repro"):
        module = _redis_module()
        if module is None:
            raise RuntimeError(
                "the redis package is not installed; use the file queue "
                "or inline execution"
            )
        if url is None:
            url = _default_redis_url()
        self._redis = module.Redis.from_url(url, decode_responses=True)
        self._ready_key = f"{prefix}:queue:ready"
        self._claimed_prefix = f"{prefix}:queue:claimed:"
        self._redis.ping()

    @classmethod
    def available(cls, url: str | None = None) -> bool:
        """Whether this backend can run here (package importable and
        server reachable) — the degradation probe. ``url=None``
        consults :data:`REDIS_URL_ENV` before the localhost default."""
        module = _redis_module()
        if module is None:
            return False
        if url is None:
            url = _default_redis_url()
        try:
            module.Redis.from_url(url, socket_connect_timeout=0.5).ping()
        except Exception:
            return False
        return True

    def submit(self, job_id: str, not_before: float = 0.0) -> None:
        # Eligibility is enforced at claim time from the job record;
        # the entry itself carries the earliest-start timestamp.
        self._redis.lpush(self._ready_key, f"{not_before!r}|{job_id}")

    def claim(self, worker_id: str) -> ClaimTicket | None:
        faults.fire("queue.claim")
        claimed_key = self._claimed_prefix + worker_id
        entry = self._redis.rpoplpush(self._ready_key, claimed_key)
        if entry is None:
            return None
        not_before_text, _, job_id = entry.partition("|")
        try:
            not_before = float(not_before_text)
        except ValueError:
            not_before, job_id = 0.0, entry
        if not_before > time.time():
            # Not eligible yet: put it back and report empty-handed.
            self._redis.lrem(claimed_key, 1, entry)
            self._redis.lpush(self._ready_key, entry)
            return None
        return ClaimTicket(job_id=job_id, token=f"{claimed_key}|{entry}")

    def ack(self, ticket: ClaimTicket) -> None:
        faults.fire("queue.ack")
        claimed_key, _, entry = ticket.token.partition("|")
        self._redis.lrem(claimed_key, 1, entry)

    def release(self, ticket: ClaimTicket, not_before: float = 0.0) -> None:
        self.ack(ticket)
        self.submit(ticket.job_id, not_before=not_before)

    def depth(self) -> int:
        return int(self._redis.llen(self._ready_key))

    def claimed(self) -> list[tuple[str, str, float]]:
        entries: list[tuple[str, str, float]] = []
        now = time.time()
        for key in self._redis.keys(self._claimed_prefix + "*"):
            for entry in self._redis.lrange(key, 0, -1):
                job_id = entry.partition("|")[2] or entry
                entries.append((job_id, f"{key}|{entry}", now))
        return entries


def resolve_queue(
    root: str | os.PathLike,
    backend: str | None = None,
) -> tuple[QueueBackend | None, str | None]:
    """Resolve a queue backend spec to ``(queue, degradation_reason)``.

    ``backend=None`` consults :data:`QUEUE_ENV` (default ``file``).
    ``inline``/``none``/empty force inline execution deliberately
    (reason ``None`` — that is a configuration, not a degradation);
    ``redis`` degrades with a reason when the package or server is
    unavailable, so :class:`~repro.service.service.LinkageService`
    keeps working on machines without redis.
    """
    spec = backend if backend is not None else os.environ.get(QUEUE_ENV, "file")
    text = spec.strip().lower() or "file"
    if text in ("inline", "none"):
        return None, None
    if text == "file":
        return FileQueue(root), None
    if text == "redis":
        if not RedisQueue.available():
            return None, "redis backend unavailable (package or server missing)"
        return RedisQueue(), None
    raise ValueError(
        f"unknown queue backend {spec!r}: expected file, redis, or inline"
    )
