"""The client-facing service facade: submit, poll, fetch, health.

:class:`LinkageService` binds the three service pieces — job store,
queue backend, shared cache dir — behind the API a client (or the
``repro-experiments serve|submit|status|links`` commands) talks to.

Degradation is a first-class mode, not an error path: when the
configured queue backend is unavailable (``queue="redis"`` with no
redis) or no backend is wanted (``queue="inline"``), submissions
execute *inline* in the calling process, through the exact same job
records, state transitions and engine code path the workers use. The
only observable difference is where the work ran — links, stats and
the record schema are identical, which is what the degradation tests
assert.
"""

from __future__ import annotations

import os
import random
import time
import warnings
from pathlib import Path

from repro.engine.store import CACHE_ENV, ColumnStore
from repro.faults import Cancelled, CancelToken
from repro.matching.engine import GeneratedLink
from repro.registry import (
    MigrationError,
    RegistryError,
    RuleRef,
    RuleRegistry,
    SchemaGapError,
    resolve_rules_dir,
)
from repro.service.jobs import JobRecord, JobStore
from repro.service.queue import QueueBackend, resolve_queue
from repro.service.worker import (
    DEFAULT_LEASE,
    JobRunner,
    live_workers,
    recover_stale,
)

#: Environment variable naming the default service directory (job
#: records, queue tickets, worker heartbeats) when none is passed.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Environment variable setting the default per-attempt deadline in
#: seconds for submitted jobs (unset/empty: unbounded). An explicit
#: ``deadline=`` argument wins.
DEADLINE_ENV = "REPRO_JOB_DEADLINE"


def _resolve_deadline(deadline: float | None) -> float | None:
    if deadline is not None:
        return deadline
    text = os.environ.get(DEADLINE_ENV, "").strip()
    if not text:
        return None
    value = float(text)
    if value <= 0:
        raise ValueError(f"{DEADLINE_ENV} must be positive, got {text!r}")
    return value


def _resolve_root(root: str | os.PathLike | None) -> Path:
    if root is not None:
        return Path(root)
    env = os.environ.get(SERVICE_DIR_ENV, "")
    if not env:
        raise ValueError(
            f"no service directory: pass root= or set {SERVICE_DIR_ENV}"
        )
    return Path(env)


class LinkageService:
    """A long-lived linkage service over one service directory.

    ``root`` holds everything the service owns: job records, queue
    tickets, worker heartbeats, and (by default) the shared
    :class:`~repro.engine.store.ColumnStore` under ``<root>/cache``.
    ``cache_dir`` overrides the store location (``REPRO_ENGINE_CACHE``
    is consulted next, then the default); every worker process and the
    inline path resolve the same directory, so any job warms all
    later jobs whatever executes them.

    ``queue`` selects the backend (``file``, ``redis``, ``inline``;
    ``None`` consults ``REPRO_SERVICE_QUEUE``). An unavailable backend
    degrades to inline execution and :meth:`health` reports why.

    ``rules_dir`` names the rule registry jobs may reference rules from
    (``REPRO_RULES_DIR`` is consulted next, then ``<root>/rules``);
    workers resolving registry references for this service's jobs must
    see the same directory, exactly like the shared cache dir.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        queue: str | None = None,
        cache_dir: str | None = None,
        rules_dir: str | None = None,
        max_attempts: int = 3,
        lease: float = DEFAULT_LEASE,
    ):
        self.root = _resolve_root(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(self.root)
        self._lease = lease
        self._max_attempts = max_attempts
        self.queue: QueueBackend | None
        self.queue, self._degraded_reason = resolve_queue(self.root, queue)
        if cache_dir is not None:
            self.cache_dir = cache_dir
        else:
            self.cache_dir = os.environ.get(CACHE_ENV, "") or str(
                self.root / "cache"
            )
        self.rules_dir = str(
            resolve_rules_dir(rules_dir, default=self.root / "rules")
        )
        self._inline_runner: JobRunner | None = None

    @property
    def registry(self) -> RuleRegistry:
        """The rule registry this service resolves references from."""
        return RuleRegistry(self.rules_dir)

    @property
    def inline(self) -> bool:
        """Whether submissions execute in this process (no queue)."""
        return self.queue is None

    @property
    def degraded_reason(self) -> str | None:
        """Why the service fell back to inline execution, or ``None``
        when inline was requested or a queue is active."""
        return self._degraded_reason

    def close(self) -> None:
        """Release the inline runner's engine, if one was created."""
        if self._inline_runner is not None:
            self._inline_runner.close()
            self._inline_runner = None

    def __enter__(self) -> "LinkageService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        kind: str,
        spec: dict | None = None,
        *,
        dataset: str | None = None,
        rule: RuleRef | str | dict | None = None,
        seed: int = 0,
        scale: float = 1.0,
        parent: str | None = None,
        upserts: int = 0,
        deletes: int = 0,
        population_size: int = 20,
        iterations: int = 5,
        publish: RuleRef | str | None = None,
        deadline: float | None = None,
    ) -> JobRecord:
        """Create a job and hand it to the execution mode in force.

        This is the whole submission surface: ``kind`` selects the job
        (``link``, ``learn``, ``delta``) and keyword fields carry its
        inputs — ``dataset``/``seed``/``scale`` for link and learn jobs,
        ``parent``/``upserts``/``deletes`` for deltas. ``rule`` (link
        jobs) is either an inline rule dict or a registry reference
        (:class:`~repro.registry.RuleRef` or ``tenant/scenario/name
        [@vN|@active]`` string); references are resolved *now*, against
        this service's registry, and the job record stores the pinned
        ``name@vN`` plus content hash — an activation flip after
        submission never changes what the job runs. ``publish`` (learn
        jobs) names the lineage the learned rule is published into.

        A reference that does not resolve (unknown lineage or version,
        ``@active`` with no activation) is a *terminal* submission
        failure: the record is created and immediately failed with the
        registry error — it is never enqueued and never retried, because
        retrying cannot conjure the missing version.

        With a queue: the record is persisted ``queued`` and a ticket
        enqueued — a worker picks it up. Inline: the record runs
        through the identical lifecycle (``queued -> running ->
        succeeded``/``failed``) in this process before returning, so
        callers poll and fetch exactly as they would against workers.

        ``deadline`` bounds each attempt's wall-clock seconds
        (``None`` consults ``REPRO_JOB_DEADLINE``, then unbounded); an
        exceeded deadline fails the job terminally with
        ``error="deadline"``.

        Passing a raw ``spec`` dict positionally is the deprecated
        pre-registry surface; it still works (one ``DeprecationWarning``)
        but performs no reference resolution.
        """
        if spec is not None:
            warnings.warn(
                "passing a spec dict to LinkageService.submit is "
                "deprecated; use keyword fields "
                "(submit('link', dataset=..., rule=...))",
                DeprecationWarning,
                stacklevel=2,
            )
        else:
            spec = self._build_spec(
                kind,
                dataset=dataset,
                rule=rule,
                seed=seed,
                scale=scale,
                parent=parent,
                upserts=upserts,
                deletes=deletes,
                population_size=population_size,
                iterations=iterations,
                publish=publish,
            )
            if isinstance(rule, (str, RuleRef)):
                error = self._pin_rule_ref(spec, rule)
                if error is not None:
                    record = self.store.create(
                        kind,
                        spec,
                        max_attempts=self._max_attempts,
                        deadline=_resolve_deadline(deadline),
                    )
                    return self.store.transition(
                        record.job_id,
                        "failed",
                        expect="queued",
                        error=f"registry: {error}",
                    )
        record = self.store.create(
            kind,
            spec,
            max_attempts=self._max_attempts,
            deadline=_resolve_deadline(deadline),
        )
        if self.queue is not None:
            self.queue.submit(record.job_id)
            return record
        return self._run_inline(record)

    def _build_spec(
        self,
        kind: str,
        *,
        dataset: str | None,
        rule: RuleRef | str | dict | None,
        seed: int,
        scale: float,
        parent: str | None,
        upserts: int,
        deletes: int,
        population_size: int,
        iterations: int,
        publish: RuleRef | str | None,
    ) -> dict:
        """Validate keyword fields for ``kind`` and shape the job spec."""
        if kind == "delta":
            if parent is None:
                raise ValueError("delta jobs need parent=<job id>")
            if rule is not None:
                raise ValueError(
                    "delta jobs replay the parent's rule; rule= is not "
                    "accepted"
                )
            return {
                "parent": parent,
                "seed": seed,
                "upserts": upserts,
                "deletes": deletes,
            }
        if kind not in ("link", "learn"):
            raise ValueError(f"unknown job kind {kind!r}")
        if dataset is None:
            raise ValueError(f"{kind} jobs need dataset=<name>")
        spec: dict = {"dataset": dataset, "seed": seed, "scale": scale}
        if kind == "learn":
            if rule is not None:
                raise ValueError(
                    "learn jobs learn their rule; rule= is not accepted"
                )
            spec["population_size"] = population_size
            spec["iterations"] = iterations
            if publish is not None:
                ref = RuleRef.parse(publish)
                if ref.pinned:
                    raise ValueError(
                        f"publish={str(ref)!r} pins a version; publishing "
                        f"always appends the next one — pass the bare "
                        f"lineage {ref.lineage!r}"
                    )
                spec["publish"] = ref.lineage
            return spec
        if publish is not None:
            raise ValueError("publish= applies to learn jobs only")
        if isinstance(rule, dict):
            spec["rule"] = rule
        return spec

    def _pin_rule_ref(
        self, spec: dict, rule: RuleRef | str
    ) -> RegistryError | None:
        """Resolve a registry reference at submission time.

        On success the spec gains the pinned ``rule_ref`` (always
        ``@vN``, even when the caller said ``@active``) and its
        ``rule_hash``; on a registry failure the *requested* reference
        is recorded and the error returned for the caller to fail the
        job with. A malformed reference raises — that is a caller bug,
        not a registry state."""
        ref = RuleRef.parse(rule)
        spec["rule_ref"] = str(ref)
        try:
            version = self.registry.resolve(ref)
        except RegistryError as error:
            return error
        spec["rule_ref"] = str(version.ref)
        spec["rule_hash"] = version.rule_hash
        return None

    def submit_link(
        self,
        dataset: str,
        seed: int = 0,
        scale: float = 1.0,
        rule: dict | None = None,
        deadline: float | None = None,
    ) -> JobRecord:
        """Deprecated shim for :meth:`submit` with ``kind="link"``."""
        warnings.warn(
            "LinkageService.submit_link is deprecated; use "
            "submit('link', dataset=..., rule=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit(
            "link",
            dataset=dataset,
            seed=seed,
            scale=scale,
            rule=rule,
            deadline=deadline,
        )

    def submit_delta(
        self,
        parent: str,
        seed: int = 0,
        upserts: int = 0,
        deletes: int = 0,
        deadline: float | None = None,
    ) -> JobRecord:
        """Deprecated shim for :meth:`submit` with ``kind="delta"``."""
        warnings.warn(
            "LinkageService.submit_delta is deprecated; use "
            "submit('delta', parent=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit(
            "delta",
            parent=parent,
            seed=seed,
            upserts=upserts,
            deletes=deletes,
            deadline=deadline,
        )

    def _run_inline(self, record: JobRecord) -> JobRecord:
        """Degraded-mode execution: same transitions, same engine path,
        no queue and no worker process. Deadlines apply exactly as they
        do on workers — the run's token is checked at shard boundaries
        and an expired budget fails the job terminally."""
        runner = self._runner()
        record = self.store.transition(
            record.job_id,
            "running",
            expect="queued",
            attempts=record.attempts + 1,
            worker="inline",
            heartbeat_at=time.time(),
        )
        token = CancelToken(deadline=record.deadline)
        try:
            links, stats, result = runner.run(record, self.store, cancel=token)
        except Cancelled as cancelled:
            return self.store.transition(
                record.job_id,
                "failed",
                expect="running",
                error=cancelled.reason,
            )
        except SchemaGapError as error:
            # A rule about to run against a schema it has gaps on never
            # scores silently: the job fails with the structured report.
            return self.store.transition(
                record.job_id,
                "failed",
                expect="running",
                error=f"schema gap: {error}",
                result={"gap_report": error.report.to_payload()},
            )
        except (RegistryError, MigrationError) as error:
            # Registry state can't improve by retrying; inline runs have
            # no retry anyway, but the error prefix matches the workers'.
            return self.store.transition(
                record.job_id,
                "failed",
                expect="running",
                error=f"registry: {error}",
            )
        except Exception as error:
            return self.store.transition(
                record.job_id,
                "failed",
                expect="running",
                error=f"{type(error).__name__}: {error}",
            )
        self.store.save_links(record.job_id, links)
        return self.store.transition(
            record.job_id,
            "succeeded",
            expect="running",
            stats=stats,
            result=result,
            error=None,
        )

    def _runner(self) -> JobRunner:
        if self._inline_runner is None:
            self._inline_runner = JobRunner(
                self.cache_dir, rules_dir=self.rules_dir
            )
        return self._inline_runner

    # -- polling and results -----------------------------------------------
    def status(self, job_id: str) -> JobRecord:
        """The job's current record (raises ``KeyError`` if unknown)."""
        return self.store.get(job_id)

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll: float = 0.1,
        max_poll: float = 2.0,
    ) -> JobRecord:
        """Block until the job reaches a terminal state.

        Runs the reaper between polls (with a queue), so a submitter
        waiting on a crashed worker sees the retry happen rather than
        a silent hang; raises ``TimeoutError`` when the budget runs
        out first.

        Polling backs off exponentially from ``poll`` up to
        ``max_poll`` with jitter: short jobs still resolve within
        ~``poll`` seconds, while long waits converge to one jittered
        store read every couple of seconds instead of hammering the
        job store (and de-synchronise concurrent waiters) — a fixed
        0.1s busy-poll multiplied across clients was measurable I/O
        load for zero added latency benefit.
        """
        deadline = time.monotonic() + timeout
        interval = max(0.001, poll)
        jitter = random.Random()
        while True:
            record = self.store.get(job_id)
            if record.state in ("succeeded", "failed"):
                return record
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.state!r} after {timeout}s"
                )
            if self.queue is not None:
                recover_stale(self.store, self.queue, lease=self._lease)
            sleep_for = min(
                interval * jitter.uniform(0.8, 1.25), deadline - now
            )
            time.sleep(max(0.0, sleep_for))
            interval = min(max_poll, interval * 1.6)

    def links(self, job_id: str) -> list[GeneratedLink]:
        """A succeeded job's links, exact to the executing engine's
        output (``KeyError`` when the job has no stored links)."""
        return self.store.load_links(job_id)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs fail immediately, running jobs are
        flagged for cooperative cancellation (the executing worker's
        heartbeat loop relays the flag and the engine stops at its next
        shard boundary). Terminal jobs raise ``ValueError`` — there is
        nothing left to cancel."""
        record = self.store.get(job_id)
        if record.state == "queued":
            # The ticket stays in the queue; whichever worker claims it
            # sees the terminal record and drops it.
            return self.store.transition(
                job_id, "failed", expect="queued", error="cancelled"
            )
        if record.state == "running":
            return self.store.request_cancel(job_id)
        raise ValueError(
            f"job {job_id} is {record.state!r}; only queued or running "
            f"jobs can be cancelled"
        )

    def requeue(self, job_id: str) -> JobRecord:
        """Re-enqueue a ``queued`` job whose ticket was lost (operator
        escape hatch; inline services just re-run it)."""
        record = self.store.get(job_id)
        if record.state != "queued":
            raise ValueError(
                f"job {job_id} is {record.state!r}; only queued jobs requeue"
            )
        if self.queue is None:
            return self._run_inline(record)
        self.queue.submit(job_id, not_before=record.not_before)
        return record

    # -- health ------------------------------------------------------------
    def health(self) -> dict:
        """One structured snapshot of queue, store, workers and jobs.

        ``mode`` is ``"queue"`` or ``"inline"``; ``degraded_reason``
        explains an involuntary fallback. ``workers`` lists liveness
        records with a fresh heartbeat; ``store`` summarises the
        shared persistent cache (including its circuit-breaker state).

        ``degradations`` is the one schema every degraded path reports
        under: a list of ``{"component", "scope", "reason"}`` dicts,
        where ``component`` is ``"queue"`` (backend fell back to
        inline), ``"store"`` (a run recorded circuit-breaker trips via
        ``MatchStats.degraded``) or ``"registry"`` (a job failed on
        reference resolution or a schema gap), and ``scope`` is
        ``"service"`` for service-wide conditions or the affected job
        id. Empty means nothing degraded anywhere. Running the reaper
        first means the snapshot reflects recovered state, not stale
        claims.
        """
        if self.queue is not None:
            recover_stale(self.store, self.queue, lease=self._lease)
        store_info: dict | None = None
        if self.cache_dir:
            try:
                store_info = ColumnStore(self.cache_dir).describe()
            except OSError:  # pragma: no cover - unreadable cache dir
                store_info = None
        degradations: list[dict] = []
        if self._degraded_reason:
            degradations.append(
                {
                    "component": "queue",
                    "scope": "service",
                    "reason": self._degraded_reason,
                }
            )
        for record in self.store.records():
            for reason in (record.stats or {}).get("degraded") or []:
                degradations.append(
                    {
                        "component": "store",
                        "scope": record.job_id,
                        "reason": reason,
                    }
                )
            error = record.error or ""
            if record.state == "failed" and error.startswith(
                ("registry:", "schema gap:")
            ):
                degradations.append(
                    {
                        "component": "registry",
                        "scope": record.job_id,
                        "reason": error,
                    }
                )
        return {
            "mode": "inline" if self.queue is None else "queue",
            "degraded_reason": self._degraded_reason,
            "queue": None if self.queue is None else self.queue.describe(),
            "jobs": self.store.state_counts(),
            "workers": live_workers(self.root, lease=self._lease),
            "store": store_info,
            "degradations": degradations,
        }
