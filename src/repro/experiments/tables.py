"""Paper-style plain-text table formatting."""

from __future__ import annotations

from typing import Sequence


def format_value(value) -> str:
    """Render one table cell (None -> empty, floats compact)."""
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table like the paper's tables."""
    rendered_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)
