"""Command-line entry point: ``repro-experiments``.

Runs any of the paper's experiments from the shell and prints the
corresponding table, e.g.::

    repro-experiments datasets
    repro-experiments curve cora
    repro-experiments representations --datasets cora restaurant
    REPRO_SCALE=smoke repro-experiments seeding
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.datasets import DATASET_NAMES
from repro.engine.executor import WORKERS_ENV, parse_workers_spec
from repro.engine.store import CACHE_ENV, ColumnStore
from repro.matching.engine import BLOCKER_ENV
from repro.experiments import drivers
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table


def _print_dataset_statistics(args: argparse.Namespace) -> None:
    rows = drivers.dataset_statistics(seed=args.seed)
    print(
        format_table(
            ["Dataset", "|A|", "|B|", "|R+|", "|R-|", "|A.P|", "|B.P|", "CA", "CB"],
            [
                [
                    r["name"], r["entities_a"], r["entities_b"],
                    r["positive_links"], r["negative_links"],
                    r["properties_a"], r["properties_b"],
                    r["coverage_a"], r["coverage_b"],
                ]
                for r in rows
            ],
            title="Tables 5 & 6: dataset statistics",
        )
    )


def _print_learning_curve(args: argparse.Namespace) -> None:
    result = drivers.learning_curve(args.dataset, seed=args.seed)
    rows = [
        [
            row.iteration,
            row.seconds.format(1),
            row.train_f_measure.format(),
            row.validation_f_measure.format(),
        ]
        for row in result.rows
    ]
    print(
        format_table(
            ["Iter.", "Time in s (σ)", "Train. F1 (σ)", "Val. F1 (σ)"],
            rows,
            title=f"Learning curve: {args.dataset} ({result.runs} runs)",
        )
    )
    if args.baseline:
        reference = drivers.carvalho_reference(args.dataset, seed=args.seed)
        print(
            f"Carvalho et al. reference: train "
            f"{reference.train_f_measure.format()}, validation "
            f"{reference.validation_f_measure.format()}"
        )


def _print_representations(args: argparse.Namespace) -> None:
    table = drivers.representation_comparison(tuple(args.datasets), seed=args.seed)
    rows = [
        [name] + [table[name][r].format() for r in ("boolean", "linear", "nonlinear", "full")]
        for name in table
    ]
    print(
        format_table(
            ["Dataset", "Boolean", "Linear", "Nonlin.", "Full"],
            rows,
            title="Table 13: representation comparison (validation F1)",
        )
    )


def _print_seeding(args: argparse.Namespace) -> None:
    table = drivers.seeding_comparison(tuple(args.datasets), seed=args.seed)
    rows = [
        [name, table[name]["random"].format(), table[name]["seeded"].format()]
        for name in table
    ]
    print(
        format_table(
            ["Dataset", "Random", "Seeded"],
            rows,
            title="Table 14: initial population F1",
        )
    )


def _learn_rule(args: argparse.Namespace) -> None:
    """Learn one rule on a dataset; optionally prune/chart/export it."""
    import random

    from repro.core.evaluation import PairEvaluator
    from repro.core.genlink import GenLink, GenLinkConfig
    from repro.core.pruning import prune_rule
    from repro.core.serialization import render_rule
    from repro.data.splits import train_validation_split
    from repro.datasets import load_dataset
    from repro.experiments.figures import Series, line_chart
    from repro.silk import SilkInterlink, silk_config

    scale = current_scale()
    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=scale.effective_dataset_scale(0)
    )
    rng = random.Random(args.seed)
    train, validation = train_validation_split(dataset.links, rng)
    config = GenLinkConfig(
        population_size=scale.population_size,
        max_iterations=scale.max_iterations,
    )
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train, validation, rng=rng
    )
    rule = result.best_rule
    final = result.history[-1]
    print(render_rule(rule, title=f"learned rule ({args.dataset})"))
    print(
        f"\ntrain F1 {final.train_f_measure:.3f}, "
        f"validation F1 {final.validation_f_measure:.3f}, "
        f"{final.iteration} iteration(s)"
    )

    if args.prune:
        pairs, labels = train.labelled_pairs(dataset.source_a, dataset.source_b)
        pruned = prune_rule(rule, PairEvaluator(pairs), labels)
        print("\n" + pruned.describe())
        print(render_rule(pruned.rule, title="pruned rule"))
        rule = pruned.rule

    if args.execute:
        from repro.matching.engine import MatchingEngine
        from repro.matching.evaluation import evaluate_links

        engine = MatchingEngine()
        try:
            links = engine.execute(rule, dataset.source_a, dataset.source_b)
        finally:
            engine.close()
        stats = engine.last_run_stats()
        evaluation = evaluate_links(links, dataset.links.positive)
        print(
            f"\nexecuted over the full sources: {len(links)} link(s) from "
            f"{stats.pairs} candidate pair(s) in {stats.batches} shard(s)"
        )
        print(
            f"precision={evaluation.precision:.3f} "
            f"recall={evaluation.recall:.3f} F1={evaluation.f_measure:.3f}"
        )
        if stats.store is not None:
            store = stats.store
            print(
                f"[engine store] hits={store.hits} misses={store.misses} "
                f"writes={store.writes} index_hits={store.index_hits} "
                f"index_misses={store.index_misses}",
                file=sys.stderr,
            )

    if args.chart:
        iterations = tuple(float(r.iteration) for r in result.history)
        print()
        print(
            line_chart(
                [
                    Series(
                        "train F1",
                        iterations,
                        tuple(r.train_f_measure for r in result.history),
                    ),
                    Series(
                        "validation F1",
                        iterations,
                        tuple(
                            r.validation_f_measure
                            for r in result.history
                            if r.validation_f_measure is not None
                        ),
                    ),
                ],
                y_min=0.0,
                y_max=1.0,
                title=f"{args.dataset}: F-measure over iterations",
            )
        )

    if args.silk:
        interlink = SilkInterlink(
            id=args.dataset,
            rule=rule,
            source_dataset=dataset.source_a.name,
            target_dataset=dataset.source_b.name,
        )
        print()
        print(silk_config([interlink]))

    if args.publish:
        from repro.registry import RuleRegistry

        registry = RuleRegistry(_rules_dir(args))
        version = registry.publish(
            args.publish,
            rule,
            provenance={
                "dataset": args.dataset,
                "seed": args.seed,
                "scale": scale.effective_dataset_scale(0),
                "source_fingerprints": {
                    "a": dataset.source_a.fingerprint(),
                    "b": dataset.source_b.fingerprint(),
                },
                "train_f_measure": final.train_f_measure,
                "validation_f_measure": final.validation_f_measure,
                "iterations": final.iteration,
                "pruned": bool(args.prune),
            },
        )
        print(
            f"\npublished {version.ref} ({version.rule_hash[:12]}) "
            f"into {registry.root}"
        )


def _cache_maintenance(args: argparse.Namespace) -> None:
    """``cache info | gc | clear`` over the persistent column store."""
    path = os.environ.get(CACHE_ENV, "")
    if not path:
        print(
            f"no cache directory configured: pass --cache-dir or set "
            f"{CACHE_ENV}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    store = ColumnStore(path)
    if args.action == "info":
        info = store.describe()
        print(f"cache directory : {info['path']}")
        print(f"columns         : {info['columns']}")
        print(f"indexes         : {info['indexes']}")
        print(f"probe ledgers   : {info['probes']}")
        print(f"delta epochs    : {info['epochs']}")
        print(f"bytes           : {info['bytes']}")
    elif args.action == "gc":
        result = store.gc(
            max_age_days=args.max_age_days, max_bytes=args.max_bytes
        )
        print(
            f"removed {result.removed} column(s), freed "
            f"{result.freed_bytes} bytes; {result.kept} column(s) "
            f"({result.kept_bytes} bytes) kept"
        )
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} column(s)")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown cache action {args.action!r}")


def _run_delta(args: argparse.Namespace) -> None:
    """``delta``: cold run vs incremental re-run after a random delta."""
    import random
    import tempfile
    import time

    from repro.datasets import load_dataset
    from repro.experiments.scale import current_scale
    from repro.matching.engine import MatchingEngine
    from repro.matching.incremental import (
        dataset_rule,
        random_source_delta,
        rebuilt,
    )

    scale = current_scale()
    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=scale.effective_dataset_scale(0)
    )
    rule = dataset_rule(args.dataset)
    source_a, source_b = dataset.source_a, dataset.source_b
    dedup = source_a is source_b
    rng = random.Random(args.seed)

    # Index patching needs a persistent store shared by the cold and
    # delta runs; fall back to a throwaway one when none is configured.
    cache_dir = os.environ.get(CACHE_ENV, "")
    scratch = None if cache_dir else tempfile.TemporaryDirectory()
    engine = MatchingEngine(cache_dir=cache_dir or scratch.name)
    try:
        started = time.perf_counter()
        previous = list(engine.execute(rule, source_a, source_b))
        cold_seconds = time.perf_counter() - started
        cold_stats = engine.last_run_stats()

        delta_a = random_source_delta(
            source_a, rng, upserts=args.upserts, deletes=args.deletes
        )
        deltas_a = [delta_a]
        deltas_b = deltas_a if dedup else [
            random_source_delta(
                source_b, rng, upserts=args.upserts, deletes=args.deletes
            )
        ]
        started = time.perf_counter()
        diff = engine.link_diff(
            rule, source_a, source_b, previous,
            deltas_a=deltas_a, deltas_b=deltas_b,
        )
        delta_seconds = time.perf_counter() - started
        stats = diff.stats
    finally:
        engine.close()
        if scratch is not None:
            scratch.cleanup()

    changed = {u for d in deltas_a for u in d.changed_uids}
    if not dedup:
        changed |= {u for d in deltas_b for u in d.changed_uids}
    print(
        f"cold run        : {len(previous)} link(s) from "
        f"{cold_stats.pairs} pair(s) in {cold_seconds:.3f}s"
    )
    print(
        f"delta applied   : {len(changed)} changed uid(s) "
        f"({args.upserts} upsert(s), {args.deletes} delete(s) per side)"
    )
    affected = (
        "all (full re-run)"
        if diff.affected_uids is None
        else str(len(diff.affected_uids))
    )
    print(
        f"incremental run : {len(diff.links)} link(s), "
        f"{diff.rescored_pairs} pair(s) re-scored, "
        f"{diff.kept_links} link(s) carried over in {delta_seconds:.3f}s"
    )
    speedup = cold_seconds / delta_seconds if delta_seconds > 0 else float("inf")
    print(f"affected probes : {affected}")
    print(
        f"diff            : +{len(diff.added)} -{len(diff.removed)} "
        f"={len(diff.unchanged)}"
    )
    print(f"speedup         : {speedup:.1f}x")
    if stats is not None:
        print(
            f"index reuse     : {stats.index_patches} patched, "
            f"{stats.index_builds} rebuilt (window depth "
            f"{stats.window_depth})"
        )
        if stats.store is not None:
            store = stats.store
            print(
                f"[engine store] hits={store.hits} misses={store.misses} "
                f"writes={store.writes} index_hits={store.index_hits} "
                f"index_misses={store.index_misses} "
                f"probe_hits={store.probe_hits} "
                f"probe_misses={store.probe_misses}",
                file=sys.stderr,
            )
    if args.verify:
        verifier = MatchingEngine()
        try:
            # One rebuilt object per distinct source: a dedup run must
            # stay a dedup run (source_a is source_b) after the rebuild.
            cold_a = rebuilt(source_a)
            cold_b = cold_a if dedup else rebuilt(source_b)
            cold = list(verifier.execute(rule, cold_a, cold_b))
        finally:
            verifier.close()
        identical = [
            (l.uid_a, l.uid_b, l.score) for l in diff.links
        ] == [(l.uid_a, l.uid_b, l.score) for l in cold]
        print(f"verification    : {'identical to cold rerun' if identical else 'MISMATCH'}")
        if not identical:
            raise SystemExit(1)


def _service_dir(args: argparse.Namespace) -> str:
    """The service directory a service command operates on (CLI flag,
    then ``REPRO_SERVICE_DIR``)."""
    from repro.service import SERVICE_DIR_ENV

    path = args.service_dir or os.environ.get(SERVICE_DIR_ENV, "")
    if not path:
        print(
            f"no service directory: pass --service-dir or set "
            f"{SERVICE_DIR_ENV}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return path


def _open_service(args: argparse.Namespace):
    from repro.service import LinkageService

    return LinkageService(
        root=_service_dir(args),
        queue=getattr(args, "queue", None),
        rules_dir=getattr(args, "rules_dir", None),
    )


def _rules_dir(args: argparse.Namespace) -> str:
    """The registry directory a command operates on: ``--rules-dir``,
    then ``REPRO_RULES_DIR``, then ``<service dir>/rules`` when a
    service directory is in reach."""
    from repro.registry import RULES_DIR_ENV, resolve_rules_dir
    from repro.service import SERVICE_DIR_ENV

    service_dir = getattr(args, "service_dir", None) or os.environ.get(
        SERVICE_DIR_ENV, ""
    )
    path = resolve_rules_dir(
        getattr(args, "rules_dir", None),
        default=os.path.join(service_dir, "rules") if service_dir else None,
    )
    if path is None:
        print(
            f"no rules directory: pass --rules-dir or set {RULES_DIR_ENV}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return str(path)


def _run_service_worker(
    root: str,
    worker_id: str,
    cache_dir: str,
    rules_dir: str,
    drain: bool,
    lease: float,
) -> None:
    """Entry point of one spawned worker process (module-level so the
    multiprocessing start method can import it)."""
    from repro.service import run_worker

    run_worker(
        root,
        worker_id=worker_id,
        cache_dir=cache_dir,
        rules_dir=rules_dir,
        drain=drain,
        lease=lease,
    )


def _serve(args: argparse.Namespace) -> None:
    """``serve``: run N queue workers over a service directory."""
    import multiprocessing

    service = _open_service(args)
    if service.inline:
        reason = service.degraded_reason or "inline queue requested"
        print(
            f"no queue backend to serve ({reason}); submissions to this "
            f"directory will execute inline",
            file=sys.stderr,
        )
        raise SystemExit(2)
    count = max(1, args.service_workers)
    print(
        f"serving {service.root} with {count} worker(s) "
        f"[queue={service.queue.name} cache={service.cache_dir}"
        f"{' drain' if args.drain else ''}]",
        file=sys.stderr,
    )
    processes = [
        multiprocessing.Process(
            target=_run_service_worker,
            args=(
                str(service.root),
                f"worker-{index}",
                service.cache_dir,
                service.rules_dir,
                args.drain,
                args.lease,
            ),
            name=f"repro-worker-{index}",
        )
        for index in range(count)
    ]
    for process in processes:
        process.start()
    try:
        for process in processes:
            process.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        for process in processes:
            process.terminate()
        for process in processes:
            process.join()
    failed = [p.name for p in processes if p.exitcode not in (0, None)]
    if failed:
        raise SystemExit(f"worker process(es) exited nonzero: {failed}")


def _submit(args: argparse.Namespace) -> None:
    """``submit``: create a job (link, learn, or delta) and optionally
    wait for its terminal state."""
    if args.rule and args.rule_json:
        print(
            "--rule and --rule-json are mutually exclusive: a job runs "
            "either a registry reference or an inline rule file, not both",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if args.learn and (args.rule or args.rule_json):
        print(
            "--learn jobs learn their rule; --rule/--rule-json do not apply",
            file=sys.stderr,
        )
        raise SystemExit(2)
    service = _open_service(args)
    try:
        if args.parent:
            record = service.submit(
                "delta",
                parent=args.parent,
                seed=args.seed,
                upserts=args.upserts,
                deletes=args.deletes,
                deadline=args.deadline,
            )
        else:
            if not args.dataset:
                print(
                    "submit needs a dataset (or --parent for delta jobs)",
                    file=sys.stderr,
                )
                raise SystemExit(2)
            rule: str | dict | None = args.rule
            if args.rule_json:
                import json

                rule = json.loads(
                    open(args.rule_json, encoding="utf-8").read()
                )
            if args.learn:
                record = service.submit(
                    "learn",
                    dataset=args.dataset,
                    seed=args.seed,
                    scale=args.scale,
                    population_size=args.population,
                    iterations=args.iterations,
                    publish=args.publish,
                    deadline=args.deadline,
                )
            else:
                record = service.submit(
                    "link",
                    dataset=args.dataset,
                    seed=args.seed,
                    scale=args.scale,
                    rule=rule,
                    deadline=args.deadline,
                )
        if args.wait and record.state not in ("succeeded", "failed"):
            record = service.wait(record.job_id, timeout=args.timeout)
        print(f"{record.job_id} {record.state}")
        if record.state == "failed":
            print(f"error: {record.error}", file=sys.stderr)
            raise SystemExit(1)
    finally:
        service.close()


def _job_stats_lines(record) -> list[str]:
    """Human-readable stat lines of one job record (plus the greppable
    ``[job store]`` counter line the CI smoke leg asserts on)."""
    lines: list[str] = []
    ref = (record.result or {}).get("rule_ref") or record.spec.get("rule_ref")
    if ref:
        rule_hash = (record.result or {}).get("rule_hash") or record.spec.get(
            "rule_hash"
        )
        suffix = f" {rule_hash[:12]}" if rule_hash else ""
        lines.append(f"  rule: {ref}{suffix}")
    stats = record.stats or {}
    if stats:
        lines.append(
            f"  pairs={stats.get('pairs')} links={stats.get('links')} "
            f"batches={stats.get('batches')} "
            f"index_builds={stats.get('index_builds')} "
            f"index_patches={stats.get('index_patches')}"
        )
        store = stats.get("store")
        if store:
            lines.append(
                f"  [job store] hits={store['hits']} "
                f"misses={store['misses']} writes={store['writes']} "
                f"index_hits={store['index_hits']} "
                f"index_misses={store['index_misses']} "
                f"probe_hits={store['probe_hits']} "
                f"probe_misses={store['probe_misses']}"
            )
        degraded = stats.get("degraded")
        if degraded:
            lines.append(f"  degraded: {'; '.join(degraded)}")
    if record.result:
        summary = {
            key: value
            for key, value in record.result.items()
            if key != "rule"
        }
        lines.append(f"  result: {summary}")
    if record.error:
        lines.append(f"  error: {record.error}")
    return lines


def _status(args: argparse.Namespace) -> None:
    """``status``: one job's record, or a table of every job."""
    service = _open_service(args)
    if args.job_id:
        record = service.status(args.job_id)
        print(
            f"{record.job_id} {record.kind} {record.state} "
            f"attempts={record.attempts}/{record.max_attempts} "
            f"worker={record.worker or '-'}"
        )
        for line in _job_stats_lines(record):
            print(line)
        return
    rows = [
        [
            record.job_id,
            record.kind,
            record.state,
            f"{record.attempts}/{record.max_attempts}",
            record.worker or "-",
            (record.result or {}).get("links", "-"),
        ]
        for record in service.store.records()
    ]
    print(
        format_table(
            ["Job", "Kind", "State", "Attempts", "Worker", "Links"],
            rows,
            title=f"jobs in {service.root}",
        )
    )


def _links_cmd(args: argparse.Namespace) -> None:
    """``links``: print a job's stored links — or, with ``--direct``, a
    direct in-process ``MatchingEngine.execute`` over the same inputs,
    in the identical format (the byte-parity check's other half).
    ``--direct --rule`` resolves the executed rule from the registry,
    so a registry-backed job has a bypass-the-service oracle too."""
    if args.direct:
        from repro.datasets import load_dataset
        from repro.matching.engine import MatchingEngine
        from repro.matching.incremental import dataset_rule

        if args.target not in DATASET_NAMES:
            print(
                f"--direct takes a dataset name, got {args.target!r}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        if args.rule:
            from repro.registry import RegistryError, RuleRegistry

            try:
                rule = (
                    RuleRegistry(_rules_dir(args))
                    .resolve(args.rule)
                    .linkage_rule()
                )
            except RegistryError as error:
                print(f"registry: {error}", file=sys.stderr)
                raise SystemExit(1)
        else:
            rule = dataset_rule(args.target)
        dataset = load_dataset(args.target, seed=args.seed, scale=args.scale)
        engine = MatchingEngine()
        try:
            links = engine.execute(
                rule, dataset.source_a, dataset.source_b
            )
        finally:
            engine.close()
    else:
        service = _open_service(args)
        links = service.links(args.target)
    for link in links:
        print(f"{link.uid_a}\t{link.uid_b}\t{link.score!r}")


def _cancel(args: argparse.Namespace) -> None:
    """``cancel``: fail a queued job now, or flag a running one."""
    service = _open_service(args)
    try:
        record = service.cancel(args.job_id)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        raise SystemExit(1)
    if record.state == "running":
        print(f"{record.job_id} running (cancellation requested)")
    else:
        print(f"{record.job_id} {record.state}")


def _health(args: argparse.Namespace) -> None:
    """``health``: the service's queue/store/worker/job snapshot."""
    import json

    service = _open_service(args)
    print(json.dumps(service.health(), indent=2, sort_keys=True))


def _rules_cmd(args: argparse.Namespace) -> None:
    """``rules``: manage the multi-tenant rule registry.

    ``publish`` appends the next version of a lineage, ``activate``
    flips its ``@active`` pointer, ``list``/``show``/``diff`` inspect
    what's stored, and ``migrate`` re-validates a stored version
    against a dataset's live schema (``--check`` exits nonzero on
    gaps; ``--apply`` publishes the auto-patched rule as the next
    version). Output stays machine-greppable like the other service
    commands."""
    import json

    from repro.registry import (
        MigrationError,
        RefError,
        RegistryError,
        RuleRegistry,
        migrate_version,
    )

    registry = RuleRegistry(_rules_dir(args))
    try:
        if args.rules_command == "publish":
            if args.from_json:
                rule = json.loads(
                    open(args.from_json, encoding="utf-8").read()
                )
            else:
                from repro.matching.incremental import dataset_rule

                rule = dataset_rule(args.dataset)
            provenance = {"published_by": "cli"}
            if args.dataset:
                provenance["dataset"] = args.dataset
            version = registry.publish(args.ref, rule, provenance=provenance)
            if args.activate:
                registry.activate(version.ref)
            active = " active" if args.activate else ""
            print(f"{version.ref} {version.rule_hash}{active}")
        elif args.rules_command == "list":
            from repro.registry import RuleRef

            tenant = scenario = None
            if args.prefix:
                parts = args.prefix.split("/")
                if len(parts) > 2:
                    print(
                        f"list takes tenant[/scenario], got {args.prefix!r}",
                        file=sys.stderr,
                    )
                    raise SystemExit(2)
                tenant = parts[0]
                scenario = parts[1] if len(parts) == 2 else None
            rows = []
            for lineage in registry.lineages(tenant, scenario):
                versions = registry.versions(lineage)
                active = registry.active_version(lineage)
                rows.append(
                    [
                        lineage.lineage,
                        len(versions),
                        f"v{active}" if active else "-",
                    ]
                )
            print(
                format_table(
                    ["Lineage", "Versions", "Active"],
                    rows,
                    title=f"lineages in {registry.root}",
                )
            )
        elif args.rules_command == "show":
            from repro.core.serialization import render_rule

            version = registry.resolve(args.ref)
            print(f"{version.ref} {version.rule_hash}")
            active = registry.active_version(version.ref)
            print(f"active: {'v' + str(active) if active else '-'}")
            if version.provenance:
                print("provenance:")
                for key in sorted(version.provenance):
                    print(f"  {key}: {version.provenance[key]}")
            print(render_rule(version.linkage_rule(), title=str(version.ref)))
        elif args.rules_command == "activate":
            version = registry.activate(args.ref)
            print(f"{version.ref} active")
        elif args.rules_command == "diff":
            lines = registry.diff(args.ref_a, args.ref_b)
            if not lines:
                print(f"{args.ref_a} and {args.ref_b} are identical")
            for line in lines:
                print(line)
        elif args.rules_command == "migrate":
            from repro.datasets import load_dataset

            dataset = load_dataset(
                args.dataset, seed=args.seed, scale=args.scale
            )
            report, published = migrate_version(
                registry,
                args.ref,
                dataset.source_a,
                dataset.source_b,
                apply=args.apply,
            )
            print(report.describe())
            if published is not None:
                print(f"published {published.ref} {published.rule_hash}")
                diff = published.provenance.get("migration_diff") or []
                for line in diff:
                    print(line)
            if not report.ok and (args.check or not args.apply):
                raise SystemExit(1)
        else:  # pragma: no cover - argparse restricts choices
            raise SystemExit(f"unknown rules command {args.rules_command!r}")
    except (RefError, ValueError) as error:
        print(str(error), file=sys.stderr)
        raise SystemExit(2)
    except MigrationError as error:
        print(f"migration: {error}", file=sys.stderr)
        raise SystemExit(1)
    except RegistryError as error:
        print(f"registry: {error}", file=sys.stderr)
        raise SystemExit(1)


def _print_crossover(args: argparse.Namespace) -> None:
    comparisons = drivers.crossover_comparison(tuple(args.datasets), seed=args.seed)
    for iteration_index in range(2):
        rows = []
        for comparison in comparisons:
            iteration = comparison.iterations[iteration_index]
            rows.append(
                [
                    comparison.dataset,
                    comparison.subtree[iteration].format(),
                    comparison.specialised[iteration].format(),
                ]
            )
        iteration = comparisons[0].iterations[iteration_index] if comparisons else 0
        print(
            format_table(
                ["Dataset", "Subtree C.", "Our Approach"],
                rows,
                title=f"Table 15: crossover comparison at {iteration} iterations",
            )
        )
        print()


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-experiments`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the GenLink paper's experiments.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        default=None,
        metavar="SPEC",
        help="engine executor: 0/serial, N or thread:N (thread pool; "
        "parallelises fitness evaluation and link generation) or "
        "process:N (process pool; parallelises link-generation "
        "sharding only — learning runs serially); results are "
        "identical for every setting (default: the "
        f"{WORKERS_ENV} environment variable)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent distance-column/blocking-index store: repeated "
        "runs over the same sources load cached columns and indexes "
        "instead of rebuilding them (results are byte-identical either "
        f"way; default: the {CACHE_ENV} environment variable)",
    )
    parser.add_argument(
        "--blocker",
        default=None,
        choices=("auto", "multiblock", "rule", "full"),
        help="default blocking strategy for link generation: auto "
        "(rule-structure-aware selection), multiblock (aggregation-"
        "aware multidimensional indexes), rule (token blocking on the "
        "compared properties) or full (no blocking; exact but "
        f"quadratic). Default: the {BLOCKER_ENV} environment variable",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="Tables 5 & 6")

    curve = subparsers.add_parser("curve", help="Tables 7-12")
    curve.add_argument("dataset", choices=DATASET_NAMES)
    curve.add_argument(
        "--baseline", action="store_true", help="also run the Carvalho baseline"
    )

    for name, help_text in (
        ("representations", "Table 13"),
        ("seeding", "Table 14"),
        ("crossover", "Table 15"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--datasets", nargs="+", choices=DATASET_NAMES,
            default=list(DATASET_NAMES),
        )

    learn = subparsers.add_parser(
        "learn", help="learn one rule on a dataset and inspect it"
    )
    learn.add_argument("dataset", choices=DATASET_NAMES)
    learn.add_argument(
        "--prune", action="store_true", help="prune the learned rule"
    )
    learn.add_argument(
        "--chart", action="store_true", help="ASCII learning-curve chart"
    )
    learn.add_argument(
        "--silk", action="store_true", help="print a Silk-LSL configuration"
    )
    learn.add_argument(
        "--execute",
        action="store_true",
        help="execute the learned rule over the full sources (uses the "
        "--blocker strategy) and report link quality",
    )
    learn.add_argument(
        "--publish", default=None, metavar="REF",
        help="publish the learned (post-prune) rule into this registry "
        "lineage (tenant/scenario/name)",
    )
    learn.add_argument(
        "--rules-dir", default=None, metavar="PATH",
        help="--publish registry directory (default: REPRO_RULES_DIR, "
        "then <REPRO_SERVICE_DIR>/rules)",
    )

    delta = subparsers.add_parser(
        "delta",
        help="incremental matching demo: cold run, random source delta, "
        "then link_diff re-scoring only the affected candidates",
    )
    delta.add_argument("dataset", choices=DATASET_NAMES)
    delta.add_argument(
        "--upserts", type=int, default=10,
        help="entities to revise/insert per side (default 10)",
    )
    delta.add_argument(
        "--deletes", type=int, default=5,
        help="entities to delete per side (default 5)",
    )
    delta.add_argument(
        "--verify", action="store_true",
        help="also cold-rerun over rebuilt sources and assert the "
        "incremental links are byte-identical",
    )

    def add_service_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--service-dir",
            default=None,
            metavar="PATH",
            help="service directory holding job records, queue tickets "
            "and worker heartbeats (default: the REPRO_SERVICE_DIR "
            "environment variable)",
        )
        sub.add_argument(
            "--queue",
            default=None,
            choices=("file", "redis", "inline"),
            help="queue backend: file (atomic-rename tickets, the "
            "default), redis (degrades to inline when unavailable) or "
            "inline (execute submissions in-process). Default: the "
            "REPRO_SERVICE_QUEUE environment variable",
        )
        sub.add_argument(
            "--rules-dir",
            default=None,
            metavar="PATH",
            help="rule registry directory jobs resolve --rule "
            "references from (default: REPRO_RULES_DIR, then "
            "<service dir>/rules)",
        )

    serve = subparsers.add_parser(
        "serve",
        help="run queue workers over a service directory "
        "(linkage-as-a-service)",
    )
    add_service_arguments(serve)
    serve.add_argument(
        "--service-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes to run (default 2); all share the "
        "--cache-dir column store",
    )
    serve.add_argument(
        "--drain",
        action="store_true",
        help="exit once the queue is empty instead of serving forever",
    )
    serve.add_argument(
        "--lease",
        type=float,
        default=30.0,
        help="seconds without a heartbeat before a running job's claim "
        "is considered lost and retried (default 30)",
    )

    submit = subparsers.add_parser(
        "submit", help="submit a job to a service directory"
    )
    add_service_arguments(submit)
    submit.add_argument(
        "dataset", nargs="?", choices=DATASET_NAMES,
        help="bundled dataset to link (omit for --parent delta jobs)",
    )
    submit.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (default 1.0)",
    )
    submit.add_argument(
        "--rule-json", default=None, metavar="PATH",
        help="JSON rule to execute (default: the dataset's gate rule)",
    )
    submit.add_argument(
        "--rule", default=None, metavar="REF",
        help="registry reference to execute "
        "(tenant/scenario/name[@vN|@active]); resolved and pinned at "
        "submission time. Mutually exclusive with --rule-json",
    )
    submit.add_argument(
        "--learn", action="store_true",
        help="learn a rule with GenLink before executing it",
    )
    submit.add_argument(
        "--publish", default=None, metavar="REF",
        help="--learn jobs: publish the learned rule into this "
        "registry lineage (tenant/scenario/name)",
    )
    submit.add_argument(
        "--population", type=int, default=20,
        help="--learn population size (default 20)",
    )
    submit.add_argument(
        "--iterations", type=int, default=5,
        help="--learn iteration budget (default 5)",
    )
    submit.add_argument(
        "--parent", default=None, metavar="JOB",
        help="submit a delta job against this succeeded job's links",
    )
    submit.add_argument(
        "--upserts", type=int, default=10,
        help="delta jobs: entities to revise/insert per side (default 10)",
    )
    submit.add_argument(
        "--deletes", type=int, default=5,
        help="delta jobs: entities to delete per side (default 5)",
    )
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget; an exceeded budget fails "
        "the job terminally with error=deadline (default: the "
        "REPRO_JOB_DEADLINE environment variable, else unbounded)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait budget in seconds (default 600)",
    )

    status = subparsers.add_parser(
        "status", help="job states and per-job MatchStats of a service"
    )
    add_service_arguments(status)
    status.add_argument(
        "job_id", nargs="?", default=None,
        help="job to inspect (omit for a table of every job)",
    )

    cancel = subparsers.add_parser(
        "cancel",
        help="cancel a queued job immediately or flag a running job "
        "for cooperative cancellation",
    )
    add_service_arguments(cancel)
    cancel.add_argument("job_id", help="job to cancel")

    links = subparsers.add_parser(
        "links", help="print a job's generated links"
    )
    add_service_arguments(links)
    links.add_argument(
        "target",
        help="job id — or, with --direct, a dataset name",
    )
    links.add_argument(
        "--direct", action="store_true",
        help="bypass the service: execute the dataset's gate rule "
        "in-process and print links in the identical format (for "
        "byte-parity checks against a service job)",
    )
    links.add_argument(
        "--scale", type=float, default=1.0,
        help="--direct dataset scale factor (default 1.0)",
    )
    links.add_argument(
        "--rule", default=None, metavar="REF",
        help="--direct: execute this registry reference instead of the "
        "dataset's gate rule",
    )

    health = subparsers.add_parser(
        "health", help="queue/store/worker health snapshot of a service"
    )
    add_service_arguments(health)

    rules = subparsers.add_parser(
        "rules",
        help="manage the multi-tenant rule registry (versioned "
        "lineages, activation, schema migration)",
    )
    rules.add_argument(
        "--rules-dir",
        default=None,
        metavar="PATH",
        help="registry directory (default: REPRO_RULES_DIR, then "
        "<REPRO_SERVICE_DIR>/rules)",
    )
    rules_sub = rules.add_subparsers(dest="rules_command", required=True)
    rules_publish = rules_sub.add_parser(
        "publish", help="publish a rule as a lineage's next version"
    )
    rules_publish.add_argument(
        "ref", help="lineage to publish into (tenant/scenario/name)"
    )
    rules_publish.add_argument(
        "--from-json", default=None, metavar="PATH",
        help="JSON rule file to publish",
    )
    rules_publish.add_argument(
        "--dataset", default=None, choices=DATASET_NAMES,
        help="publish the dataset's gate rule instead of a file",
    )
    rules_publish.add_argument(
        "--activate", action="store_true",
        help="also point the lineage's @active at the new version",
    )
    rules_list = rules_sub.add_parser(
        "list", help="table of lineages, version counts and activations"
    )
    rules_list.add_argument(
        "prefix", nargs="?", default=None,
        help="optional tenant[/scenario] filter",
    )
    rules_show = rules_sub.add_parser(
        "show", help="one version's hash, provenance and rendered tree"
    )
    rules_show.add_argument("ref", help="tenant/scenario/name[@vN|@active]")
    rules_activate = rules_sub.add_parser(
        "activate", help="point a lineage's @active at a pinned version"
    )
    rules_activate.add_argument("ref", help="tenant/scenario/name@vN")
    rules_diff = rules_sub.add_parser(
        "diff", help="structural diff between two stored versions"
    )
    rules_diff.add_argument("ref_a")
    rules_diff.add_argument("ref_b")
    rules_migrate = rules_sub.add_parser(
        "migrate",
        help="re-validate a stored version against a dataset's live "
        "schema; exits nonzero on gaps with the per-node report",
    )
    rules_migrate.add_argument("ref", help="tenant/scenario/name[@vN|@active]")
    rules_migrate.add_argument(
        "--dataset", required=True, choices=DATASET_NAMES,
        help="dataset whose schemas to check against",
    )
    rules_migrate.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (default 1.0)",
    )
    rules_migrate.add_argument(
        "--check", action="store_true",
        help="report-only gate: exit 1 when gaps exist (the default "
        "behaviour without --apply, spelled out for CI legs)",
    )
    rules_migrate.add_argument(
        "--apply", action="store_true",
        help="publish the auto-patched rule as the lineage's next "
        "version (provenance records the gaps, edits and diff)",
    )

    cache = subparsers.add_parser(
        "cache",
        help="inspect / garbage-collect / clear the persistent "
        "distance-column store",
    )
    cache.add_argument("action", choices=("info", "gc", "clear"))
    cache.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc: drop columns not used within this many days",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: drop least-recently-used columns until the store "
        "fits this byte budget",
    )

    args = parser.parse_args(argv)
    if args.workers is not None:
        # Validate eagerly for a clean CLI error, then hand the spec to
        # every engine session created below via the environment.
        try:
            parse_workers_spec(args.workers)
        except ValueError as error:
            parser.error(str(error))
        os.environ[WORKERS_ENV] = args.workers
    if args.cache_dir is not None:
        # Hand the cache dir to every engine session created below (and
        # to process-pool workers, which inherit the environment).
        os.environ[CACHE_ENV] = args.cache_dir
    if args.blocker is not None:
        # Same pattern: every matching engine created below (and in
        # worker processes) resolves its default blocker from this.
        os.environ[BLOCKER_ENV] = args.blocker
    service_handlers = {
        "serve": _serve,
        "submit": _submit,
        "status": _status,
        "cancel": _cancel,
        "links": _links_cmd,
        "health": _health,
        "rules": _rules_cmd,
    }
    if args.command == "cache":
        _cache_maintenance(args)
        return 0
    if args.command in service_handlers:
        # Service commands keep stdout machine-readable (job ids, link
        # triples, health JSON) — no scale/cache banners.
        service_handlers[args.command](args)
        return 0
    print(f"[scale: {current_scale().name}]")
    workers_spec = os.environ.get(WORKERS_ENV, "")
    if workers_spec:
        print(f"[workers: {workers_spec}]")
    cache_spec = os.environ.get(CACHE_ENV, "")
    if cache_spec:
        print(f"[cache: {cache_spec}]")
    blocker_spec = os.environ.get(BLOCKER_ENV, "")
    if blocker_spec:
        print(f"[blocker: {blocker_spec}]")
    handlers = {
        "datasets": _print_dataset_statistics,
        "curve": _print_learning_curve,
        "representations": _print_representations,
        "seeding": _print_seeding,
        "crossover": _print_crossover,
        "learn": _learn_rule,
        "delta": _run_delta,
    }
    handlers[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
