"""Command-line entry point: ``repro-experiments``.

Runs any of the paper's experiments from the shell and prints the
corresponding table, e.g.::

    repro-experiments datasets
    repro-experiments curve cora
    repro-experiments representations --datasets cora restaurant
    REPRO_SCALE=smoke repro-experiments seeding
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.datasets import DATASET_NAMES
from repro.engine.executor import WORKERS_ENV, parse_workers_spec
from repro.engine.store import CACHE_ENV, ColumnStore
from repro.matching.engine import BLOCKER_ENV
from repro.experiments import drivers
from repro.experiments.scale import current_scale
from repro.experiments.tables import format_table


def _print_dataset_statistics(args: argparse.Namespace) -> None:
    rows = drivers.dataset_statistics(seed=args.seed)
    print(
        format_table(
            ["Dataset", "|A|", "|B|", "|R+|", "|R-|", "|A.P|", "|B.P|", "CA", "CB"],
            [
                [
                    r["name"], r["entities_a"], r["entities_b"],
                    r["positive_links"], r["negative_links"],
                    r["properties_a"], r["properties_b"],
                    r["coverage_a"], r["coverage_b"],
                ]
                for r in rows
            ],
            title="Tables 5 & 6: dataset statistics",
        )
    )


def _print_learning_curve(args: argparse.Namespace) -> None:
    result = drivers.learning_curve(args.dataset, seed=args.seed)
    rows = [
        [
            row.iteration,
            row.seconds.format(1),
            row.train_f_measure.format(),
            row.validation_f_measure.format(),
        ]
        for row in result.rows
    ]
    print(
        format_table(
            ["Iter.", "Time in s (σ)", "Train. F1 (σ)", "Val. F1 (σ)"],
            rows,
            title=f"Learning curve: {args.dataset} ({result.runs} runs)",
        )
    )
    if args.baseline:
        reference = drivers.carvalho_reference(args.dataset, seed=args.seed)
        print(
            f"Carvalho et al. reference: train "
            f"{reference.train_f_measure.format()}, validation "
            f"{reference.validation_f_measure.format()}"
        )


def _print_representations(args: argparse.Namespace) -> None:
    table = drivers.representation_comparison(tuple(args.datasets), seed=args.seed)
    rows = [
        [name] + [table[name][r].format() for r in ("boolean", "linear", "nonlinear", "full")]
        for name in table
    ]
    print(
        format_table(
            ["Dataset", "Boolean", "Linear", "Nonlin.", "Full"],
            rows,
            title="Table 13: representation comparison (validation F1)",
        )
    )


def _print_seeding(args: argparse.Namespace) -> None:
    table = drivers.seeding_comparison(tuple(args.datasets), seed=args.seed)
    rows = [
        [name, table[name]["random"].format(), table[name]["seeded"].format()]
        for name in table
    ]
    print(
        format_table(
            ["Dataset", "Random", "Seeded"],
            rows,
            title="Table 14: initial population F1",
        )
    )


def _learn_rule(args: argparse.Namespace) -> None:
    """Learn one rule on a dataset; optionally prune/chart/export it."""
    import random

    from repro.core.evaluation import PairEvaluator
    from repro.core.genlink import GenLink, GenLinkConfig
    from repro.core.pruning import prune_rule
    from repro.core.serialization import render_rule
    from repro.data.splits import train_validation_split
    from repro.datasets import load_dataset
    from repro.experiments.figures import Series, line_chart
    from repro.silk import SilkInterlink, silk_config

    scale = current_scale()
    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=scale.effective_dataset_scale(0)
    )
    rng = random.Random(args.seed)
    train, validation = train_validation_split(dataset.links, rng)
    config = GenLinkConfig(
        population_size=scale.population_size,
        max_iterations=scale.max_iterations,
    )
    result = GenLink(config).learn(
        dataset.source_a, dataset.source_b, train, validation, rng=rng
    )
    rule = result.best_rule
    final = result.history[-1]
    print(render_rule(rule, title=f"learned rule ({args.dataset})"))
    print(
        f"\ntrain F1 {final.train_f_measure:.3f}, "
        f"validation F1 {final.validation_f_measure:.3f}, "
        f"{final.iteration} iteration(s)"
    )

    if args.prune:
        pairs, labels = train.labelled_pairs(dataset.source_a, dataset.source_b)
        pruned = prune_rule(rule, PairEvaluator(pairs), labels)
        print("\n" + pruned.describe())
        print(render_rule(pruned.rule, title="pruned rule"))
        rule = pruned.rule

    if args.execute:
        from repro.matching.engine import MatchingEngine
        from repro.matching.evaluation import evaluate_links

        engine = MatchingEngine()
        try:
            links = engine.execute(rule, dataset.source_a, dataset.source_b)
        finally:
            engine.close()
        stats = engine.last_run_stats()
        evaluation = evaluate_links(links, dataset.links.positive)
        print(
            f"\nexecuted over the full sources: {len(links)} link(s) from "
            f"{stats.pairs} candidate pair(s) in {stats.batches} shard(s)"
        )
        print(
            f"precision={evaluation.precision:.3f} "
            f"recall={evaluation.recall:.3f} F1={evaluation.f_measure:.3f}"
        )
        if stats.store is not None:
            store = stats.store
            print(
                f"[engine store] hits={store.hits} misses={store.misses} "
                f"writes={store.writes} index_hits={store.index_hits} "
                f"index_misses={store.index_misses}",
                file=sys.stderr,
            )

    if args.chart:
        iterations = tuple(float(r.iteration) for r in result.history)
        print()
        print(
            line_chart(
                [
                    Series(
                        "train F1",
                        iterations,
                        tuple(r.train_f_measure for r in result.history),
                    ),
                    Series(
                        "validation F1",
                        iterations,
                        tuple(
                            r.validation_f_measure
                            for r in result.history
                            if r.validation_f_measure is not None
                        ),
                    ),
                ],
                y_min=0.0,
                y_max=1.0,
                title=f"{args.dataset}: F-measure over iterations",
            )
        )

    if args.silk:
        interlink = SilkInterlink(
            id=args.dataset,
            rule=rule,
            source_dataset=dataset.source_a.name,
            target_dataset=dataset.source_b.name,
        )
        print()
        print(silk_config([interlink]))


def _cache_maintenance(args: argparse.Namespace) -> None:
    """``cache info | gc | clear`` over the persistent column store."""
    path = os.environ.get(CACHE_ENV, "")
    if not path:
        print(
            f"no cache directory configured: pass --cache-dir or set "
            f"{CACHE_ENV}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    store = ColumnStore(path)
    if args.action == "info":
        info = store.describe()
        print(f"cache directory : {info['path']}")
        print(f"columns         : {info['columns']}")
        print(f"indexes         : {info['indexes']}")
        print(f"probe ledgers   : {info['probes']}")
        print(f"delta epochs    : {info['epochs']}")
        print(f"bytes           : {info['bytes']}")
    elif args.action == "gc":
        result = store.gc(
            max_age_days=args.max_age_days, max_bytes=args.max_bytes
        )
        print(
            f"removed {result.removed} column(s), freed "
            f"{result.freed_bytes} bytes; {result.kept} column(s) "
            f"({result.kept_bytes} bytes) kept"
        )
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} column(s)")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown cache action {args.action!r}")


def _run_delta(args: argparse.Namespace) -> None:
    """``delta``: cold run vs incremental re-run after a random delta."""
    import random
    import tempfile
    import time

    from repro.datasets import load_dataset
    from repro.experiments.scale import current_scale
    from repro.matching.engine import MatchingEngine
    from repro.matching.incremental import (
        dataset_rule,
        random_source_delta,
        rebuilt,
    )

    scale = current_scale()
    dataset = load_dataset(
        args.dataset, seed=args.seed, scale=scale.effective_dataset_scale(0)
    )
    rule = dataset_rule(args.dataset)
    source_a, source_b = dataset.source_a, dataset.source_b
    dedup = source_a is source_b
    rng = random.Random(args.seed)

    # Index patching needs a persistent store shared by the cold and
    # delta runs; fall back to a throwaway one when none is configured.
    cache_dir = os.environ.get(CACHE_ENV, "")
    scratch = None if cache_dir else tempfile.TemporaryDirectory()
    engine = MatchingEngine(cache_dir=cache_dir or scratch.name)
    try:
        started = time.perf_counter()
        previous = list(engine.execute(rule, source_a, source_b))
        cold_seconds = time.perf_counter() - started
        cold_stats = engine.last_run_stats()

        delta_a = random_source_delta(
            source_a, rng, upserts=args.upserts, deletes=args.deletes
        )
        deltas_a = [delta_a]
        deltas_b = deltas_a if dedup else [
            random_source_delta(
                source_b, rng, upserts=args.upserts, deletes=args.deletes
            )
        ]
        started = time.perf_counter()
        diff = engine.link_diff(
            rule, source_a, source_b, previous,
            deltas_a=deltas_a, deltas_b=deltas_b,
        )
        delta_seconds = time.perf_counter() - started
        stats = diff.stats
    finally:
        engine.close()
        if scratch is not None:
            scratch.cleanup()

    changed = {u for d in deltas_a for u in d.changed_uids}
    if not dedup:
        changed |= {u for d in deltas_b for u in d.changed_uids}
    print(
        f"cold run        : {len(previous)} link(s) from "
        f"{cold_stats.pairs} pair(s) in {cold_seconds:.3f}s"
    )
    print(
        f"delta applied   : {len(changed)} changed uid(s) "
        f"({args.upserts} upsert(s), {args.deletes} delete(s) per side)"
    )
    affected = (
        "all (full re-run)"
        if diff.affected_uids is None
        else str(len(diff.affected_uids))
    )
    print(
        f"incremental run : {len(diff.links)} link(s), "
        f"{diff.rescored_pairs} pair(s) re-scored, "
        f"{diff.kept_links} link(s) carried over in {delta_seconds:.3f}s"
    )
    speedup = cold_seconds / delta_seconds if delta_seconds > 0 else float("inf")
    print(f"affected probes : {affected}")
    print(
        f"diff            : +{len(diff.added)} -{len(diff.removed)} "
        f"={len(diff.unchanged)}"
    )
    print(f"speedup         : {speedup:.1f}x")
    if stats is not None:
        print(
            f"index reuse     : {stats.index_patches} patched, "
            f"{stats.index_builds} rebuilt (window depth "
            f"{stats.window_depth})"
        )
        if stats.store is not None:
            store = stats.store
            print(
                f"[engine store] hits={store.hits} misses={store.misses} "
                f"writes={store.writes} index_hits={store.index_hits} "
                f"index_misses={store.index_misses} "
                f"probe_hits={store.probe_hits} "
                f"probe_misses={store.probe_misses}",
                file=sys.stderr,
            )
    if args.verify:
        verifier = MatchingEngine()
        try:
            # One rebuilt object per distinct source: a dedup run must
            # stay a dedup run (source_a is source_b) after the rebuild.
            cold_a = rebuilt(source_a)
            cold_b = cold_a if dedup else rebuilt(source_b)
            cold = list(verifier.execute(rule, cold_a, cold_b))
        finally:
            verifier.close()
        identical = [
            (l.uid_a, l.uid_b, l.score) for l in diff.links
        ] == [(l.uid_a, l.uid_b, l.score) for l in cold]
        print(f"verification    : {'identical to cold rerun' if identical else 'MISMATCH'}")
        if not identical:
            raise SystemExit(1)


def _print_crossover(args: argparse.Namespace) -> None:
    comparisons = drivers.crossover_comparison(tuple(args.datasets), seed=args.seed)
    for iteration_index in range(2):
        rows = []
        for comparison in comparisons:
            iteration = comparison.iterations[iteration_index]
            rows.append(
                [
                    comparison.dataset,
                    comparison.subtree[iteration].format(),
                    comparison.specialised[iteration].format(),
                ]
            )
        iteration = comparisons[0].iterations[iteration_index] if comparisons else 0
        print(
            format_table(
                ["Dataset", "Subtree C.", "Our Approach"],
                rows,
                title=f"Table 15: crossover comparison at {iteration} iterations",
            )
        )
        print()


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-experiments`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the GenLink paper's experiments.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        default=None,
        metavar="SPEC",
        help="engine executor: 0/serial, N or thread:N (thread pool; "
        "parallelises fitness evaluation and link generation) or "
        "process:N (process pool; parallelises link-generation "
        "sharding only — learning runs serially); results are "
        "identical for every setting (default: the "
        f"{WORKERS_ENV} environment variable)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent distance-column/blocking-index store: repeated "
        "runs over the same sources load cached columns and indexes "
        "instead of rebuilding them (results are byte-identical either "
        f"way; default: the {CACHE_ENV} environment variable)",
    )
    parser.add_argument(
        "--blocker",
        default=None,
        choices=("auto", "multiblock", "rule", "full"),
        help="default blocking strategy for link generation: auto "
        "(rule-structure-aware selection), multiblock (aggregation-"
        "aware multidimensional indexes), rule (token blocking on the "
        "compared properties) or full (no blocking; exact but "
        f"quadratic). Default: the {BLOCKER_ENV} environment variable",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="Tables 5 & 6")

    curve = subparsers.add_parser("curve", help="Tables 7-12")
    curve.add_argument("dataset", choices=DATASET_NAMES)
    curve.add_argument(
        "--baseline", action="store_true", help="also run the Carvalho baseline"
    )

    for name, help_text in (
        ("representations", "Table 13"),
        ("seeding", "Table 14"),
        ("crossover", "Table 15"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--datasets", nargs="+", choices=DATASET_NAMES,
            default=list(DATASET_NAMES),
        )

    learn = subparsers.add_parser(
        "learn", help="learn one rule on a dataset and inspect it"
    )
    learn.add_argument("dataset", choices=DATASET_NAMES)
    learn.add_argument(
        "--prune", action="store_true", help="prune the learned rule"
    )
    learn.add_argument(
        "--chart", action="store_true", help="ASCII learning-curve chart"
    )
    learn.add_argument(
        "--silk", action="store_true", help="print a Silk-LSL configuration"
    )
    learn.add_argument(
        "--execute",
        action="store_true",
        help="execute the learned rule over the full sources (uses the "
        "--blocker strategy) and report link quality",
    )

    delta = subparsers.add_parser(
        "delta",
        help="incremental matching demo: cold run, random source delta, "
        "then link_diff re-scoring only the affected candidates",
    )
    delta.add_argument("dataset", choices=DATASET_NAMES)
    delta.add_argument(
        "--upserts", type=int, default=10,
        help="entities to revise/insert per side (default 10)",
    )
    delta.add_argument(
        "--deletes", type=int, default=5,
        help="entities to delete per side (default 5)",
    )
    delta.add_argument(
        "--verify", action="store_true",
        help="also cold-rerun over rebuilt sources and assert the "
        "incremental links are byte-identical",
    )

    cache = subparsers.add_parser(
        "cache",
        help="inspect / garbage-collect / clear the persistent "
        "distance-column store",
    )
    cache.add_argument("action", choices=("info", "gc", "clear"))
    cache.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc: drop columns not used within this many days",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="gc: drop least-recently-used columns until the store "
        "fits this byte budget",
    )

    args = parser.parse_args(argv)
    if args.workers is not None:
        # Validate eagerly for a clean CLI error, then hand the spec to
        # every engine session created below via the environment.
        try:
            parse_workers_spec(args.workers)
        except ValueError as error:
            parser.error(str(error))
        os.environ[WORKERS_ENV] = args.workers
    if args.cache_dir is not None:
        # Hand the cache dir to every engine session created below (and
        # to process-pool workers, which inherit the environment).
        os.environ[CACHE_ENV] = args.cache_dir
    if args.blocker is not None:
        # Same pattern: every matching engine created below (and in
        # worker processes) resolves its default blocker from this.
        os.environ[BLOCKER_ENV] = args.blocker
    if args.command == "cache":
        _cache_maintenance(args)
        return 0
    print(f"[scale: {current_scale().name}]")
    workers_spec = os.environ.get(WORKERS_ENV, "")
    if workers_spec:
        print(f"[workers: {workers_spec}]")
    cache_spec = os.environ.get(CACHE_ENV, "")
    if cache_spec:
        print(f"[cache: {cache_spec}]")
    blocker_spec = os.environ.get(BLOCKER_ENV, "")
    if blocker_spec:
        print(f"[blocker: {blocker_spec}]")
    handlers = {
        "datasets": _print_dataset_statistics,
        "curve": _print_learning_curve,
        "representations": _print_representations,
        "seeding": _print_seeding,
        "crossover": _print_crossover,
        "learn": _learn_rule,
        "delta": _run_delta,
    }
    handlers[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
