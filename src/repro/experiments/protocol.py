"""The cross-validation protocol of Section 6.1.

Each run draws a fresh random 2-fold split of the reference links,
learns on the training fold and evaluates every recorded iteration on
both folds; results are averaged over runs with standard deviation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.genlink import GenLink, GenLinkConfig, LearningResult
from repro.data.splits import train_validation_split
from repro.datasets.base import LinkageDataset
from repro.experiments.aggregate import MeanStd, mean_std


@dataclass(frozen=True)
class IterationAggregate:
    """Aggregated learning-curve row (a row of Tables 7-12)."""

    iteration: int
    seconds: MeanStd
    train_f_measure: MeanStd
    validation_f_measure: MeanStd
    comparisons: MeanStd
    transformations: MeanStd


@dataclass
class CrossValidationResult:
    """Aggregated outcome of repeated cross-validated learning."""

    dataset: str
    runs: int
    rows: list[IterationAggregate] = field(default_factory=list)
    results: list[LearningResult] = field(default_factory=list)

    def final_row(self) -> IterationAggregate:
        return self.rows[-1]

    def row_at(self, iteration: int) -> IterationAggregate:
        for row in self.rows:
            if row.iteration == iteration:
                return row
        raise KeyError(f"no aggregated row for iteration {iteration}")


def run_genlink_cross_validation(
    dataset: LinkageDataset,
    config: GenLinkConfig,
    runs: int,
    report_iterations: Sequence[int],
    seed: int = 0,
    learner: GenLink | None = None,
    cache_dir: str | None = None,
) -> CrossValidationResult:
    """Run the Section 6.1 protocol for one dataset and configuration.

    ``report_iterations`` beyond ``config.max_iterations`` are clamped;
    early-stopped runs contribute their last reached iteration, which is
    how the paper's tables report runs that hit the full F-measure
    before the iteration budget.

    ``cache_dir`` routes every run's engine session through one shared
    persistent store (``None`` consults ``REPRO_ENGINE_CACHE``, as
    everywhere in the engine): runs and seeds draw different reference-
    link splits but overlap heavily in the entity pairs they score, so
    later runs — and warm re-invocations of a whole experiment — load
    distance columns instead of rebuilding them. Results are
    byte-identical either way. An explicit ``learner`` owns its own
    caches and is passed through untouched.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    iterations = sorted({min(i, config.max_iterations) for i in report_iterations})
    results: list[LearningResult] = []
    for run in range(runs):
        run_rng = random.Random((seed * 1_000_003) + run)
        train, validation = train_validation_split(dataset.links, run_rng)
        genlink = (
            learner
            if learner is not None
            else GenLink(config, cache_dir=cache_dir)
        )
        result = genlink.learn(
            dataset.source_a,
            dataset.source_b,
            train,
            validation_links=validation,
            rng=run_rng,
        )
        results.append(result)

    rows = []
    for iteration in iterations:
        records = [result.record_at(iteration) for result in results]
        rows.append(
            IterationAggregate(
                iteration=iteration,
                seconds=mean_std(r.seconds for r in records),
                train_f_measure=mean_std(r.train_f_measure for r in records),
                validation_f_measure=mean_std(
                    r.validation_f_measure
                    if r.validation_f_measure is not None
                    else 0.0
                    for r in records
                ),
                comparisons=mean_std(r.comparison_count for r in records),
                transformations=mean_std(r.transformation_count for r in records),
            )
        )
    return CrossValidationResult(
        dataset=dataset.name, runs=runs, rows=rows, results=results
    )
