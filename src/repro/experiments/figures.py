"""Text-mode charts for learning curves and comparisons.

The paper reports its evaluation as tables; for quick inspection (and
for the examples/CLI) this module renders the same data as ASCII
charts: :func:`line_chart` plots one or more named series over a
shared x axis, :func:`learning_curve_chart` adapts a
:class:`~repro.experiments.protocol.CrossValidationResult`, and
:func:`bar_chart` compares scalar scores (e.g. Table 13's
representations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.protocol import CrossValidationResult

#: Symbols assigned to series, in order.
_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One named line: parallel x/y vectors."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values"
            )
        if not self.x:
            raise ValueError(f"series {self.name!r} is empty")


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map ``value`` in [low, high] onto a cell index in [0, size-1]."""
    if high <= low:
        return 0
    ratio = (value - low) / (high - low)
    return min(size - 1, max(0, round(ratio * (size - 1))))


def line_chart(
    series: Sequence[Series],
    width: int = 60,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
    title: str = "",
) -> str:
    """Plot the series on a shared character grid.

    The y range defaults to a snug fit over all series; pass ``y_min``/
    ``y_max`` (e.g. 0 and 1 for F-measures) to pin it.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4 characters")

    all_x = [x for s in series for x in s.x]
    all_y = [y for s in series for y in s.y]
    x_low, x_high = min(all_x), max(all_x)
    y_low = y_min if y_min is not None else min(all_y)
    y_high = y_max if y_max is not None else max(all_y)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, current in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(current.x, current.y):
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    label_width = max(len(f"{y_high:.2f}"), len(f"{y_low:.2f}"))
    lines: list[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.2f}"
        elif row_index == height - 1:
            label = f"{y_low:.2f}"
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_low:g}".ljust(width - len(f"{x_high:g}")) + f"{x_high:g}"
    lines.append(" " * label_width + "  " + x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def learning_curve_chart(
    result: CrossValidationResult,
    width: int = 60,
    height: int = 16,
) -> str:
    """Chart a cross-validation result's train/validation F1 curves."""
    iterations = tuple(float(row.iteration) for row in result.rows)
    train = Series(
        "train F1",
        iterations,
        tuple(row.train_f_measure.mean for row in result.rows),
    )
    validation = Series(
        "validation F1",
        iterations,
        tuple(row.validation_f_measure.mean for row in result.rows),
    )
    return line_chart(
        [train, validation],
        width=width,
        height=height,
        y_min=0.0,
        y_max=1.0,
        title=f"{result.dataset}: F-measure over iterations ({result.runs} runs)",
    )


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    maximum: float | None = None,
    title: str = "",
) -> str:
    """Horizontal bars, one per labelled value (e.g. F1 per system)."""
    if not values:
        raise ValueError("need at least one value")
    peak = maximum if maximum is not None else max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        filled = round(min(max(value, 0.0), peak) / peak * width)
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| {value:.3f}")
    return "\n".join(lines)
