"""Experiment drivers: one function per paper table / in-text result.

Each driver encapsulates the workload, parameters and measurement loop
of one experiment and returns structured results; the benchmark suite
and the CLI format them into the paper's table layouts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.carvalho import CarvalhoConfig, CarvalhoGP
from repro.core.crossover import SubtreeCrossover, default_crossover_operators
from repro.core.fitness import FitnessFunction
from repro.core.evaluation import PairEvaluator
from repro.core.genlink import GenLink, GenLinkConfig
from repro.core.representation import (
    BOOLEAN,
    FULL,
    LINEAR,
    NONLINEAR,
    Representation,
)
from repro.data.splits import train_validation_split
from repro.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.datasets.base import LinkageDataset
from repro.experiments.aggregate import MeanStd, mean_std
from repro.experiments.protocol import (
    CrossValidationResult,
    run_genlink_cross_validation,
)
from repro.experiments.scale import ExperimentScale, current_scale


def _config_for(
    scale: ExperimentScale,
    representation: Representation = FULL,
    seeding: bool = True,
) -> GenLinkConfig:
    return GenLinkConfig(
        population_size=scale.population_size,
        max_iterations=scale.max_iterations,
        representation=representation,
        seeding=seeding,
    )


def load_scaled(
    name: str, scale: ExperimentScale, seed: int
):
    """Load a dataset at the scale's effective per-dataset size."""
    spec = dataset_spec(name)
    effective = scale.effective_dataset_scale(spec.positive_links)
    return load_dataset(name, seed=seed, scale=effective)


# -- Tables 5 & 6 --------------------------------------------------------------
def dataset_statistics(
    scale: ExperimentScale | None = None, seed: int = 0
) -> list[dict]:
    """Measured statistics of all six datasets (Tables 5 and 6)."""
    scale = scale if scale is not None else current_scale()
    rows = []
    for name in DATASET_NAMES:
        dataset = load_scaled(name, scale, seed)
        rows.append(dataset.summary())
    return rows


# -- Tables 7-12: learning curves ---------------------------------------------
def learning_curve(
    dataset_name: str,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    representation: Representation = FULL,
    cache_dir: str | None = None,
) -> CrossValidationResult:
    """GenLink learning curve for one dataset (Tables 7-12).

    All runs share one persistent engine store via ``cache_dir``
    (default: the ``REPRO_ENGINE_CACHE`` environment variable), so a
    warm re-invocation over unchanged sources skips the distance pass
    — see ``benchmarks/bench_store_drivers.py`` for the measured
    cold/warm delta."""
    scale = scale if scale is not None else current_scale()
    dataset = load_scaled(dataset_name, scale, seed)
    config = _config_for(scale, representation=representation)
    return run_genlink_cross_validation(
        dataset,
        config,
        runs=scale.runs,
        report_iterations=scale.report_iterations,
        seed=seed,
        cache_dir=cache_dir,
    )


@dataclass
class BaselineReference:
    """Averaged train/validation F1 of the Carvalho et al. baseline."""

    dataset: str
    train_f_measure: MeanStd
    validation_f_measure: MeanStd


def carvalho_reference(
    dataset_name: str,
    scale: ExperimentScale | None = None,
    seed: int = 0,
) -> BaselineReference:
    """The Carvalho et al. GP reference rows of Tables 7 and 8."""
    scale = scale if scale is not None else current_scale()
    dataset = load_scaled(dataset_name, scale, seed)
    config = CarvalhoConfig(
        population_size=scale.population_size,
        max_generations=scale.max_iterations,
    )
    train_scores = []
    validation_scores = []
    for run in range(scale.runs):
        rng = random.Random((seed * 99_991) + run)
        train, validation = train_validation_split(dataset.links, rng)
        learner = CarvalhoGP(config)
        result = learner.learn(dataset.source_a, dataset.source_b, train, rng=rng)
        train_scores.append(result.train_f_measure)
        validation_scores.append(
            learner.evaluate(result, dataset.source_a, dataset.source_b, validation)
        )
    return BaselineReference(
        dataset=dataset_name,
        train_f_measure=mean_std(train_scores),
        validation_f_measure=mean_std(validation_scores),
    )


# -- Table 13: representation comparison ---------------------------------------
REPRESENTATION_ORDER = (BOOLEAN, LINEAR, NONLINEAR, FULL)


def representation_comparison(
    dataset_names: tuple[str, ...] = DATASET_NAMES,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    at_iteration: int | None = None,
    cache_dir: str | None = None,
) -> dict[str, dict[str, MeanStd]]:
    """Validation F1 per representation (Table 13; paper: round 25).

    Returns ``{dataset: {representation: MeanStd}}``. The four
    representation sweeps score the same entity pairs under overlapping
    comparison ops, so sharing one ``cache_dir`` (default:
    ``REPRO_ENGINE_CACHE``) across them — and across re-invocations —
    skips redundant distance passes with byte-identical results.
    """
    scale = scale if scale is not None else current_scale()
    iteration = (
        min(at_iteration, scale.max_iterations)
        if at_iteration is not None
        else scale.max_iterations
    )
    table: dict[str, dict[str, MeanStd]] = {}
    for name in dataset_names:
        dataset = load_scaled(name, scale, seed)
        row: dict[str, MeanStd] = {}
        for representation in REPRESENTATION_ORDER:
            result = run_genlink_cross_validation(
                dataset,
                _config_for(scale, representation=representation),
                runs=scale.runs,
                report_iterations=(iteration,),
                seed=seed,
                cache_dir=cache_dir,
            )
            row[representation.name] = result.row_at(iteration).validation_f_measure
        table[name] = row
    return table


# -- Table 14: seeding ----------------------------------------------------------
def initial_population_f_measure(
    dataset: LinkageDataset,
    scale: ExperimentScale,
    seeding: bool,
    seed: int,
) -> MeanStd:
    """Best-rule F1 of the initial population, averaged over runs.

    The Table 14 measurement: the paper's seeded column matches the
    iteration-0 rows of its learning-curve tables (e.g. NYT 0.701 vs
    0.703 in Table 10), i.e. the best rule of the freshly generated
    population, not the population mean.
    """
    run_scores = []
    for run in range(scale.runs):
        rng = random.Random((seed * 7_919) + run)
        train, _validation = train_validation_split(dataset.links, rng)
        learner = GenLink(_config_for(scale, seeding=seeding))
        generator = learner.build_generator(
            dataset.source_a, dataset.source_b, train, rng
        )
        population = generator.population(scale.population_size)
        pairs, labels = train.labelled_pairs(dataset.source_a, dataset.source_b)
        fitness = FitnessFunction(PairEvaluator(pairs), labels)
        fitness.prime_population(population)
        run_scores.append(max(fitness.f_measure(rule) for rule in population))
    return mean_std(run_scores)


def seeding_comparison(
    dataset_names: tuple[str, ...] = DATASET_NAMES,
    scale: ExperimentScale | None = None,
    seed: int = 0,
) -> dict[str, dict[str, MeanStd]]:
    """Random vs seeded initial population F1 (Table 14)."""
    scale = scale if scale is not None else current_scale()
    table: dict[str, dict[str, MeanStd]] = {}
    for name in dataset_names:
        dataset = load_scaled(name, scale, seed)
        table[name] = {
            "random": initial_population_f_measure(
                dataset, scale, seeding=False, seed=seed
            ),
            "seeded": initial_population_f_measure(
                dataset, scale, seeding=True, seed=seed
            ),
        }
    return table


# -- Table 15: crossover operators ----------------------------------------------
@dataclass
class CrossoverComparison:
    """Validation F1 of subtree vs specialised crossover (Table 15)."""

    dataset: str
    iterations: tuple[int, int]
    subtree: dict[int, MeanStd] = field(default_factory=dict)
    specialised: dict[int, MeanStd] = field(default_factory=dict)


def crossover_comparison(
    dataset_names: tuple[str, ...] = DATASET_NAMES,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    iterations: tuple[int, int] = (10, 25),
) -> list[CrossoverComparison]:
    """Subtree crossover vs the specialised operators (Table 15)."""
    scale = scale if scale is not None else current_scale()
    capped = tuple(min(i, scale.max_iterations) for i in iterations)
    comparisons = []
    for name in dataset_names:
        dataset = load_scaled(name, scale, seed)
        comparison = CrossoverComparison(dataset=name, iterations=capped)
        for label, operators in (
            ("subtree", [SubtreeCrossover()]),
            ("specialised", default_crossover_operators()),
        ):
            config = _config_for(scale)
            config.max_iterations = max(capped)
            learner = GenLink(config, crossover_operators=operators)
            result = run_genlink_cross_validation(
                dataset,
                config,
                runs=scale.runs,
                report_iterations=capped,
                seed=seed,
                learner=learner,
            )
            scores = {
                iteration: result.row_at(iteration).validation_f_measure
                for iteration in capped
            }
            if label == "subtree":
                comparison.subtree = scores
            else:
                comparison.specialised = scores
        comparisons.append(comparison)
    return comparisons


# -- In-text ablation: Cora without transformations ------------------------------
def cora_transform_ablation(
    scale: ExperimentScale | None = None, seed: int = 0
) -> dict[str, CrossValidationResult]:
    """Section 6.2: re-running Cora with transformations disabled drops
    GenLink to roughly the Carvalho et al. numbers."""
    scale = scale if scale is not None else current_scale()
    return {
        "full": learning_curve("cora", scale=scale, seed=seed, representation=FULL),
        "no_transformations": learning_curve(
            "cora", scale=scale, seed=seed, representation=NONLINEAR
        ),
    }
