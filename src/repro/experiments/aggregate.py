"""Mean / standard deviation aggregation for repeated runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class MeanStd:
    """A mean with its (population) standard deviation."""

    mean: float
    std: float
    count: int

    def format(self, digits: int = 3) -> str:
        """Paper-style rendering: ``0.969 (0.003)``."""
        return f"{self.mean:.{digits}f} ({self.std:.{digits}f})"


def mean_std(values: Iterable[float]) -> MeanStd:
    """Aggregate values into mean and population standard deviation."""
    data: Sequence[float] = [float(v) for v in values]
    if not data:
        raise ValueError("cannot aggregate an empty sequence")
    mean = sum(data) / len(data)
    variance = sum((v - mean) ** 2 for v in data) / len(data)
    return MeanStd(mean=mean, std=math.sqrt(variance), count=len(data))
