"""Experiment scale presets.

Full paper scale (population 500, 50 iterations, 10 runs, full-size
datasets, six datasets per table) is CPU-months in pure Python, so the
benchmark suite defaults to a reduced scale that preserves the
protocol and the qualitative orderings. Select with the
``REPRO_SCALE`` environment variable: ``smoke`` (seconds, CI),
``bench`` (default, minutes per table) or ``paper``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment drivers."""

    name: str
    dataset_scale: float      # entity/link count multiplier
    population_size: int
    max_iterations: int
    runs: int
    #: Iterations at which learning-curve tables report rows.
    report_iterations: tuple[int, ...]
    #: Floor on positive link counts: small datasets (LinkedMDB has
    #: only 100 links) are not scaled below this, otherwise single-link
    #: noise dominates the aggregates.
    min_positive_links: int = 0

    def iteration_cap(self, iteration: int) -> int:
        return min(iteration, self.max_iterations)

    def effective_dataset_scale(self, positive_links: int) -> float:
        """Per-dataset scale honouring the link floor."""
        if positive_links <= 0 or self.min_positive_links <= 0:
            return self.dataset_scale
        floor = min(1.0, self.min_positive_links / positive_links)
        return min(1.0, max(self.dataset_scale, floor))


SMOKE = ExperimentScale(
    name="smoke",
    dataset_scale=0.06,
    population_size=30,
    max_iterations=6,
    runs=1,
    report_iterations=(0, 2, 4, 6),
)

BENCH = ExperimentScale(
    name="bench",
    dataset_scale=0.20,
    population_size=100,
    max_iterations=25,
    runs=3,
    report_iterations=(0, 5, 10, 15, 20, 25),
    min_positive_links=100,
)

PAPER = ExperimentScale(
    name="paper",
    dataset_scale=1.0,
    population_size=500,
    max_iterations=50,
    runs=10,
    report_iterations=(0, 10, 20, 30, 40, 50),
)

_SCALES = {scale.name: scale for scale in (SMOKE, BENCH, PAPER)}


def current_scale(default: str = "bench") -> ExperimentScale:
    """The scale selected via ``REPRO_SCALE`` (default: bench)."""
    name = os.environ.get("REPRO_SCALE", default).lower()
    if name not in _SCALES:
        known = ", ".join(sorted(_SCALES))
        raise ValueError(f"unknown REPRO_SCALE {name!r}; known: {known}")
    return _SCALES[name]
