"""Experiment harness: the paper's evaluation protocol (Section 6.1).

Every experiment follows the same shape: 10 independent runs, each with
a random 2-fold split of the reference links, results averaged with
standard deviation. :mod:`repro.experiments.scale` lets the whole suite
run at reduced cost (fewer runs, smaller populations, scaled-down
datasets) while keeping the protocol identical; set ``REPRO_SCALE=paper``
for the full Table 4 parameters.
"""

from repro.experiments.aggregate import MeanStd, mean_std
from repro.experiments.protocol import (
    CrossValidationResult,
    IterationAggregate,
    run_genlink_cross_validation,
)
from repro.experiments.figures import (
    Series,
    bar_chart,
    learning_curve_chart,
    line_chart,
)
from repro.experiments.scale import ExperimentScale, current_scale
from repro.experiments.tables import format_table, format_value

__all__ = [
    "MeanStd",
    "mean_std",
    "CrossValidationResult",
    "IterationAggregate",
    "run_genlink_cross_validation",
    "Series",
    "bar_chart",
    "learning_curve_chart",
    "line_chart",
    "ExperimentScale",
    "current_scale",
    "format_table",
    "format_value",
]
