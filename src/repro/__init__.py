"""GenLink: learning expressive linkage rules using genetic programming.

A full reproduction of Isele & Bizer, PVLDB 5(11), 2012. The public API
re-exports the pieces a downstream user needs:

* the data model (:class:`Entity`, :class:`DataSource`,
  :class:`ReferenceLinkSet`),
* the linkage rule tree and its semantics,
* the :class:`GenLink` learner and its configuration,
* the execution engine (:func:`repro.matching.generate_links`) for
  applying learned rules to whole data sources,
* the six synthetic evaluation datasets (:mod:`repro.datasets`).

Quickstart::

    from repro import GenLink, GenLinkConfig
    from repro.datasets import load_dataset

    dataset = load_dataset("restaurant", seed=7)
    learner = GenLink(GenLinkConfig(population_size=100, max_iterations=20))
    result = learner.learn(
        dataset.source_a, dataset.source_b, dataset.links, rng=7
    )
    print(result.best_rule)
"""

from repro.core import (
    AggregationNode,
    ComparisonNode,
    GenLink,
    GenLinkConfig,
    IterationRecord,
    LearningResult,
    LinkageRule,
    PairEvaluator,
    PropertyNode,
    TransformationNode,
    lint_rule,
    prune_rule,
    render_rule,
    rule_from_dict,
    rule_from_json,
    rule_to_dict,
    rule_to_json,
    simplify_rule,
)
from repro.data import DataSource, Entity, ReferenceLinkSet
from repro.engine import EngineSession, EngineStats

__version__ = "1.0.0"

__all__ = [
    "AggregationNode",
    "ComparisonNode",
    "DataSource",
    "EngineSession",
    "EngineStats",
    "Entity",
    "GenLink",
    "GenLinkConfig",
    "IterationRecord",
    "LearningResult",
    "LinkageRule",
    "PairEvaluator",
    "PropertyNode",
    "ReferenceLinkSet",
    "TransformationNode",
    "lint_rule",
    "prune_rule",
    "simplify_rule",
    "render_rule",
    "rule_from_dict",
    "rule_from_json",
    "rule_to_dict",
    "rule_to_json",
    "__version__",
]
