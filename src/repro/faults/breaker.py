"""Circuit breaker for the persistent column store.

When the disk under a :class:`~repro.engine.store.ColumnStore` starts
failing (full, yanked, injected), every cache miss costs a syscall
error plus a retry on the next key — the store would keep hammering a
dead disk for the rest of the run. The breaker converts sustained
I/O failure into an explicit degradation: after ``threshold``
*consecutive* faults it opens, the store skips disk entirely (the
session falls back to its in-memory tiers), and the trip reason is
surfaced through ``StoreStats``/``EngineStats``/``MatchStats`` and
service health so operators see the degradation instead of a
mysteriously cold cache.

States follow the classic pattern:

* **closed** — normal operation; consecutive faults are counted, any
  success resets the count.
* **open** — disk bypassed. After ``cooldown`` seconds the next
  :meth:`allow` transitions to half-open.
* **half-open** — exactly one probe operation is let through; success
  closes the breaker, another fault re-opens it (and restarts the
  cooldown).

The clock is injectable so tests drive the cooldown without sleeping.
Thread-safe: executor threads share one store and hence one breaker.
"""

from __future__ import annotations

import threading
import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after ``threshold`` consecutive faults; half-open after
    ``cooldown`` seconds."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive = 0
        self._opened_at: float | None = None
        self._trips = 0
        #: Chronological reasons the breaker opened (monotonic; feeds
        #: the ``degraded`` channel up through MatchStats and health).
        self._trip_reasons: list[str] = []

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def trip_reasons(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._trip_reasons)

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = HALF_OPEN

    def allow(self) -> bool:
        """Whether the next disk operation may proceed.

        In half-open state this admits the probe; if the probe faults,
        :meth:`record_failure` re-opens the breaker."""
        with self._lock:
            self._maybe_half_open()
            return self._state != OPEN

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED

    def record_failure(self, reason: str = "io_error") -> None:
        """Count a disk fault; trip when the threshold is reached or a
        half-open probe fails."""
        with self._lock:
            self._consecutive += 1
            should_trip = (
                self._state == HALF_OPEN
                or (self._state == CLOSED and self._consecutive >= self.threshold)
            )
            if should_trip:
                self._state = OPEN
                self._opened_at = self._clock()
                self._trips += 1
                self._trip_reasons.append(
                    f"store breaker open after "
                    f"{self._consecutive} consecutive faults: {reason}"
                )
                self._consecutive = 0

    def describe(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "consecutive_faults": self._consecutive,
                "trips": self._trips,
            }
