"""Deterministic fault plans: what breaks, where, and when.

A :class:`FaultPlan` is a parsed ``REPRO_FAULTS`` value — a
semicolon-separated list of fault rules, each binding one *injection
site* (a named I/O seam the engine or service owns) to one fault
*kind* with a *trigger*::

    store.write:io_error@0.05;queue.claim:delay@0.2:50ms;worker.execute:crash@job=3

Rule grammar (``[]`` optional)::

    <site>:<kind>[@<trigger>][:<arg>]

* ``site`` — one of :data:`SITES`; unknown sites fail parsing loudly
  (a typo in a chaos schedule must never silently inject nothing).
* ``kind`` — ``io_error`` (raise :class:`OSError` at the seam),
  ``delay`` (sleep, default 10ms or the ``arg`` duration),
  ``crash`` (SIGKILL the current process — the crash-consistency
  tests' hammer), ``torn`` (truncate the in-flight temp file, then
  raise — simulates a write cut short by a disk fault; only
  meaningful at write seams that pass their temp path).
* ``trigger`` — a probability (``@0.05``: fire on ~5% of
  invocations, drawn from a per-rule seeded RNG) or an exact ordinal
  (``@n=3`` / ``@job=3``: fire on exactly the third invocation of the
  site in this process). Omitted means ``@1.0`` — every invocation.
* ``arg`` — kind-specific: a duration (``50ms``, ``0.5s``) for
  ``delay``, an errno name (``ENOSPC``, ``EIO``) for ``io_error``.

Determinism
-----------
Probabilistic triggers draw from one :class:`random.Random` per rule,
seeded by ``(plan seed, site, kind, rule index)`` — the plan seed
comes from ``REPRO_FAULTS_SEED`` (default 0). Given the same plan,
seed and per-site invocation sequence, the same invocations fault, so
a failing chaos run replays exactly under the same environment. Every
fired fault is appended to :attr:`FaultPlan.fired` for schedule
assertions.

Inertness
---------
When ``REPRO_FAULTS`` is unset no plan exists and :func:`fire` is a
module-global ``None`` check — the seams cost one predictable branch
and inject nothing, which the parity suite gates byte-identically.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import signal
import threading
import time
from dataclasses import dataclass

#: Environment variable carrying the fault plan (unset/empty: inert).
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable seeding the plan's probabilistic triggers.
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Every injection seam the engine and service expose, with the module
#: that owns it. Parsing validates sites against this set.
SITES = frozenset(
    [
        "store.read",  # ColumnStore blob/index/probe loads
        "store.write",  # ColumnStore blob/index/probe writes (pre-publish)
        "store.rename",  # ColumnStore atomic publication (os.replace)
        "jobs.write",  # JobStore record/link writes (pre-publish)
        "queue.claim",  # FileQueue ticket claiming
        "queue.ack",  # FileQueue ticket acking
        "worker.execute",  # worker loop, between claim and execution
        "engine.shard",  # MatchingEngine shard-group boundaries
    ]
)

#: Fault kinds a rule may inject.
KINDS = frozenset(["io_error", "delay", "crash", "torn"])

_DEFAULT_DELAY = 0.01  # seconds, when a delay rule names no duration


class FaultPlanError(ValueError):
    """A ``REPRO_FAULTS`` value that does not parse. Raised eagerly so
    a typo'd chaos schedule fails the run instead of injecting
    nothing."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault rule of a plan."""

    site: str
    kind: str
    #: Firing probability per invocation; ``None`` when ``nth`` is set.
    rate: float | None
    #: Exact invocation ordinal (1-based) to fire on; ``None`` when
    #: probabilistic.
    nth: int | None
    #: Kind-specific argument (delay duration in seconds, errno value).
    arg: float | int | None

    def describe(self) -> str:
        trigger = f"n={self.nth}" if self.nth is not None else f"{self.rate:g}"
        return f"{self.site}:{self.kind}@{trigger}"


def _parse_duration(text: str) -> float:
    """``50ms``/``0.5s``/bare seconds to a float duration."""
    text = text.strip().lower()
    try:
        if text.endswith("ms"):
            return float(text[:-2]) / 1000.0
        if text.endswith("s"):
            return float(text[:-1])
        return float(text)
    except ValueError:
        raise FaultPlanError(f"unparseable delay duration {text!r}") from None


def _parse_errno(text: str) -> int:
    """An errno name (``ENOSPC``) to its number."""
    number = getattr(_errno, text.strip().upper(), None)
    if not isinstance(number, int):
        raise FaultPlanError(f"unknown errno name {text!r}")
    return number


def _parse_rule(segment: str) -> FaultRule:
    parts = segment.split(":")
    if len(parts) < 2 or len(parts) > 3:
        raise FaultPlanError(
            f"fault rule {segment!r} is not site:kind[@trigger][:arg]"
        )
    site = parts[0].strip()
    kind_part = parts[1].strip()
    arg_text = parts[2].strip() if len(parts) == 3 else None
    if site not in SITES:
        raise FaultPlanError(
            f"unknown fault site {site!r}; expected one of {sorted(SITES)}"
        )
    kind, _, trigger = kind_part.partition("@")
    kind = kind.strip()
    if kind not in KINDS:
        raise FaultPlanError(
            f"unknown fault kind {kind!r}; expected one of {sorted(KINDS)}"
        )
    rate: float | None = None
    nth: int | None = None
    trigger = trigger.strip()
    if not trigger:
        rate = 1.0
    elif "=" in trigger:
        name, _, value = trigger.partition("=")
        if name.strip() not in ("n", "job"):
            raise FaultPlanError(
                f"unknown trigger {trigger!r}; expected a probability, "
                f"n=K or job=K"
            )
        try:
            nth = int(value)
        except ValueError:
            raise FaultPlanError(f"unparseable ordinal in {trigger!r}") from None
        if nth < 1:
            raise FaultPlanError(f"trigger ordinal must be >= 1, got {nth}")
    else:
        try:
            rate = float(trigger)
        except ValueError:
            raise FaultPlanError(
                f"unparseable trigger probability {trigger!r}"
            ) from None
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(f"trigger probability {rate} not in [0, 1]")
    arg: float | int | None = None
    if arg_text:
        if kind == "delay":
            arg = _parse_duration(arg_text)
        elif kind == "io_error":
            arg = _parse_errno(arg_text)
        else:
            raise FaultPlanError(
                f"fault kind {kind!r} takes no argument, got {arg_text!r}"
            )
    return FaultRule(site=site, kind=kind, rate=rate, nth=nth, arg=arg)


@dataclass(frozen=True)
class FiredFault:
    """One injected fault, as recorded in :attr:`FaultPlan.fired`."""

    site: str
    kind: str
    #: 1-based invocation ordinal of the site when this rule fired.
    invocation: int


class FaultPlan:
    """A parsed, seeded fault schedule.

    Thread-safe: seams fire from engine executor threads and worker
    heartbeat threads; counters and RNG draws happen under one lock.
    """

    def __init__(self, rules: list[FaultRule], seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        #: Per-rule invocation counters (a rule counts invocations of
        #: its own site).
        self._counts = [0] * len(self.rules)
        self._rngs = [
            random.Random(f"{seed}\x1f{rule.site}\x1f{rule.kind}\x1f{index}")
            for index, rule in enumerate(self.rules)
        ]
        #: Chronological record of every fault injected (for replay
        #: assertions; appended under the lock).
        self.fired: list[FiredFault] = []

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` value; raises
        :class:`FaultPlanError` on any malformed rule."""
        rules = []
        for segment in text.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            rules.append(_parse_rule(segment))
        if not rules:
            raise FaultPlanError(f"fault plan {text!r} contains no rules")
        return cls(rules, seed=seed)

    def describe(self) -> str:
        return ";".join(rule.describe() for rule in self.rules)

    def fire(self, site: str, tmp_path: str | os.PathLike | None = None) -> None:
        """Inject whatever the plan schedules for this invocation of
        ``site``. Called by the seams; raising is the injection."""
        pending: list[tuple[FaultRule, int]] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                self._counts[index] += 1
                count = self._counts[index]
                if rule.nth is not None:
                    hit = count == rule.nth
                else:
                    hit = self._rngs[index].random() < rule.rate
                if hit:
                    self.fired.append(FiredFault(site, rule.kind, count))
                    pending.append((rule, count))
        for rule, count in pending:
            self._trigger(rule, count, tmp_path)

    def _trigger(
        self,
        rule: FaultRule,
        invocation: int,
        tmp_path: str | os.PathLike | None,
    ) -> None:
        if rule.kind == "delay":
            time.sleep(rule.arg if rule.arg is not None else _DEFAULT_DELAY)
            return
        if rule.kind == "io_error":
            code = rule.arg if rule.arg is not None else _errno.EIO
            name = _errno.errorcode.get(code, str(code))
            raise OSError(
                code,
                f"injected {name} at {rule.describe()} "
                f"(invocation {invocation})",
            )
        if rule.kind == "torn":
            # Simulate a write cut short by power loss / disk fault:
            # truncate the still-unpublished temp file, then fail the
            # write. The atomicity discipline must ensure the torn
            # bytes are never renamed into place.
            if tmp_path is not None:
                try:
                    size = os.path.getsize(tmp_path)
                    with open(tmp_path, "r+b") as handle:
                        handle.truncate(max(0, size // 2))
                except OSError:
                    pass
            raise OSError(
                _errno.EIO,
                f"injected torn write {rule.describe()} "
                f"(invocation {invocation})",
            )
        if rule.kind == "crash":
            # A real crash: no cleanup, no atexit, no finally blocks.
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60)  # pragma: no cover - the signal always lands
        raise AssertionError(f"unhandled fault kind {rule.kind!r}")


#: The process-wide active plan. Resolved from the environment exactly
#: once at import (worker subprocesses inherit the environment before
#: importing anything); tests swap it with :func:`install`.
_PLAN: FaultPlan | None = None


def _plan_from_env() -> FaultPlan | None:
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        return None
    seed_text = os.environ.get(FAULTS_SEED_ENV, "0").strip() or "0"
    try:
        seed = int(seed_text)
    except ValueError:
        raise FaultPlanError(
            f"{FAULTS_SEED_ENV} must be an integer, got {seed_text!r}"
        ) from None
    return FaultPlan.parse(text, seed=seed)


def active() -> FaultPlan | None:
    """The process-wide fault plan, or ``None`` (inert)."""
    return _PLAN


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Swap the active plan (tests); returns the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def reset_from_env() -> FaultPlan | None:
    """Re-resolve the plan from the environment (tests that set
    ``REPRO_FAULTS`` after import); returns the new plan."""
    plan = _plan_from_env()
    install(plan)
    return plan


def fire(site: str, tmp_path: str | os.PathLike | None = None) -> None:
    """The seam entry point: inject scheduled faults for ``site``.

    With no active plan this is one global load and a ``None`` check —
    the zero-overhead guarantee the inertness suite gates on.
    """
    plan = _PLAN
    if plan is not None:
        plan.fire(site, tmp_path=tmp_path)


_PLAN = _plan_from_env()
