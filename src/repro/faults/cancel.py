"""Cooperative cancellation with optional deadlines.

A :class:`CancelToken` travels from the job runner (or an inline
service run) into :meth:`MatchingEngine.iter_links`, which calls
:meth:`CancelToken.check` at every shard-group boundary — the
engine's natural preemption points. Cancellation is cooperative:
nothing is interrupted mid-kernel, so a cancelled run leaves the
store and job record in the same consistent states a failure would.

Two things cancel a token: an explicit :meth:`cancel` (the operator
``cancel`` verb, relayed through the job record's
``cancel_requested`` flag by the worker's heartbeat thread) and an
expired deadline (seconds from token creation, i.e. from the start of
the current attempt). Either way :meth:`check` raises
:class:`Cancelled` with the reason, and the worker records a terminal
``failed`` state — deadline and cancel failures never retry, since
re-running a too-slow job would just time out again.
"""

from __future__ import annotations

import threading
import time


class Cancelled(RuntimeError):
    """Raised by :meth:`CancelToken.check` once a token is cancelled.

    ``reason`` is the short token recorded on the job (``deadline`` or
    ``cancelled``)."""

    def __init__(self, reason: str):
        super().__init__(f"run cancelled: {reason}")
        self.reason = reason


class CancelToken:
    """One attempt's cancellation state.

    Thread-safe: the worker's heartbeat thread cancels while engine
    threads check.
    """

    def __init__(self, deadline: float | None = None, clock=time.monotonic):
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self._clock = clock
        self._started = clock()
        self.deadline = deadline
        self._lock = threading.Lock()
        self._reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Mark the token cancelled; the next :meth:`check` raises.
        The first reason wins."""
        with self._lock:
            if self._reason is None:
                self._reason = reason

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float | None:
        """Seconds left before the deadline, or ``None`` without one."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed()

    @property
    def reason(self) -> str | None:
        """The winning cancel reason, or ``None`` while live."""
        with self._lock:
            return self._reason

    @property
    def cancelled(self) -> bool:
        with self._lock:
            if self._reason is not None:
                return True
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            self.cancel("deadline")
            return True
        return False

    def check(self) -> None:
        """Raise :class:`Cancelled` if cancelled or past deadline."""
        if self.cancelled:
            raise Cancelled(self._reason)
