"""Deterministic fault injection, cancellation, and degradation.

The robustness toolkit the engine and service share:

* :mod:`repro.faults.plan` — seeded fault schedules (``REPRO_FAULTS``)
  with :func:`fire` hooks at every I/O seam; inert when unset.
* :mod:`repro.faults.cancel` — cooperative :class:`CancelToken` /
  :class:`Cancelled` for per-job deadlines and the ``cancel`` verb.
* :mod:`repro.faults.breaker` — the store :class:`CircuitBreaker`
  that degrades a faulting disk to in-memory tiers.

See ``docs/robustness.md`` for the operator-facing story.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.cancel import Cancelled, CancelToken
from repro.faults.plan import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    FiredFault,
    SITES,
    active,
    fire,
    install,
    reset_from_env,
)

__all__ = [
    "CircuitBreaker",
    "Cancelled",
    "CancelToken",
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "FiredFault",
    "SITES",
    "active",
    "fire",
    "install",
    "reset_from_env",
]
