"""The DBpedia - DrugBank drugs dataset.

The dataset behind the paper's most complex human-written linkage rule
(13 comparisons, 33 transformations — Section 6.2): drugs are matched
via names, synonym lists and a set of well-known identifiers (CAS
registry numbers, ATC codes) that are present on both sides but missing
for many entities. Names are largely consistent between the sources —
which is why even the boolean representation scores 0.99 on this
dataset (Table 13) — but full coverage of the corner cases requires
falling back across several partially covered identifier comparisons
(a ``max`` aggregation) and normalising decorated names.
"""

from __future__ import annotations

import random

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import noise, vocab
from repro.datasets.base import DatasetSpec, LinkageDataset, balanced_links
from repro.datasets.fillers import add_fillers

SPEC = DatasetSpec(
    name="dbpedia_drugbank",
    entities_a=4854,
    entities_b=4772,
    positive_links=1403,
    properties_a=110,
    properties_b=79,
    coverage_a=0.3,
    coverage_b=0.5,
    description="Drugs in DBpedia vs. DrugBank (complex human-written rule).",
)


def _drug(rng: random.Random) -> dict:
    name = vocab.drug_name(rng)
    return {
        "name": name,
        "cas": vocab.cas_number(rng),
        "atc": vocab.atc_code(rng),
    }


def _dbpedia_record(drug: dict, rng: random.Random) -> dict:
    label = drug["name"].capitalize()
    if noise.maybe(0.10, rng):
        label = noise.punctuation_noise(label, rng)
    record: dict = {"label": label}
    if noise.maybe(0.50, rng):
        record["casNumber"] = drug["cas"]
    if noise.maybe(0.35, rng):
        record["atcPrefix"] = drug["atc"]
    if noise.maybe(0.30, rng):
        record["synonym"] = (drug["name"].upper(),)
    add_fillers(record, "dbpDrug", 106, presence=0.27, rng=rng, side=0)
    return record


def _drugbank_record(drug: dict, index: int, rng: random.Random) -> dict:
    name = drug["name"].capitalize()
    if noise.maybe(0.10, rng):
        name = noise.typo(name, rng)
    record: dict = {
        "drugName": name,
        "drugbankId": f"DB{rng.randint(1, 99_999):05d}",
    }
    if noise.maybe(0.65, rng):
        record["casNumber"] = drug["cas"]
    if noise.maybe(0.40, rng):
        record["atcCode"] = drug["atc"]
    if noise.maybe(0.70, rng):
        record["synonym"] = (drug["name"].upper(),)
    if noise.maybe(0.60, rng):
        record["molecularWeight"] = f"{rng.uniform(100, 900):.2f}"
    add_fillers(record, "dbProp", 72, presence=0.46, rng=rng, side=1)
    return record


def generate(spec: DatasetSpec, seed: int) -> LinkageDataset:
    """Generate the DBpedia-DrugBank dataset at the sizes of ``spec``."""
    rng = random.Random(seed)
    dbpedia = DataSource("dbpedia_drugs")
    drugbank = DataSource("drugbank")
    positive: list[tuple[str, str]] = []

    linked = min(spec.positive_links, spec.entities_a, spec.entities_b or 0)
    for i in range(linked):
        drug = _drug(rng)
        uid_a = f"dbpdrug:{i:05d}"
        uid_b = f"drugbank:{i:05d}"
        dbpedia.add(Entity(uid_a, _dbpedia_record(drug, rng)))
        drugbank.add(Entity(uid_b, _drugbank_record(drug, i, rng)))
        positive.append((uid_a, uid_b))

    index = linked
    while len(dbpedia) < spec.entities_a:
        dbpedia.add(
            Entity(f"dbpdrug:{index:05d}", _dbpedia_record(_drug(rng), rng))
        )
        index += 1
    while len(drugbank) < (spec.entities_b or 0):
        drugbank.add(
            Entity(f"drugbank:{index:05d}", _drugbank_record(_drug(rng), index, rng))
        )
        index += 1

    links = balanced_links(positive, rng)
    return LinkageDataset(
        name=spec.name,
        source_a=dbpedia,
        source_b=drugbank,
        links=links,
        spec=spec,
        description=SPEC.description,
    )
