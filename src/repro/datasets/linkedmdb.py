"""The LinkedMDB - DBpedia movies dataset.

A small but non-trivial interlinking task (Section 6.2): movies cannot
be matched by title alone because remakes share titles across years, so
the reference links deliberately include same-title/different-year
corner cases as negatives. DBpedia labels are occasionally decorated
with a "(1994 film)" suffix, release dates are full ISO dates on the
DBpedia side but bare years in LinkedMDB, and both schemas carry a long
tail of distractor properties (100 and 46 properties at ~0.4 coverage,
Table 6). A correct rule therefore combines a (tokenised) title
comparison with a date comparison — exactly the structure of the
human-written rule the paper compares against.
"""

from __future__ import annotations

import random

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import noise, vocab
from repro.datasets.base import DatasetSpec, LinkageDataset, balanced_links
from repro.datasets.fillers import add_fillers

SPEC = DatasetSpec(
    name="linkedmdb",
    entities_a=199,
    entities_b=174,
    positive_links=100,
    properties_a=100,
    properties_b=46,
    coverage_a=0.4,
    coverage_b=0.4,
    description="Movies in DBpedia vs. LinkedMDB, with remake corner cases.",
)


def _director_pool(rng: random.Random, size: int = 25) -> list[str]:
    """A small pool of directors: real directors make many movies, so
    the director alone can never be a match key."""
    pool: list[str] = []
    while len(pool) < size:
        first, last = vocab.person_name(rng)
        name = f"{first} {last}"
        if name not in pool:
            pool.append(name)
    return pool


def _movie(rng: random.Random, directors: list[str]) -> dict:
    return {
        "title": vocab.movie_title(rng),
        "year": rng.randint(1950, 2011),
        "month": rng.randint(1, 12),
        "day": rng.randint(1, 28),
        "director": rng.choice(directors),
    }


def _dbpedia_record(movie: dict, rng: random.Random) -> dict:
    label = movie["title"]
    if noise.maybe(0.08, rng):
        label = f"{label} ({movie['year']} film)"
    record: dict = {"label": label}
    if noise.maybe(0.98, rng):
        record["releaseDate"] = (
            f"{movie['year']:04d}-{movie['month']:02d}-{movie['day']:02d}"
        )
    if noise.maybe(0.80, rng):
        record["director"] = movie["director"]
    if noise.maybe(0.50, rng):
        record["runtime"] = str(rng.randint(70, 200))
    add_fillers(record, "dbpFilm", 96, presence=0.38, rng=rng, side=0)
    return record


def _linkedmdb_record(movie: dict, rng: random.Random) -> dict:
    title = movie["title"]
    if noise.maybe(0.12, rng):
        title = title.lower()
    record: dict = {"title": title}
    if noise.maybe(0.98, rng):
        record["initialReleaseDate"] = str(movie["year"])
    if noise.maybe(0.80, rng):
        record["director"] = movie["director"]
    add_fillers(record, "lmdbProp", 43, presence=0.36, rng=rng, side=1)
    return record


def generate(spec: DatasetSpec, seed: int) -> LinkageDataset:
    """Generate the LinkedMDB dataset at the sizes of ``spec``."""
    rng = random.Random(seed)
    dbpedia = DataSource("dbpedia_films")
    linkedmdb = DataSource("linkedmdb")
    positive: list[tuple[str, str]] = []
    corner_negatives: list[tuple[str, str]] = []

    linked = min(spec.positive_links, spec.entities_a, spec.entities_b or 0)
    directors = _director_pool(rng)
    a_index = 0
    b_index = 0

    def add_a(movie: dict) -> str:
        nonlocal a_index
        uid = f"dbpfilm:{a_index:04d}"
        dbpedia.add(Entity(uid, _dbpedia_record(movie, rng)))
        a_index += 1
        return uid

    def add_b(movie: dict) -> str:
        nonlocal b_index
        uid = f"lmdb:{b_index:04d}"
        linkedmdb.add(Entity(uid, _linkedmdb_record(movie, rng)))
        b_index += 1
        return uid

    remake_target = max(2, linked // 4)
    movies: list[tuple[str, str, dict]] = []
    for i in range(linked):
        movie = _movie(rng, directors)
        uid_a = add_a(movie)
        uid_b = add_b(movie)
        positive.append((uid_a, uid_b))
        movies.append((uid_a, uid_b, movie))
        # Remake corner case: same title, clearly different year.
        if len(corner_negatives) < remake_target and len(dbpedia) < spec.entities_a:
            remake = dict(movie)
            remake["year"] = movie["year"] + rng.choice([-1, 1]) * rng.randint(3, 25)
            remake["year"] = min(max(remake["year"], 1930), 2011)
            remake["director"] = rng.choice(
                [d for d in directors if d != movie["director"]]
            )
            remake_uid = add_a(remake)
            corner_negatives.append((remake_uid, uid_b))

    # Same-year, different-title corner cases: these rule out the
    # degenerate date-only rule just as remakes rule out title-only.
    same_year_target = max(2, linked // 4)
    for i, (uid_a, _ub, movie) in enumerate(movies):
        if len(corner_negatives) >= remake_target + same_year_target:
            break
        for other_a, other_b, other in movies[i + 1 :]:
            if other["year"] == movie["year"] and other["title"] != movie["title"]:
                corner_negatives.append((uid_a, other_b))
                break

    while len(dbpedia) < spec.entities_a:
        add_a(_movie(rng, directors))
    while len(linkedmdb) < (spec.entities_b or 0):
        add_b(_movie(rng, directors))

    links = balanced_links(positive, rng, extra_negatives=corner_negatives)
    return LinkageDataset(
        name=spec.name,
        source_a=dbpedia,
        source_b=linkedmdb,
        links=links,
        spec=spec,
        description=SPEC.description,
    )
