"""Deterministic vocabularies for the synthetic dataset generators.

Small literal seed lists are expanded combinatorially so generators can
draw thousands of distinct names without shipping data dumps. All
sampling is done by the caller's ``random.Random`` so datasets are
fully reproducible from their seed.
"""

from __future__ import annotations

import random

FIRST_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Christopher",
    "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul",
    "Emily", "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy",
    "Kevin", "Carol", "Brian", "Amanda", "George", "Melissa", "Edward",
    "Deborah", "Ronald", "Stephanie", "Timothy", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary",
    "Amy", "Nicholas", "Shirley", "Eric", "Angela", "Jonathan", "Helen",
    "Stephen", "Anna", "Larry", "Brenda", "Justin", "Pamela", "Scott",
    "Nicole", "Brandon", "Emma", "Benjamin", "Samantha", "Samuel",
    "Katherine", "Gregory", "Christine", "Frank", "Debra", "Alexander",
    "Rachel", "Raymond", "Catherine", "Patrick", "Carolyn", "Jack", "Janet",
    "Dennis", "Ruth", "Jerry", "Maria",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez",
]

TITLE_WORDS = [
    "learning", "adaptive", "distributed", "efficient", "scalable",
    "probabilistic", "neural", "genetic", "parallel", "incremental",
    "approximate", "optimal", "robust", "dynamic", "hierarchical",
    "structured", "statistical", "relational", "semantic", "declarative",
    "query", "index", "matching", "classification", "clustering",
    "inference", "retrieval", "integration", "optimization", "estimation",
    "detection", "recognition", "programming", "networks", "databases",
    "systems", "models", "algorithms", "methods", "analysis", "records",
    "entities", "streams", "graphs", "transactions", "caching", "storage",
    "evaluation", "selection", "extraction", "resolution", "deduplication",
    "linkage", "schemas", "ontologies", "knowledge", "web", "data",
]

# (full form, abbreviated form): abbreviations keep the salient tokens,
# as real citation strings do ("Proc. Very Large Data Bases").
VENUES = [
    ("Proceedings of the International Conference on Very Large Data Bases",
     "Proc. Very Large Data Bases"),
    ("Proceedings of the ACM SIGMOD International Conference on Management of Data",
     "Proc. ACM SIGMOD Conf. Management of Data"),
    ("Proceedings of the International Conference on Machine Learning",
     "Proc. Int. Conf. Machine Learning"),
    ("Proceedings of the ACM SIGKDD International Conference on Knowledge Discovery and Data Mining",
     "Proc. ACM SIGKDD Knowledge Discovery and Data Mining"),
    ("Proceedings of the International Conference on Data Engineering",
     "Proc. Int. Conf. Data Engineering"),
    ("Journal of the American Statistical Association",
     "J. American Statistical Assoc."),
    ("IEEE Transactions on Knowledge and Data Engineering",
     "IEEE Trans. Knowledge and Data Engineering"),
    ("Artificial Intelligence Journal", "Artificial Intelligence J."),
    ("Machine Learning Journal", "Machine Learning J."),
    ("Proceedings of the National Conference on Artificial Intelligence",
     "Proc. Nat. Conf. Artificial Intelligence"),
    ("Proceedings of the International Joint Conference on Artificial Intelligence",
     "Proc. Int. Joint Conf. Artificial Intelligence"),
    ("Proceedings of the Conference on Neural Information Processing Systems",
     "Proc. Neural Information Processing Systems"),
    ("Information Systems", "Information Syst."),
    ("Data and Knowledge Engineering", "Data and Knowledge Eng."),
    ("The VLDB Journal", "VLDB Journal"),
]

CUISINES = [
    "American", "Italian", "French", "Chinese", "Japanese", "Mexican",
    "Thai", "Indian", "Greek", "Spanish", "Korean", "Vietnamese",
    "Mediterranean", "Seafood", "Steakhouse", "Barbecue", "Delicatessen",
    "Vegetarian", "Cajun", "Continental",
]

RESTAURANT_WORDS = [
    "Golden", "Blue", "Royal", "Little", "Grand", "Old", "New", "Silver",
    "Red", "Green", "Corner", "Garden", "Palace", "House", "Kitchen",
    "Table", "Bistro", "Grill", "Cafe", "Tavern", "Diner", "Oven",
    "Harvest", "Spice", "Olive", "Lotus", "Dragon", "Rose", "Pearl",
    "Anchor", "Lantern", "Orchard", "Willow", "Maple", "Cedar", "Summit",
]

STREET_NAMES = [
    "Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Washington", "Lake",
    "Hill", "Park", "River", "Spring", "Church", "High", "Center", "Union",
    "Market", "Broad", "Water", "Franklin", "Highland", "Madison",
    "Jefferson", "Chestnut", "Walnut", "Sunset", "Railroad", "Mill",
    "Bridge", "Court",
]

STREET_TYPES = [
    ("Street", "St."), ("Avenue", "Ave."), ("Boulevard", "Blvd."),
    ("Road", "Rd."), ("Drive", "Dr."), ("Lane", "Ln."), ("Place", "Pl."),
]

US_CITIES = [
    ("New York", "NY", 40.7128, -74.0060),
    ("Los Angeles", "CA", 34.0522, -118.2437),
    ("Chicago", "IL", 41.8781, -87.6298),
    ("Houston", "TX", 29.7604, -95.3698),
    ("Phoenix", "AZ", 33.4484, -112.0740),
    ("Philadelphia", "PA", 39.9526, -75.1652),
    ("San Antonio", "TX", 29.4241, -98.4936),
    ("San Diego", "CA", 32.7157, -117.1611),
    ("Dallas", "TX", 32.7767, -96.7970),
    ("San Jose", "CA", 37.3382, -121.8863),
    ("Austin", "TX", 30.2672, -97.7431),
    ("Columbus", "OH", 39.9612, -82.9988),
    ("Charlotte", "NC", 35.2271, -80.8431),
    ("Indianapolis", "IN", 39.7684, -86.1581),
    ("Seattle", "WA", 47.6062, -122.3321),
    ("Denver", "CO", 39.7392, -104.9903),
    ("Boston", "MA", 42.3601, -71.0589),
    ("Nashville", "TN", 36.1627, -86.7816),
    ("Portland", "OR", 45.5152, -122.6784),
    ("Memphis", "TN", 35.1495, -90.0490),
    ("Springfield", "IL", 39.7817, -89.6501),
    ("Springfield", "MA", 42.1015, -72.5898),
    ("Springfield", "MO", 37.2090, -93.2923),
    ("Franklin", "TN", 35.9251, -86.8689),
    ("Franklin", "MA", 42.0834, -71.3967),
    ("Georgetown", "TX", 30.6333, -97.6770),
    ("Georgetown", "KY", 38.2098, -84.5588),
    ("Arlington", "TX", 32.7357, -97.1081),
    ("Arlington", "VA", 38.8816, -77.0910),
    ("Salem", "OR", 44.9429, -123.0351),
    ("Salem", "MA", 42.5195, -70.8967),
]

MOVIE_TITLE_WORDS = [
    "Night", "Day", "Shadow", "Light", "City", "Return", "Last", "First",
    "Dark", "Silent", "Broken", "Lost", "Hidden", "Golden", "Iron",
    "Crimson", "Winter", "Summer", "Storm", "River", "Mountain", "Ocean",
    "Garden", "Empire", "Kingdom", "Legacy", "Promise", "Secret",
    "Journey", "Memory", "Echo", "Horizon", "Mirror", "Crossing",
    "Harvest", "Vengeance", "Redemption", "Paradise", "Fortune", "Destiny",
]

DRUG_SYLLABLES_START = [
    "am", "ator", "benz", "carb", "ceft", "cipro", "clo", "dexa", "diaz",
    "eso", "fluo", "gaba", "halo", "ibu", "keto", "lam", "levo", "met",
    "nife", "olan", "oxy", "pento", "quin", "rami", "sert", "tetra",
    "valp", "vera", "warf", "zolp", "predni", "hydro", "chlor", "phen",
]

DRUG_SYLLABLES_MIDDLE = [
    "o", "i", "a", "ro", "ta", "xi", "do", "mo", "va", "ni", "co", "lo",
    "pra", "tri", "flu", "ben", "met", "dra",
]

DRUG_SYLLABLES_END = [
    "pril", "statin", "olol", "azepam", "cillin", "mycin", "oxacin",
    "idine", "amide", "azole", "pine", "zide", "profen", "setron",
    "mab", "tinib", "parin", "fenac", "triptan", "barbital",
]

LOCATION_PREFIXES = [
    "North", "South", "East", "West", "New", "Old", "Upper", "Lower",
    "Lake", "Mount", "Fort", "Port", "Saint", "Grand",
]

LOCATION_STEMS = [
    "field", "ville", "ton", "burg", "ham", "wood", "land", "ford",
    "haven", "ridge", "brook", "dale", "view", "port", "crest", "shore",
]


def person_name(rng: random.Random) -> tuple[str, str]:
    """A (first, last) name pair."""
    return rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)


def paper_title(rng: random.Random, words: int | None = None) -> str:
    """A synthetic paper title like 'Adaptive Learning of Neural Models'."""
    count = words if words is not None else rng.randint(4, 8)
    chosen = rng.sample(TITLE_WORDS, min(count, len(TITLE_WORDS)))
    connector = rng.choice(["of", "for", "with", "in"])
    head = " ".join(w.capitalize() for w in chosen[: max(2, count // 2)])
    tail = " ".join(w.capitalize() for w in chosen[max(2, count // 2) :])
    if tail:
        return f"{head} {connector} {tail}"
    return head


def restaurant_name(rng: random.Random) -> str:
    """Draw a plausible restaurant name."""
    pattern = rng.randrange(3)
    if pattern == 0:
        return f"{rng.choice(RESTAURANT_WORDS)} {rng.choice(RESTAURANT_WORDS)}"
    if pattern == 1:
        first, last = person_name(rng)
        return f"{last}'s {rng.choice(RESTAURANT_WORDS)}"
    return f"The {rng.choice(RESTAURANT_WORDS)} {rng.choice(RESTAURANT_WORDS)}"


def street_address(rng: random.Random) -> tuple[str, str]:
    """(full form, abbreviated form) of a street address."""
    number = rng.randint(1, 9999)
    street = rng.choice(STREET_NAMES)
    long_type, short_type = rng.choice(STREET_TYPES)
    return (
        f"{number} {street} {long_type}",
        f"{number} {street} {short_type}",
    )


def phone_number(rng: random.Random, area: int | None = None) -> tuple[str, str]:
    """(dashed form, slash-dotted form) of a US phone number.

    ``area`` pins the area code, letting callers model the fact that
    phones within one city share area codes (so the area code alone
    cannot discriminate restaurants).
    """
    if area is None:
        area = rng.randint(200, 989)
    exchange = rng.randint(200, 999)
    line = rng.randint(0, 9999)
    return (
        f"{area}-{exchange}-{line:04d}",
        f"{area}/{exchange}.{line:04d}",
    )


def drug_name(rng: random.Random) -> str:
    """A plausible generic drug name such as 'metoprolol'."""
    name = rng.choice(DRUG_SYLLABLES_START)
    if rng.random() < 0.6:
        name += rng.choice(DRUG_SYLLABLES_MIDDLE)
    name += rng.choice(DRUG_SYLLABLES_END)
    return name


def movie_title(rng: random.Random) -> str:
    """Draw a plausible movie title."""
    pattern = rng.randrange(3)
    if pattern == 0:
        return f"The {rng.choice(MOVIE_TITLE_WORDS)}"
    if pattern == 1:
        return (
            f"{rng.choice(MOVIE_TITLE_WORDS)} of the "
            f"{rng.choice(MOVIE_TITLE_WORDS)}"
        )
    return f"{rng.choice(MOVIE_TITLE_WORDS)} {rng.choice(MOVIE_TITLE_WORDS)}"


def location_name(rng: random.Random) -> str:
    """Draw a plausible place name."""
    pattern = rng.randrange(3)
    stem = rng.choice(LAST_NAMES) + rng.choice(LOCATION_STEMS)
    if pattern == 0:
        return f"{rng.choice(LOCATION_PREFIXES)} {stem.capitalize()}"
    if pattern == 1:
        return stem.capitalize()
    return f"{stem.capitalize()} {rng.choice(['Heights', 'Park', 'Springs', 'Falls'])}"


def cas_number(rng: random.Random) -> str:
    """A CAS-registry-like identifier, e.g. '50-78-2'."""
    return f"{rng.randint(50, 99999)}-{rng.randint(10, 99)}-{rng.randint(0, 9)}"


def atc_code(rng: random.Random) -> str:
    """An ATC-like drug classification code, e.g. 'C07AB02'."""
    letter1 = rng.choice("ABCDGHJLMNPRSV")
    letter2 = rng.choice("ABCDEFGHIJ")
    letter3 = rng.choice("ABCDEFGHIJ")
    return f"{letter1}{rng.randint(1, 16):02d}{letter2}{letter3}{rng.randint(1, 99):02d}"
