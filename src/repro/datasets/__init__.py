"""Synthetic reproductions of the paper's six evaluation datasets.

The original data dumps are not redistributable (and this environment
has no network access), so each dataset is *regenerated* by a seeded
synthetic generator that reproduces the published statistics (entity
counts, reference link counts, property counts, property coverage —
Tables 5 and 6) and, more importantly, the documented error structure
that drives the learning results: case noise, token reordering,
abbreviations, typos, format divergence between schemata, URI-wrapped
labels, split first/last names, shared-name corner cases and partially
missing identifiers. See DESIGN.md §3 for the substitution rationale.
"""

from repro.datasets.base import DatasetSpec, LinkageDataset
from repro.datasets.registry import DATASET_NAMES, dataset_spec, load_dataset

__all__ = [
    "DatasetSpec",
    "LinkageDataset",
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
]
