"""Dataset registry: name -> (spec, generator)."""

from __future__ import annotations

from repro.datasets import (
    cora,
    dbpedia_drugbank,
    linkedmdb,
    nyt,
    restaurant,
    sider_drugbank,
)
from repro.datasets.base import DatasetSpec, LinkageDataset

_GENERATORS = {
    "cora": (cora.SPEC, cora.generate),
    "restaurant": (restaurant.SPEC, restaurant.generate),
    "sider_drugbank": (sider_drugbank.SPEC, sider_drugbank.generate),
    "nyt": (nyt.SPEC, nyt.generate),
    "linkedmdb": (linkedmdb.SPEC, linkedmdb.generate),
    "dbpedia_drugbank": (dbpedia_drugbank.SPEC, dbpedia_drugbank.generate),
}

#: The paper's six evaluation datasets, in Table 5 order.
DATASET_NAMES = (
    "cora",
    "restaurant",
    "sider_drugbank",
    "nyt",
    "linkedmdb",
    "dbpedia_drugbank",
)


def dataset_spec(name: str) -> DatasetSpec:
    """The published statistics of a dataset (Tables 5 and 6)."""
    try:
        return _GENERATORS[name][0]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise KeyError(f"unknown dataset {name!r}; known: {known}")

def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> LinkageDataset:
    """Generate a dataset; ``scale`` < 1 shrinks entity/link counts
    proportionally (property counts and noise rates are preserved, so
    learning behaviour is comparable at reduced cost)."""
    spec, generator = _GENERATORS.get(name, (None, None))
    if generator is None:
        known = ", ".join(DATASET_NAMES)
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    effective = spec.scaled(scale) if scale != 1.0 else spec
    return generator(effective, seed)
