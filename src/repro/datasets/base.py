"""Common dataset container and generator interface."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.data.reference_links import (
    Link,
    ReferenceLinkSet,
    generate_negative_links,
)
from repro.data.source import DataSource


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of a dataset (Tables 5 and 6)."""

    name: str
    entities_a: int
    entities_b: int | None  # None for deduplication datasets
    positive_links: int
    properties_a: int
    properties_b: int | None
    coverage_a: float
    coverage_b: float | None
    description: str = ""

    def scaled(self, scale: float) -> "DatasetSpec":
        """Spec with entity/link counts scaled down for fast runs."""
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")

        def s(count: int | None) -> int | None:
            if count is None:
                return None
            return max(8, int(round(count * scale)))

        return DatasetSpec(
            name=self.name,
            entities_a=s(self.entities_a),
            entities_b=s(self.entities_b),
            positive_links=max(6, int(round(self.positive_links * scale))),
            properties_a=self.properties_a,
            properties_b=self.properties_b,
            coverage_a=self.coverage_a,
            coverage_b=self.coverage_b,
            description=self.description,
        )


@dataclass
class LinkageDataset:
    """A generated dataset: two sources plus reference links.

    For deduplication datasets (Cora, Restaurant) ``source_b`` is the
    same object as ``source_a``; links then relate entities within the
    single source.
    """

    name: str
    source_a: DataSource
    source_b: DataSource
    links: ReferenceLinkSet
    spec: DatasetSpec
    description: str = ""

    @property
    def is_deduplication(self) -> bool:
        return self.source_a is self.source_b

    def summary(self) -> dict:
        """Measured statistics in the shape of Tables 5 and 6."""
        return {
            "name": self.name,
            "entities_a": len(self.source_a),
            "entities_b": None if self.is_deduplication else len(self.source_b),
            "positive_links": len(self.links.positive),
            "negative_links": len(self.links.negative),
            "properties_a": self.source_a.property_count(),
            "properties_b": (
                None if self.is_deduplication else self.source_b.property_count()
            ),
            "coverage_a": round(self.source_a.coverage(), 2),
            "coverage_b": (
                None if self.is_deduplication else round(self.source_b.coverage(), 2)
            ),
        }


def balanced_links(
    positive: list[Link],
    rng: random.Random,
    extra_negatives: list[Link] | None = None,
) -> ReferenceLinkSet:
    """Build a balanced link set: |R-| = |R+| via cross-pairing.

    ``extra_negatives`` lets generators inject curated corner cases
    (e.g. LinkedMDB's same-title/different-year movie pairs) which count
    towards the balanced total.
    """
    extra = list(extra_negatives or ())
    needed = max(0, len(positive) - len(extra))
    generated = generate_negative_links(positive, rng, count=needed)
    positive_set = set(positive)
    negatives = [link for link in extra if link not in positive_set] + generated
    return ReferenceLinkSet(positive, negatives[: len(positive)])
