"""The Sider - DrugBank interlinking dataset (OAEI 2010).

Sider describes marketed drugs and their side effects with a compact
8-property schema (coverage 1.0); DrugBank describes approved drugs
with a wide 79-property schema of which roughly half is set per entity
(Table 6). Names diverge between the sources — Sider uses lower-case
generic names, DrugBank title-cased names, frequently decorated with
salt suffixes ("Metoprolol Tartrate"), plus upper-case synonym lists —
and CAS registry numbers are only partially present. Matching therefore
needs a combination of identifier equality and case-normalising name
comparison, which is why the participating OAEI systems struggled and
why transformations help (Table 13).
"""

from __future__ import annotations

import random

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import noise, vocab
from repro.datasets.base import DatasetSpec, LinkageDataset, balanced_links
from repro.datasets.fillers import add_fillers, filler_value

SPEC = DatasetSpec(
    name="sider_drugbank",
    entities_a=924,
    entities_b=4772,
    positive_links=859,
    properties_a=8,
    properties_b=79,
    coverage_a=1.0,
    coverage_b=0.5,
    description="Drugs in Sider vs. DrugBank (OAEI 2010 data interlinking).",
)

_SALTS = ("Tartrate", "Hydrochloride", "Sodium", "Sulfate", "Citrate", "Maleate")

_SIDE_EFFECTS = (
    "nausea", "headache", "dizziness", "fatigue", "insomnia", "rash",
    "vomiting", "diarrhea", "constipation", "dry mouth", "drowsiness",
    "anxiety", "tremor", "palpitations", "hypotension",
)


def _drug(rng: random.Random) -> dict:
    """Ground truth for one drug shared by both sources."""
    name = vocab.drug_name(rng)
    return {
        "name": name,
        "cas": vocab.cas_number(rng),
        "atc": vocab.atc_code(rng),
        "decorated": noise.maybe(0.35, rng),
        "salt": rng.choice(_SALTS),
    }


def _sider_record(drug: dict, index: int, rng: random.Random) -> dict:
    """Sider side: 8 properties, all present (coverage 1.0)."""
    return {
        "siderName": drug["name"].lower(),
        "siderLabel": drug["name"].lower(),
        "casNumber": drug["cas"],
        "siderId": f"CID{rng.randint(1, 9_999_999):07d}",
        "sideEffect": tuple(rng.sample(_SIDE_EFFECTS, 3)),
        "indication": filler_value(rng, side=0),
        "frequency": f"{rng.randint(1, 99)}%",
        "sourceUrl": f"http://sideeffects.embl.de/drugs/{rng.randint(1, 99_999)}",
    }


def _drugbank_record(drug: dict, index: int, rng: random.Random) -> dict:
    """DrugBank side: wide schema, ~50% coverage."""
    name = drug["name"].capitalize()
    if drug["decorated"]:
        name = f"{name} {drug['salt']}"
    record: dict = {
        "drugName": name,
        "drugbankId": f"DB{rng.randint(1, 99_999):05d}",
    }
    if noise.maybe(0.80, rng):
        # Synonym lists are upper-cased in DrugBank exports; lowerCase
        # is the transformation that unlocks them.
        record["synonym"] = (drug["name"].upper(),)
    if noise.maybe(0.75, rng):
        record["casNumber"] = drug["cas"]
    if noise.maybe(0.60, rng):
        record["atcCode"] = drug["atc"]
    if noise.maybe(0.70, rng):
        record["molecularWeight"] = f"{rng.uniform(100, 900):.2f}"
    add_fillers(record, "dbProp", 73, presence=0.46, rng=rng, side=1)
    return record


def generate(spec: DatasetSpec, seed: int) -> LinkageDataset:
    """Generate the Sider-DrugBank dataset at the sizes of ``spec``."""
    rng = random.Random(seed)
    sider = DataSource("sider")
    drugbank = DataSource("drugbank")
    positive: list[tuple[str, str]] = []

    linked = min(spec.positive_links, spec.entities_a, spec.entities_b or 0)
    for i in range(linked):
        drug = _drug(rng)
        uid_a = f"sider:{i:05d}"
        uid_b = f"drugbank:{i:05d}"
        sider.add(Entity(uid_a, _sider_record(drug, i, rng)))
        drugbank.add(Entity(uid_b, _drugbank_record(drug, i, rng)))
        positive.append((uid_a, uid_b))

    index = linked
    while len(sider) < spec.entities_a:
        drug = _drug(rng)
        sider.add(Entity(f"sider:{index:05d}", _sider_record(drug, index, rng)))
        index += 1
    while len(drugbank) < (spec.entities_b or 0):
        drug = _drug(rng)
        drugbank.add(
            Entity(f"drugbank:{index:05d}", _drugbank_record(drug, index, rng))
        )
        index += 1

    links = balanced_links(positive, rng)
    return LinkageDataset(
        name=spec.name,
        source_a=sider,
        source_b=drugbank,
        links=links,
        spec=spec,
        description=SPEC.description,
    )
