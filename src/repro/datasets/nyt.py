"""The New York Times - DBpedia locations dataset (OAEI 2011).

NYT locations carry "City, State" names with inconsistent letter case
and occasional token reorderings plus a comma-separated coordinate pair
(present on ~75% of records); DBpedia locations are identified by a
URI-wrapped label ("http://dbpedia.org/resource/Salem,_Massachusetts"),
a clean name on only a third of the entities, and a WKT point. The
schemas are wide (38 and 110 properties) with low coverage (Table 6),
which makes unseeded random rule generation nearly useless (Table 14's
0.178) and makes this the dataset where the full representation gains
the most over transformation-free ones (Table 13: 0.714 -> 0.916):
without ``stripUriPrefix``/``lowerCase``/``tokenize`` the label is
unusable and only the partially covered geo/name properties remain.
Negatives include same-name different-state city pairs.
"""

from __future__ import annotations

import random

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import noise, vocab
from repro.datasets.base import DatasetSpec, LinkageDataset, balanced_links
from repro.datasets.fillers import add_fillers

SPEC = DatasetSpec(
    name="nyt",
    entities_a=5620,
    entities_b=1819,
    positive_links=1920,
    properties_a=38,
    properties_b=110,
    coverage_a=0.3,
    coverage_b=0.2,
    description="NYT locations vs. DBpedia (OAEI 2011 data interlinking).",
)

_STATES = [
    ("Alabama", 32.8, -86.8), ("Arizona", 34.3, -111.7),
    ("California", 36.5, -119.8), ("Colorado", 39.0, -105.5),
    ("Florida", 28.6, -82.4), ("Georgia", 32.6, -83.4),
    ("Illinois", 40.0, -89.2), ("Indiana", 39.9, -86.3),
    ("Kansas", 38.5, -98.4), ("Kentucky", 37.5, -85.3),
    ("Massachusetts", 42.3, -71.8), ("Michigan", 44.3, -85.4),
    ("Missouri", 38.4, -92.5), ("New York", 42.9, -75.5),
    ("Ohio", 40.3, -82.8), ("Oregon", 43.9, -120.6),
    ("Pennsylvania", 40.9, -77.8), ("Tennessee", 35.9, -86.4),
    ("Texas", 31.5, -99.3), ("Virginia", 37.5, -78.9),
]


def _location(rng: random.Random) -> dict:
    state, base_lat, base_lon = rng.choice(_STATES)
    lat = base_lat + rng.uniform(-2.5, 2.5)
    lon = base_lon + rng.uniform(-2.5, 2.5)
    return {
        "city": vocab.location_name(rng),
        "state": state,
        "lat": lat,
        "lon": lon,
    }


def _nyt_record(location: dict, index: int, rng: random.Random) -> dict:
    # A quarter of NYT names omit the state, so pure name matching
    # cannot reach full recall and the geo comparison stays relevant.
    if noise.maybe(0.25, rng):
        name = location["city"]
    else:
        name = f"{location['city']}, {location['state']}"
    if noise.maybe(0.5, rng):
        name = noise.case_noise(name, rng)
    if noise.maybe(0.2, rng):
        name = noise.shuffle_tokens(name, rng)
    record: dict = {
        "nytName": name,
        "nytId": f"nyt:loc/{rng.randint(1, 9_999_999)}",
    }
    if noise.maybe(0.75, rng):
        lat, lon = noise.coordinate_jitter(
            location["lat"], location["lon"], rng, max_metres=400.0
        )
        record["geo"] = noise.latlon_pair(lat, lon)
    add_fillers(record, "nytProp", 35, presence=0.24, rng=rng, side=0)
    return record


def _dbpedia_record(location: dict, rng: random.Random) -> dict:
    full_name = f"{location['city']}, {location['state']}"
    record: dict = {
        "label": noise.uri_wrap(full_name),
    }
    if noise.maybe(0.35, rng):
        record["name"] = full_name
    if noise.maybe(0.70, rng):
        lat, lon = noise.coordinate_jitter(
            location["lat"], location["lon"], rng, max_metres=400.0
        )
        record["point"] = noise.wkt_point(lat, lon)
    add_fillers(record, "dbpProp", 107, presence=0.17, rng=rng, side=1)
    return record


def generate(spec: DatasetSpec, seed: int) -> LinkageDataset:
    """Generate the NYT dataset at the sizes of ``spec``."""
    rng = random.Random(seed)
    nyt = DataSource("nyt")
    dbpedia = DataSource("dbpedia_locations")
    positive: list[tuple[str, str]] = []
    corner_negatives: list[tuple[str, str]] = []

    target_b = spec.entities_b or 0
    linked = min(spec.positive_links, spec.entities_a)
    nyt_index = 0
    # Some DBpedia locations receive two NYT links (|R+| > |B| in Table 5).
    for b_index in range(min(linked, target_b)):
        location = _location(rng)
        uid_b = f"dbp:{b_index:05d}"
        dbpedia.add(Entity(uid_b, _dbpedia_record(location, rng)))
        fanout = 2 if linked > target_b and rng.random() < (
            (linked - target_b) / max(target_b, 1)
        ) else 1
        for _ in range(fanout):
            if len(positive) >= linked:
                break
            uid_a = f"nyt:{nyt_index:05d}"
            nyt.add(Entity(uid_a, _nyt_record(location, nyt_index, rng)))
            nyt_index += 1
            positive.append((uid_a, uid_b))

    # Same-city-name, different-state corner cases: an unlinked NYT
    # record whose city name collides with a linked DBpedia location.
    collision_count = max(4, len(positive) // 12)
    for _ in range(collision_count):
        if not positive:
            break
        uid_a, uid_b = positive[rng.randrange(len(positive))]
        original = dbpedia.get(uid_b)
        label = original.values("label")[0]
        city = label.rsplit("/", 1)[-1].replace("_", " ").split(",")[0]
        other_state = rng.choice([s for s in _STATES if s[0] not in label])
        twin = _location(rng)
        twin["city"] = city
        twin["state"], base_lat, base_lon = other_state
        twin["lat"] = base_lat + rng.uniform(-2.5, 2.5)
        twin["lon"] = base_lon + rng.uniform(-2.5, 2.5)
        twin_uid = f"nyt:{nyt_index:05d}"
        nyt.add(Entity(twin_uid, _nyt_record(twin, nyt_index, rng)))
        nyt_index += 1
        corner_negatives.append((twin_uid, uid_b))

    while len(nyt) < spec.entities_a:
        location = _location(rng)
        nyt.add(Entity(f"nyt:{nyt_index:05d}", _nyt_record(location, nyt_index, rng)))
        nyt_index += 1
    b_index = len(dbpedia)
    while len(dbpedia) < target_b:
        location = _location(rng)
        dbpedia.add(Entity(f"dbp:{b_index:05d}", _dbpedia_record(location, rng)))
        b_index += 1

    links = balanced_links(positive, rng, extra_negatives=corner_negatives)
    return LinkageDataset(
        name=spec.name,
        source_a=nyt,
        source_b=dbpedia,
        links=links,
        spec=spec,
        description=SPEC.description,
    )
