"""The Restaurant (Fodor's / Zagat's) deduplication dataset.

864 restaurant records with name, address, city, phone and type, all
properties always present (coverage 1.0 — Table 6), of which 112 pairs
describe the same restaurant. The noise is light — minor name typos,
abbreviated street types, diverging phone formats, cuisine synonyms —
which is why every learner gets close to a perfect score here
(Tables 8 and 13).
"""

from __future__ import annotations

import random

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import noise, vocab
from repro.datasets.base import DatasetSpec, LinkageDataset, balanced_links

SPEC = DatasetSpec(
    name="restaurant",
    entities_a=864,
    entities_b=None,
    positive_links=112,
    properties_a=5,
    properties_b=None,
    coverage_a=1.0,
    coverage_b=None,
    description="Restaurant records from two guides (deduplication).",
)

_TYPE_SYNONYMS = {
    "American": "American (New)",
    "Barbecue": "BBQ",
    "Delicatessen": "Deli",
    "Steakhouse": "Steak House",
    "Mediterranean": "Med.",
}


def _area_code(city: str) -> int:
    """A deterministic per-city area code: restaurants in one city share
    it, so the area code alone cannot discriminate entities."""
    return 200 + (sum(ord(c) for c in city) * 37) % 780


def _restaurant(rng: random.Random) -> dict:
    city, _state, _lat, _lon = rng.choice(vocab.US_CITIES)
    address_full, address_short = vocab.street_address(rng)
    phone_dashed, phone_dotted = vocab.phone_number(rng, area=_area_code(city))
    return {
        "name": vocab.restaurant_name(rng),
        "address": (address_full, address_short),
        "city": city,
        "phone": (phone_dashed, phone_dotted),
        "type": rng.choice(vocab.CUISINES),
    }


def _record(restaurant: dict, variant: int, rng: random.Random) -> dict[str, str]:
    """Render a restaurant as guide A (variant 0) or guide B (variant 1)."""
    name = restaurant["name"]
    if variant == 1:
        if noise.maybe(0.30, rng):
            name = noise.typo(name, rng)
        if noise.maybe(0.20, rng):
            name = name.lower()
    cuisine = restaurant["type"]
    if variant == 1:
        cuisine = _TYPE_SYNONYMS.get(cuisine, cuisine)
    phone = restaurant["phone"][variant]
    if variant == 1 and noise.maybe(0.30, rng):
        # One transcribed digit differs between the guides, so the
        # phone alone cannot solve the dataset.
        digits = [c for c in phone]
        positions = [i for i, c in enumerate(digits) if c.isdigit()]
        flip = positions[rng.randrange(len(positions))]
        digits[flip] = str((int(digits[flip]) + rng.randint(1, 9)) % 10)
        phone = "".join(digits)
    return {
        "name": name,
        "address": restaurant["address"][variant],
        "city": restaurant["city"],
        "phone": phone,
        "type": cuisine,
    }


def generate(spec: DatasetSpec, seed: int) -> LinkageDataset:
    """Generate the Restaurant dataset at the sizes given by ``spec``."""
    rng = random.Random(seed)
    source = DataSource("restaurant")
    positive: list[tuple[str, str]] = []
    corner_negatives: list[tuple[str, str]] = []
    by_city: dict[str, list[str]] = {}
    index = 0

    def next_uid() -> str:
        nonlocal index
        uid = f"rest:{index:05d}"
        index += 1
        return uid

    # Duplicate pairs first, then unique records up to the entity count.
    duplicate_pairs = min(spec.positive_links, spec.entities_a // 2)
    for _ in range(duplicate_pairs):
        restaurant = _restaurant(rng)
        uid_a = next_uid()
        uid_b = next_uid()
        source.add(Entity(uid_a, _record(restaurant, 0, rng)))
        source.add(Entity(uid_b, _record(restaurant, 1, rng)))
        positive.append((uid_a, uid_b))
        by_city.setdefault(restaurant["city"], []).append(uid_a)
    while len(source) < spec.entities_a:
        restaurant = _restaurant(rng)
        uid = next_uid()
        source.add(Entity(uid, _record(restaurant, rng.randrange(2), rng)))
        by_city.setdefault(restaurant["city"], []).append(uid)

    # Same-city corner-case negatives: these share city and area code,
    # so the rule must compare names/addresses, not just the phone.
    for city_uids in by_city.values():
        for i in range(0, len(city_uids) - 1, 2):
            corner_negatives.append((city_uids[i], city_uids[i + 1]))
    rng.shuffle(corner_negatives)
    corner_negatives = corner_negatives[: max(4, len(positive) // 2)]

    links = balanced_links(positive, rng, extra_negatives=corner_negatives)
    return LinkageDataset(
        name=spec.name,
        source_a=source,
        source_b=source,
        links=links,
        spec=spec,
        description=SPEC.description,
    )
