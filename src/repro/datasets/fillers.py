"""Filler (distractor) properties for wide-schema datasets.

The RDF datasets of the paper have up to 110 properties of which only a
handful are useful for matching (Table 6); the rest are what makes the
unseeded search space huge (Table 14). Filler properties carry values
that are uncorrelated between matched entities, so comparisons over
them are useless to the learner — exactly the role the real datasets'
long-tail properties play.
"""

from __future__ import annotations

import random

# Disjoint word pools per side: in the real datasets the long-tail
# properties of the two sources hold unrelated values, so they must not
# trip Algorithm 2's token-compatibility check across sides.
_FILLER_WORDS_A = [
    "alpha", "gamma", "epsilon", "theta", "lambda", "omega", "basalt",
    "obsidian", "harbor", "glacier", "tundra", "monsoon", "cobalt",
    "viridian", "ivory", "umber", "cerulean", "magenta",
]
_FILLER_WORDS_B = [
    "betavine", "deltoid", "zetavar", "kapstone", "sigmelle", "quartzen",
    "granison", "meadowrel", "canyonet", "prairsten", "lagoonal",
    "zephyrum", "crimsonet", "ambrelle", "sablewick", "ochreval",
    "indigore", "vermelion",
]


def filler_value(rng: random.Random, side: int = 0) -> str:
    """A random value that will not correlate across matched entities.

    ``side`` (0 or 1) selects a per-source word pool and number range so
    cross-side values are never Levenshtein- or numerically compatible.
    """
    words = _FILLER_WORDS_A if side == 0 else _FILLER_WORDS_B
    kind = rng.randrange(3)
    if kind == 0:
        return f"{rng.choice(words)} {rng.choice(words)}"
    if kind == 1:
        if side == 0:
            return str(rng.randint(10_000, 99_999))
        return str(rng.randint(1_000_000, 9_999_999))
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(8))


def add_fillers(
    record: dict[str, str | tuple[str, ...]],
    prefix: str,
    count: int,
    presence: float,
    rng: random.Random,
    side: int = 0,
) -> None:
    """Add up to ``count`` filler properties, each present with
    probability ``presence`` (tunes the Table 6 coverage figures)."""
    for i in range(count):
        if rng.random() < presence:
            record[f"{prefix}{i:03d}"] = filler_value(rng, side=side)
