"""The Cora citation deduplication dataset (synthetic reproduction).

Cora contains citations to research papers with title, author, venue
and publication date (4 properties, coverage 0.8 — Table 6). Citations
of the same paper diverge heavily: letter case, typos, dropped title
words, reordered and abbreviated author lists, full vs. abbreviated
venue names and inconsistent date formats. This noise structure is
what makes data transformations pay off on Cora (Table 13: the full
representation gains ~6 F1 points over transformation-free ones).
"""

from __future__ import annotations

import random

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.datasets import noise, vocab
from repro.datasets.base import DatasetSpec, LinkageDataset, balanced_links

SPEC = DatasetSpec(
    name="cora",
    entities_a=1879,
    entities_b=None,
    positive_links=1617,
    properties_a=4,
    properties_b=None,
    coverage_a=0.8,
    coverage_b=None,
    description="Citations to research papers (deduplication).",
)

#: Cluster size distribution: tuned so that ~1879 citations yield
#: ~1617 within-cluster pairs (the Table 5 counts).
_CLUSTER_SIZES = (1, 2, 3, 4, 5, 6)
_CLUSTER_WEIGHTS = (0.25, 0.45, 0.18, 0.08, 0.03, 0.01)


#: Research paper titles draw from a narrow shared vocabulary — in the
#: real Cora, different papers' titles overlap heavily in terms like
#: "learning" or "data", which is what makes pure token overlap an
#: imperfect signal and leaves room for the learning curve to climb.
_TITLE_POOL = vocab.TITLE_WORDS[:26]


def _paper(rng: random.Random) -> dict:
    """The ground-truth paper record a cluster of citations refers to."""
    authors = [vocab.person_name(rng) for _ in range(rng.randint(2, 4))]
    venue_full, venue_short = rng.choice(vocab.VENUES)
    word_count = rng.randint(5, 8)
    words = rng.sample(_TITLE_POOL, word_count)
    title = " ".join(w.capitalize() for w in words)
    return {
        "title": title,
        "authors": authors,
        "venue": (venue_full, venue_short),
        "year": rng.randint(1985, 2011),
        "month": rng.randint(1, 12),
        "day": rng.randint(1, 28),
    }


def _citation(paper: dict, rng: random.Random) -> dict[str, str]:
    """One noisy citation of a paper."""
    title = paper["title"]
    if noise.maybe(0.50, rng):
        # Citations lower-case titles but never full-upper them, so the
        # character distance of a case variant stays moderate. Case
        # noise is the dominant corruption: only a lowerCase
        # transformation recovers it, for any measure.
        title = title.lower()
    if noise.maybe(0.30, rng):
        # Reordered title renderings ("Analysis of X — a survey" vs
        # "A survey: analysis of X"): character measures break, token
        # measures survive. Together with the case noise this is what
        # only a lowerCase+tokenize transformation chain can fix.
        title = noise.shuffle_tokens(title, rng)
    if noise.maybe(0.30, rng):
        title = noise.typo(title, rng, edits=rng.randint(1, 2))
    if noise.maybe(0.20, rng):
        title = noise.drop_token(title, rng)

    record: dict[str, str] = {"title": title}

    if noise.maybe(0.95, rng):
        authors = list(paper["authors"])
        if noise.maybe(0.3, rng):
            rng.shuffle(authors)
        author_field = noise.author_list(authors, rng)
        if noise.maybe(0.35, rng):
            # BibTeX styles frequently upper-case author names
            # ("SMITH, J."), which breaks case-sensitive token overlap.
            author_field = author_field.upper()
        record["author"] = author_field

    if noise.maybe(0.75, rng):
        venue_full, venue_short = paper["venue"]
        venue = venue_full if noise.maybe(0.5, rng) else venue_short
        if noise.maybe(0.3, rng):
            venue = noise.case_noise(venue, rng)
        record["venue"] = venue

    if noise.maybe(0.50, rng):
        record["date"] = noise.date_format(
            paper["year"], paper["month"], paper["day"], rng
        )
    return record


def generate(spec: DatasetSpec, seed: int) -> LinkageDataset:
    """Generate the Cora dataset at the sizes given by ``spec``."""
    rng = random.Random(seed)
    source = DataSource("cora")
    positive: list[tuple[str, str]] = []
    index = 0
    while len(source) < spec.entities_a:
        paper = _paper(rng)
        size = rng.choices(_CLUSTER_SIZES, weights=_CLUSTER_WEIGHTS)[0]
        size = min(size, spec.entities_a - len(source))
        if size == 0:
            break
        uids = []
        for _ in range(size):
            uid = f"cora:{index:05d}"
            index += 1
            source.add(Entity(uid, _citation(paper, rng)))
            uids.append(uid)
        for i in range(len(uids)):
            for j in range(i + 1, len(uids)):
                positive.append((uids[i], uids[j]))
    links = balanced_links(positive, rng)
    return LinkageDataset(
        name=spec.name,
        source_a=source,
        source_b=source,
        links=links,
        spec=spec,
        description=SPEC.description,
    )
