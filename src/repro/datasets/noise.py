"""Noise models: the corruption operators applied by dataset generators.

Each function takes the caller's ``random.Random`` so corruption is
reproducible. The noise classes mirror the error structure the paper
describes for its datasets: typos (Levenshtein-correctable), letter-case
inconsistency (fixed by ``lowerCase``), token reordering (fixed by
``tokenize`` + jaccard), abbreviations, dropped tokens, diverging value
formats and URI-wrapping.
"""

from __future__ import annotations

import random

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def typo(value: str, rng: random.Random, edits: int = 1) -> str:
    """Apply ``edits`` random character edits (insert/delete/substitute/swap)."""
    chars = list(value)
    for _ in range(edits):
        if not chars:
            chars = [rng.choice(_ALPHABET)]
            continue
        kind = rng.randrange(4)
        pos = rng.randrange(len(chars))
        if kind == 0:  # substitute
            chars[pos] = rng.choice(_ALPHABET)
        elif kind == 1:  # delete
            del chars[pos]
        elif kind == 2:  # insert
            chars.insert(pos, rng.choice(_ALPHABET))
        elif len(chars) >= 2:  # swap adjacent
            pos = min(pos, len(chars) - 2)
            chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
    return "".join(chars)


def case_noise(value: str, rng: random.Random) -> str:
    """Randomly recase a value (UPPER / lower / Title)."""
    kind = rng.randrange(3)
    if kind == 0:
        return value.upper()
    if kind == 1:
        return value.lower()
    return value.title()


def shuffle_tokens(value: str, rng: random.Random) -> str:
    """Reorder the whitespace tokens of a value."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    rng.shuffle(tokens)
    return " ".join(tokens)


def drop_token(value: str, rng: random.Random) -> str:
    """Remove one random token (keeps at least one)."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    del tokens[rng.randrange(len(tokens))]
    return " ".join(tokens)


def abbreviate_name(first: str, last: str, rng: random.Random) -> str:
    """Render a person name in one of the formats found in citations."""
    style = rng.randrange(4)
    if style == 0:
        return f"{first} {last}"
    if style == 1:
        return f"{first[0]}. {last}"
    if style == 2:
        return f"{last}, {first}"
    return f"{last}, {first[0]}."


def author_list(
    names: list[tuple[str, str]], rng: random.Random
) -> str:
    """A citation-style author list with a random separator convention."""
    rendered = [abbreviate_name(first, last, rng) for first, last in names]
    separator = rng.choice([", ", " and ", "; "])
    return separator.join(rendered)


def date_format(year: int, month: int, day: int, rng: random.Random) -> str:
    """Render a date in one of several formats, sometimes year-only."""
    style = rng.randrange(4)
    if style == 0:
        return f"{year:04d}-{month:02d}-{day:02d}"
    if style == 1:
        return f"{day:02d}.{month:02d}.{year:04d}"
    if style == 2:
        return f"{year}"
    months = (
        "January", "February", "March", "April", "May", "June", "July",
        "August", "September", "October", "November", "December",
    )
    return f"{months[month - 1]} {day}, {year}"


def coordinate_jitter(
    lat: float, lon: float, rng: random.Random, max_metres: float = 500.0
) -> tuple[float, float]:
    """Perturb a coordinate by up to ``max_metres`` (roughly)."""
    # ~1 degree latitude ≈ 111 km.
    max_degrees = max_metres / 111_000.0
    return (
        lat + rng.uniform(-max_degrees, max_degrees),
        lon + rng.uniform(-max_degrees, max_degrees),
    )


def wkt_point(lat: float, lon: float) -> str:
    """Render a coordinate in WKT (``POINT(lon lat)``) notation."""
    return f"POINT({lon:.5f} {lat:.5f})"


def latlon_pair(lat: float, lon: float) -> str:
    """Render a coordinate as a ``lat,lon`` pair."""
    return f"{lat:.5f},{lon:.5f}"


def uri_wrap(value: str, prefix: str = "http://dbpedia.org/resource/") -> str:
    """Encode a label as a Linked Data URI."""
    return prefix + value.replace(" ", "_")


def punctuation_noise(value: str, rng: random.Random) -> str:
    """Inject or vary punctuation (hyphens/periods) between tokens."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    joiner = rng.choice(["-", ". ", " - ", ", "])
    position = rng.randrange(len(tokens) - 1)
    head = " ".join(tokens[: position + 1])
    tail = " ".join(tokens[position + 1 :])
    return f"{head}{joiner}{tail}"


def maybe(probability: float, rng: random.Random) -> bool:
    """Shorthand for a Bernoulli draw."""
    return rng.random() < probability
