"""Entity data model: entities, data sources and reference links."""

from repro.data.entity import Entity
from repro.data.source import DataSource
from repro.data.reference_links import (
    ReferenceLinkSet,
    generate_negative_links,
)
from repro.data.profiling import (
    PropertyProfile,
    SourceProfile,
    profile_source,
)
from repro.data.splits import cross_validation_folds, train_validation_split
from repro.data.io import (
    load_links_csv,
    load_source_csv,
    load_source_jsonl,
    load_source_ntriples,
    save_links_csv,
    save_links_ntriples,
    save_source_csv,
    save_source_jsonl,
    save_source_ntriples,
)

__all__ = [
    "Entity",
    "DataSource",
    "ReferenceLinkSet",
    "generate_negative_links",
    "PropertyProfile",
    "SourceProfile",
    "profile_source",
    "cross_validation_folds",
    "train_validation_split",
    "load_links_csv",
    "load_source_csv",
    "load_source_jsonl",
    "load_source_ntriples",
    "save_links_csv",
    "save_links_ntriples",
    "save_source_csv",
    "save_source_jsonl",
    "save_source_ntriples",
]
