"""Reference link sets (Definition 2) and negative-link generation.

The evaluation datasets ship with positive links only; the paper
generates negatives by cross-pairing: for two positive links (a, b) and
(c, d) it adds (a, d) and (c, b) as negatives, which is sound when the
positive links are complete or the sources are internally duplicate-free
(Section 6.1).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.data.entity import Entity
from repro.data.source import DataSource

Link = tuple[str, str]


class ReferenceLinkSet:
    """Positive and negative reference links between two data sources."""

    def __init__(
        self,
        positive: Iterable[Link] = (),
        negative: Iterable[Link] = (),
    ):
        self._positive: list[Link] = list(dict.fromkeys(tuple(l) for l in positive))
        self._negative: list[Link] = list(dict.fromkeys(tuple(l) for l in negative))
        overlap = set(self._positive) & set(self._negative)
        if overlap:
            raise ValueError(
                f"{len(overlap)} link(s) are both positive and negative, "
                f"e.g. {next(iter(overlap))}"
            )

    @property
    def positive(self) -> list[Link]:
        return list(self._positive)

    @property
    def negative(self) -> list[Link]:
        return list(self._negative)

    def __len__(self) -> int:
        return len(self._positive) + len(self._negative)

    def __iter__(self) -> Iterator[tuple[Link, bool]]:
        """Iterate (link, is_positive) pairs, positives first."""
        for link in self._positive:
            yield link, True
        for link in self._negative:
            yield link, False

    def labelled_pairs(
        self, source_a: DataSource, source_b: DataSource
    ) -> tuple[list[tuple[Entity, Entity]], list[bool]]:
        """Resolve links to entity pairs plus a parallel label list."""
        pairs: list[tuple[Entity, Entity]] = []
        labels: list[bool] = []
        for (uid_a, uid_b), label in self:
            pairs.append((source_a.get(uid_a), source_b.get(uid_b)))
            labels.append(label)
        return pairs, labels

    def subset(self, indices: Sequence[int]) -> "ReferenceLinkSet":
        """A new link set containing the links at the given indices.

        Indices follow the iteration order of :meth:`__iter__`
        (positives first, then negatives).
        """
        all_links = list(self)
        chosen = [all_links[i] for i in indices]
        positive = [link for link, label in chosen if label]
        negative = [link for link, label in chosen if not label]
        return ReferenceLinkSet(positive, negative)

    def shuffled(self, rng: random.Random) -> "ReferenceLinkSet":
        """A copy with both lists shuffled (stable content)."""
        positive = list(self._positive)
        negative = list(self._negative)
        rng.shuffle(positive)
        rng.shuffle(negative)
        return ReferenceLinkSet(positive, negative)

    def with_negatives(self, negative: Iterable[Link]) -> "ReferenceLinkSet":
        return ReferenceLinkSet(self._positive, negative)

    def __repr__(self) -> str:
        return (
            f"ReferenceLinkSet({len(self._positive)} positive, "
            f"{len(self._negative)} negative)"
        )


def generate_negative_links(
    positive: Sequence[Link],
    rng: random.Random,
    count: int | None = None,
) -> list[Link]:
    """Generate negative links by cross-pairing positive links.

    For two positive links (a, b) and (c, d), the pairs (a, d) and
    (c, b) are negatives (Section 6.1). Positive links are paired up in
    a shuffled round so that by default exactly ``len(positive)``
    negatives are produced, matching the balanced |R+| = |R-| counts of
    Table 5.
    """
    if len(positive) < 2:
        return []
    target = count if count is not None else len(positive)
    existing = set(positive)
    negatives: list[Link] = []
    seen: set[Link] = set()
    attempts = 0
    max_attempts = max(100, target * 20)
    while len(negatives) < target and attempts < max_attempts:
        attempts += 1
        (a, b) = positive[rng.randrange(len(positive))]
        (c, d) = positive[rng.randrange(len(positive))]
        if a == c or b == d:
            continue
        for candidate in ((a, d), (c, b)):
            if candidate in existing or candidate in seen:
                continue
            seen.add(candidate)
            negatives.append(candidate)
            if len(negatives) >= target:
                break
    return negatives
