"""The :class:`Entity` record type.

An entity (Section 2) is described by a set of properties, each of which
holds zero or more string values — the natural model for both RDF
resources (multi-valued by construction) and relational records
(single-valued). Entities are immutable so they can be shared freely
between data sources, pair lists and caches.
"""

from __future__ import annotations

import hashlib
from types import MappingProxyType
from typing import Iterable, Mapping


class Entity:
    """An immutable entity with a unique id and multi-valued properties."""

    __slots__ = ("_uid", "_properties", "_fingerprint")

    def __init__(
        self,
        uid: str,
        properties: Mapping[str, Iterable[str] | str],
    ):
        if not uid:
            raise ValueError("entity uid must be non-empty")
        normalized: dict[str, tuple[str, ...]] = {}
        for name, values in properties.items():
            if isinstance(values, str):
                values = (values,)
            value_tuple = tuple(str(v) for v in values if str(v) != "")
            if value_tuple:
                normalized[name] = value_tuple
        self._uid = uid
        self._properties = MappingProxyType(normalized)
        self._fingerprint: str | None = None

    @property
    def uid(self) -> str:
        return self._uid

    @property
    def properties(self) -> Mapping[str, tuple[str, ...]]:
        return self._properties

    def values(self, property_name: str) -> tuple[str, ...]:
        """All values of a property; empty tuple when unset."""
        return self._properties.get(property_name, ())

    def has(self, property_name: str) -> bool:
        return property_name in self._properties

    def property_names(self) -> tuple[str, ...]:
        return tuple(self._properties)

    def fingerprint(self) -> str:
        """Content hash of this entity (uid + every property value).

        The persistent column store keys cached distance columns by
        pair-content fingerprints, so any change to any property value
        changes the key and stale columns are never served. Computed
        lazily and cached — entities are immutable, so the hash can
        never go stale.
        """
        cached = self._fingerprint
        if cached is None:
            digest = hashlib.sha256()

            def feed(text: str) -> None:
                # Length-prefixed so the encoding is injective: a value
                # containing a would-be separator byte cannot collide
                # with two separate values of the same concatenation.
                encoded = text.encode("utf-8")
                digest.update(str(len(encoded)).encode("ascii"))
                digest.update(b":")
                digest.update(encoded)

            feed(self._uid)
            for name in sorted(self._properties):
                values = self._properties[name]
                feed(name)
                digest.update(str(len(values)).encode("ascii"))
                digest.update(b";")
                for value in values:
                    feed(value)
            cached = digest.hexdigest()
            self._fingerprint = cached
        return cached

    def revised(self, updates: Mapping[str, Iterable[str] | str]) -> "Entity":
        """A copy of this entity with some property values replaced.

        ``updates`` is merged over the existing properties; mapping a
        property to an empty value removes it (the constructor drops
        empty values). The uid is preserved, which is what makes the
        result an *upsert* of this entity rather than a new one. The
        copy's content fingerprint is recomputed lazily like any other
        entity's, so delta ingestion pays the hash cost only for the
        entities that actually changed.
        """
        merged: dict[str, Iterable[str] | str] = dict(self._properties)
        merged.update(updates)
        return Entity(self._uid, merged)

    def __reduce__(self) -> tuple:
        """Pickle support (mappingproxy is not picklable by default).

        Entities cross process boundaries when matching shards run on a
        process-pool executor; reconstruction through ``__init__``
        re-normalises the already-normalised values, which is a no-op,
        so the round trip is exact.
        """
        return (Entity, (self._uid, dict(self._properties)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entity):
            return NotImplemented
        return self._uid == other._uid and dict(self._properties) == dict(
            other._properties
        )

    def __hash__(self) -> int:
        return hash(self._uid)

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{name}={values[0]!r}" for name, values in list(self._properties.items())[:3]
        )
        return f"Entity({self._uid!r}, {preview})"
