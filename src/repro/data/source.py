"""The :class:`DataSource` container.

A data source is a keyed collection of entities sharing (loosely) a
schema. It provides the property statistics used in Table 6 of the
paper: the number of distinct properties and their *coverage*, i.e. the
average fraction of entities on which a property is actually set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.data.entity import Entity

# Upper bound on the retained delta log. The log exists so persisted
# index payloads a few epochs old can be patched forward instead of
# rebuilt; beyond this horizon a rebuild is cheaper than replaying the
# chain, so older deltas are dropped and patching falls back cleanly.
_DELTA_LOG_LIMIT = 16


@dataclass(frozen=True)
class SourceDelta:
    """One applied upsert/delete batch in a source's epoch chain.

    Captures everything an index patcher needs to move a payload from
    the parent epoch to this one without touching the source again:
    the *new* entity versions (``upserts``), the *old* versions they
    displaced (``replaced``), and the old versions of removed entities
    (``deletes``). ``parent_fingerprint`` → ``fingerprint`` is the edge
    this delta represents in the chain.
    """

    parent_fingerprint: str
    fingerprint: str
    upserts: tuple[Entity, ...] = ()
    replaced: tuple[Entity, ...] = ()
    deletes: tuple[Entity, ...] = ()

    @property
    def upsert_uids(self) -> frozenset[str]:
        return frozenset(entity.uid for entity in self.upserts)

    @property
    def delete_uids(self) -> frozenset[str]:
        return frozenset(entity.uid for entity in self.deletes)

    @property
    def changed_uids(self) -> frozenset[str]:
        return self.upsert_uids | self.delete_uids

    def old_entities(self) -> tuple[Entity, ...]:
        """Displaced entity versions: replaced upserts plus deletes."""
        return self.replaced + self.deletes

    def __bool__(self) -> bool:
        return bool(self.upserts or self.deletes)


class DataSource:
    """An ordered, uid-keyed collection of entities."""

    def __init__(self, name: str, entities: Iterable[Entity] = ()):
        self._name = name
        self._entities: dict[str, Entity] = {}
        self._fingerprint: str | None = None
        self._delta_log: list[SourceDelta] = []
        for entity in entities:
            self.add(entity)

    @property
    def name(self) -> str:
        return self._name

    def add(self, entity: Entity) -> None:
        if entity.uid in self._entities:
            raise ValueError(f"duplicate entity uid {entity.uid!r} in {self._name!r}")
        self._entities[entity.uid] = entity
        # A raw add bypasses the delta protocol, so the epoch chain no
        # longer describes this content: fall back to a content rehash
        # and void the lineage so nothing tries to patch across it.
        self._fingerprint = None
        self._delta_log.clear()

    def apply_delta(
        self,
        upserts: Iterable[Entity] = (),
        deletes: Iterable[str] = (),
    ) -> SourceDelta:
        """Apply an upsert/delete batch and advance the epoch chain.

        ``deletes`` (uids) are removed first, then ``upserts`` are
        applied with dict semantics: an existing uid keeps its slot in
        the insertion order, a new uid appends at the end. Deleting an
        unknown uid raises; a uid may not appear twice in one batch.

        Instead of rehashing every entity, the new source fingerprint
        is chained from the parent: ``sha256(parent × delta-digest)``,
        where the digest covers only the changed entities. Unchanged
        entities keep their cached content fingerprints, so per-entity
        store keys stay valid and only the source-level epoch moves.
        The applied :class:`SourceDelta` is returned and kept in a
        bounded log (:meth:`delta_chain`) for index patching.
        """
        delete_uids = list(dict.fromkeys(deletes))
        upsert_list = list(upserts)
        parent = self.fingerprint()
        if not delete_uids and not upsert_list:
            return SourceDelta(parent_fingerprint=parent, fingerprint=parent)

        removed: list[Entity] = []
        for uid in delete_uids:
            try:
                removed.append(self._entities.pop(uid))
            except KeyError:
                raise KeyError(f"no entity {uid!r} to delete in {self._name!r}")

        replaced: list[Entity] = []
        upsert_seen: set[str] = set()
        for entity in upsert_list:
            if entity.uid in upsert_seen:
                raise ValueError(
                    f"duplicate upsert uid {entity.uid!r} in one delta batch"
                )
            upsert_seen.add(entity.uid)
            old = self._entities.get(entity.uid)
            if old is not None:
                replaced.append(old)
            self._entities[entity.uid] = entity

        digest = hashlib.sha256()
        digest.update(parent.encode("ascii"))
        for uid in delete_uids:
            encoded = uid.encode("utf-8")
            digest.update(b"-")
            digest.update(str(len(encoded)).encode("ascii"))
            digest.update(b":")
            digest.update(encoded)
        for entity in upsert_list:
            digest.update(b"+")
            digest.update(entity.fingerprint().encode("ascii"))
        fingerprint = digest.hexdigest()

        delta = SourceDelta(
            parent_fingerprint=parent,
            fingerprint=fingerprint,
            upserts=tuple(upsert_list),
            replaced=tuple(replaced),
            deletes=tuple(removed),
        )
        self._fingerprint = fingerprint
        self._delta_log.append(delta)
        del self._delta_log[:-_DELTA_LOG_LIMIT]
        return delta

    def delta_chain(self) -> tuple[SourceDelta, ...]:
        """Retained epoch chain, oldest delta first.

        Each element's ``fingerprint`` equals the next element's
        ``parent_fingerprint``; the last one's ``fingerprint`` is this
        source's current :meth:`fingerprint`. Empty for sources that
        were never mutated (or mutated through :meth:`add`, which voids
        the chain).
        """
        return tuple(self._delta_log)

    def fingerprint(self) -> str:
        """Content hash of this source's snapshot — every entity's
        content fingerprint, in insertion order.

        Deliberately excludes the source *name*: two identically-loaded
        snapshots under different names describe the same data, so
        persistent caches keyed by this fingerprint (the engine's
        column store) can share work between them. Cached until the
        next :meth:`add`; entities themselves are immutable.
        """
        cached = self._fingerprint
        if cached is None:
            digest = hashlib.sha256()
            for entity in self._entities.values():
                digest.update(entity.fingerprint().encode("ascii"))
                digest.update(b"\x1e")
            cached = digest.hexdigest()
            self._fingerprint = cached
        return cached

    def get(self, uid: str) -> Entity:
        try:
            return self._entities[uid]
        except KeyError:
            raise KeyError(f"no entity {uid!r} in data source {self._name!r}")

    def __contains__(self, uid: str) -> bool:
        return uid in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def uids(self) -> list[str]:
        return list(self._entities)

    def entities(self) -> list[Entity]:
        return list(self._entities.values())

    # -- schema statistics (Table 6) ---------------------------------------
    def property_names(self) -> list[str]:
        """All property names appearing on any entity, sorted."""
        names: set[str] = set()
        for entity in self._entities.values():
            names.update(entity.property_names())
        return sorted(names)

    def property_count(self) -> int:
        return len(self.property_names())

    def coverage(self) -> float:
        """Average fraction of the schema's properties set per entity.

        This matches the paper's Table 6 definition: "the percentage of
        properties which are actually set on an entity" on average.
        """
        names = self.property_names()
        if not names or not self._entities:
            return 0.0
        total = sum(
            sum(1 for name in names if entity.has(name))
            for entity in self._entities.values()
        )
        return total / (len(names) * len(self._entities))

    def property_coverage(self) -> Mapping[str, float]:
        """Per-property fraction of entities on which it is set."""
        if not self._entities:
            return {}
        counts: dict[str, int] = {}
        for entity in self._entities.values():
            for name in entity.property_names():
                counts[name] = counts.get(name, 0) + 1
        n = len(self._entities)
        return {name: count / n for name, count in sorted(counts.items())}

    def __repr__(self) -> str:
        return f"DataSource({self._name!r}, {len(self)} entities)"
