"""The :class:`DataSource` container.

A data source is a keyed collection of entities sharing (loosely) a
schema. It provides the property statistics used in Table 6 of the
paper: the number of distinct properties and their *coverage*, i.e. the
average fraction of entities on which a property is actually set.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Mapping

from repro.data.entity import Entity


class DataSource:
    """An ordered, uid-keyed collection of entities."""

    def __init__(self, name: str, entities: Iterable[Entity] = ()):
        self._name = name
        self._entities: dict[str, Entity] = {}
        self._fingerprint: str | None = None
        for entity in entities:
            self.add(entity)

    @property
    def name(self) -> str:
        return self._name

    def add(self, entity: Entity) -> None:
        if entity.uid in self._entities:
            raise ValueError(f"duplicate entity uid {entity.uid!r} in {self._name!r}")
        self._entities[entity.uid] = entity
        self._fingerprint = None

    def fingerprint(self) -> str:
        """Content hash of this source's snapshot — every entity's
        content fingerprint, in insertion order.

        Deliberately excludes the source *name*: two identically-loaded
        snapshots under different names describe the same data, so
        persistent caches keyed by this fingerprint (the engine's
        column store) can share work between them. Cached until the
        next :meth:`add`; entities themselves are immutable.
        """
        cached = self._fingerprint
        if cached is None:
            digest = hashlib.sha256()
            for entity in self._entities.values():
                digest.update(entity.fingerprint().encode("ascii"))
                digest.update(b"\x1e")
            cached = digest.hexdigest()
            self._fingerprint = cached
        return cached

    def get(self, uid: str) -> Entity:
        try:
            return self._entities[uid]
        except KeyError:
            raise KeyError(f"no entity {uid!r} in data source {self._name!r}")

    def __contains__(self, uid: str) -> bool:
        return uid in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def uids(self) -> list[str]:
        return list(self._entities)

    def entities(self) -> list[Entity]:
        return list(self._entities.values())

    # -- schema statistics (Table 6) ---------------------------------------
    def property_names(self) -> list[str]:
        """All property names appearing on any entity, sorted."""
        names: set[str] = set()
        for entity in self._entities.values():
            names.update(entity.property_names())
        return sorted(names)

    def property_count(self) -> int:
        return len(self.property_names())

    def coverage(self) -> float:
        """Average fraction of the schema's properties set per entity.

        This matches the paper's Table 6 definition: "the percentage of
        properties which are actually set on an entity" on average.
        """
        names = self.property_names()
        if not names or not self._entities:
            return 0.0
        total = sum(
            sum(1 for name in names if entity.has(name))
            for entity in self._entities.values()
        )
        return total / (len(names) * len(self._entities))

    def property_coverage(self) -> Mapping[str, float]:
        """Per-property fraction of entities on which it is set."""
        if not self._entities:
            return {}
        counts: dict[str, int] = {}
        for entity in self._entities.values():
            for name in entity.property_names():
                counts[name] = counts.get(name, 0) + 1
        n = len(self._entities)
        return {name: count / n for name, count in sorted(counts.items())}

    def __repr__(self) -> str:
        return f"DataSource({self._name!r}, {len(self)} entities)"
