"""Data source profiling: the statistics a rule author needs.

Writing linkage rules by hand requires "detailed knowledge about the
source data set and the target data set" (Section 1) — which properties
exist, how densely they are set, how their values look. This module
computes exactly those statistics for arbitrary data sources; the
Table 5/6 dataset summaries are one instance of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.source import DataSource


@dataclass(frozen=True)
class PropertyProfile:
    """Statistics of one property across a data source."""

    name: str
    #: Fraction of entities with at least one value.
    coverage: float
    #: Distinct values / total values — 1.0 means key-like.
    distinctness: float
    #: Mean number of values per entity that has the property.
    values_per_entity: float
    mean_length: float
    #: Fraction of values that parse as numbers.
    numeric_ratio: float
    example: str

    def describe(self) -> str:
        return (
            f"{self.name}: coverage {self.coverage:.0%}, "
            f"distinct {self.distinctness:.0%}, "
            f"{self.values_per_entity:.1f} value(s)/entity, "
            f"mean length {self.mean_length:.1f}"
        )


@dataclass(frozen=True)
class SourceProfile:
    """A full profile of one data source."""

    name: str
    entity_count: int
    property_count: int
    #: Mean per-property coverage (the Table 6 "coverage" number).
    mean_coverage: float
    properties: tuple[PropertyProfile, ...]

    def property_profile(self, name: str) -> PropertyProfile:
        for profile in self.properties:
            if profile.name == name:
                return profile
        known = ", ".join(p.name for p in self.properties)
        raise KeyError(f"no property {name!r}; known: {known}")

    def key_candidates(self, min_coverage: float = 0.9) -> list[str]:
        """Properties dense and distinct enough to identify entities —
        the natural first picks for comparisons."""
        return [
            profile.name
            for profile in self.properties
            if profile.coverage >= min_coverage and profile.distinctness >= 0.9
        ]

    def render(self) -> str:
        header = (
            f"{self.name}: {self.entity_count} entities, "
            f"{self.property_count} properties, "
            f"mean coverage {self.mean_coverage:.0%}"
        )
        lines = [header, "-" * len(header)]
        lines.extend(f"  {profile.describe()}" for profile in self.properties)
        return "\n".join(lines)


def _is_number(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


def profile_source(source: DataSource, max_example_length: int = 40) -> SourceProfile:
    """Profile every property of a data source."""
    entity_count = len(source)
    names = source.property_names()
    profiles: list[PropertyProfile] = []
    for name in names:
        entities_with = 0
        all_values: list[str] = []
        example = ""
        for entity in source:
            values = entity.values(name)
            if not values:
                continue
            entities_with += 1
            all_values.extend(values)
            if not example:
                example = values[0][:max_example_length]
        total = len(all_values)
        profiles.append(
            PropertyProfile(
                name=name,
                coverage=entities_with / entity_count if entity_count else 0.0,
                distinctness=len(set(all_values)) / total if total else 0.0,
                values_per_entity=total / entities_with if entities_with else 0.0,
                mean_length=(
                    sum(len(v) for v in all_values) / total if total else 0.0
                ),
                numeric_ratio=(
                    sum(1 for v in all_values if _is_number(v)) / total
                    if total
                    else 0.0
                ),
                example=example,
            )
        )
    mean_coverage = (
        sum(p.coverage for p in profiles) / len(profiles) if profiles else 0.0
    )
    return SourceProfile(
        name=source.name,
        entity_count=entity_count,
        property_count=len(names),
        mean_coverage=mean_coverage,
        properties=tuple(profiles),
    )
