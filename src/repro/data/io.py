"""Loading and saving data sources and link sets.

Adoption glue for the library: entities arrive as CSV exports or
JSON-lines dumps, reference links as two-column CSVs, and generated
links leave as CSV or N-Triples (the format Silk publishes
``owl:sameAs`` links in on the Web of Data).

All functions accept either a path or an open text file object.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, TextIO

from repro.data.entity import Entity
from repro.data.reference_links import Link, ReferenceLinkSet
from repro.data.source import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.matching.engine import GeneratedLink

#: Multi-valued cells in CSV use this separator.
VALUE_SEPARATOR = "|"


def _open_for_read(target: str | Path | TextIO):
    if isinstance(target, (str, Path)):
        return open(target, "r", encoding="utf-8", newline=""), True
    return target, False


def _open_for_write(target: str | Path | TextIO):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8", newline=""), True
    return target, False


# -- data sources -----------------------------------------------------------------
def load_source_csv(
    target: str | Path | TextIO,
    name: str,
    uid_column: str = "id",
    value_separator: str = VALUE_SEPARATOR,
) -> DataSource:
    """Load a data source from a CSV file with a header row.

    The ``uid_column`` becomes the entity uid; every other column a
    property. Empty cells are absent properties; cells may hold several
    values separated by ``value_separator``.
    """
    handle, owned = _open_for_read(target)
    try:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or uid_column not in reader.fieldnames:
            raise ValueError(f"CSV must have a {uid_column!r} column")
        source = DataSource(name)
        for row in reader:
            uid = (row.get(uid_column) or "").strip()
            if not uid:
                raise ValueError("every row needs a non-empty uid")
            properties = {
                column: tuple(
                    v.strip()
                    for v in (value or "").split(value_separator)
                    if v.strip()
                )
                for column, value in row.items()
                if column != uid_column
            }
            source.add(Entity(uid, properties))
        return source
    finally:
        if owned:
            handle.close()


def save_source_csv(
    source: DataSource,
    target: str | Path | TextIO,
    uid_column: str = "id",
    value_separator: str = VALUE_SEPARATOR,
) -> None:
    """Write a data source as CSV (union schema, one row per entity)."""
    handle, owned = _open_for_write(target)
    try:
        columns = source.property_names()
        writer = csv.writer(handle)
        writer.writerow([uid_column] + columns)
        for entity in source:
            writer.writerow(
                [entity.uid]
                + [value_separator.join(entity.values(c)) for c in columns]
            )
    finally:
        if owned:
            handle.close()


def load_source_jsonl(
    target: str | Path | TextIO,
    name: str,
    uid_field: str = "id",
) -> DataSource:
    """Load a data source from JSON-lines: one object per line, the
    ``uid_field`` key is the uid, all other keys are properties whose
    values may be strings or lists of strings."""
    handle, owned = _open_for_read(target)
    try:
        source = DataSource(name)
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if uid_field not in record:
                raise ValueError(f"line {line_number}: missing {uid_field!r}")
            uid = str(record.pop(uid_field))
            source.add(Entity(uid, record))
        return source
    finally:
        if owned:
            handle.close()


def save_source_jsonl(
    source: DataSource,
    target: str | Path | TextIO,
    uid_field: str = "id",
) -> None:
    """Write a data source as JSON-lines."""
    handle, owned = _open_for_write(target)
    try:
        for entity in source:
            record: dict = {uid_field: entity.uid}
            for key, values in entity.properties.items():
                record[key] = list(values)
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    finally:
        if owned:
            handle.close()


# -- reference links ---------------------------------------------------------------
def load_links_csv(
    target: str | Path | TextIO,
) -> ReferenceLinkSet:
    """Load reference links from CSV with columns source,target[,label].

    ``label`` (missing, "1"/"0", "true"/"false", "+"/"-") defaults to
    positive when the column is absent.
    """
    handle, owned = _open_for_read(target)
    try:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not (
            {"source", "target"} <= set(reader.fieldnames)
        ):
            raise ValueError("CSV must have 'source' and 'target' columns")
        positive: list[Link] = []
        negative: list[Link] = []
        for row in reader:
            link = (row["source"].strip(), row["target"].strip())
            label_text = (row.get("label") or "1").strip().lower()
            if label_text in ("1", "true", "+", "positive", "yes"):
                positive.append(link)
            elif label_text in ("0", "false", "-", "negative", "no"):
                negative.append(link)
            else:
                raise ValueError(f"unrecognised label {label_text!r}")
        return ReferenceLinkSet(positive, negative)
    finally:
        if owned:
            handle.close()


def save_links_csv(
    links: "ReferenceLinkSet | Iterable[GeneratedLink]",
    target: str | Path | TextIO,
) -> None:
    """Write links as CSV. Reference link sets save both polarities;
    generated link lists save uid pairs with their scores."""
    handle, owned = _open_for_write(target)
    try:
        writer = csv.writer(handle)
        if isinstance(links, ReferenceLinkSet):
            writer.writerow(["source", "target", "label"])
            for (uid_a, uid_b), label in links:
                writer.writerow([uid_a, uid_b, "1" if label else "0"])
        else:
            writer.writerow(["source", "target", "score"])
            for link in links:
                writer.writerow([link.uid_a, link.uid_b, f"{link.score:.6f}"])
    finally:
        if owned:
            handle.close()


# -- N-Triples ---------------------------------------------------------------------
#
# The paper's RDF datasets (Sider, DrugBank, DBpedia, NYT, LinkedMDB)
# circulate as N-Triples dumps; these readers/writers speak the subset
# needed to round-trip entity data: URI subjects (or blank nodes),
# URI predicates, URI/literal objects with the standard string escapes.

_NT_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


def _unescape_literal(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char != "\\":
            out.append(char)
            i += 1
            continue
        if i + 1 >= len(text):
            raise ValueError(f"dangling escape in literal {text!r}")
        escape = text[i + 1]
        if escape in _NT_ESCAPES:
            out.append(_NT_ESCAPES[escape])
            i += 2
        elif escape == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif escape == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValueError(f"unknown escape \\{escape} in literal {text!r}")
    return "".join(out)


def _escape_literal(text: str) -> str:
    out = text.replace("\\", "\\\\").replace('"', '\\"')
    return out.replace("\n", "\\n").replace("\r", "\\r").replace("\t", "\\t")


def _parse_nt_term(text: str, line_number: int) -> tuple[str, str]:
    """Parse one term; returns (kind, value) with kind uri|blank|literal."""
    text = text.strip()
    if text.startswith("<") and text.endswith(">"):
        return "uri", text[1:-1]
    if text.startswith("_:"):
        return "blank", text
    if text.startswith('"'):
        closing = 1
        while True:
            closing = text.index('"', closing)
            backslashes = 0
            while text[closing - 1 - backslashes] == "\\":
                backslashes += 1
            if backslashes % 2 == 0:
                break
            closing += 1
        # Language tags and datatypes are accepted and dropped: the
        # entity model holds plain strings.
        return "literal", _unescape_literal(text[1:closing])
    raise ValueError(f"line {line_number}: cannot parse term {text!r}")


def _split_nt_line(line: str, line_number: int) -> tuple[str, str, str] | None:
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    if not line.endswith("."):
        raise ValueError(f"line {line_number}: statement must end with '.'")
    body = line[:-1].strip()
    # Subject and predicate never contain spaces; the object may.
    subject, __, rest = body.partition(" ")
    predicate, __, obj = rest.strip().partition(" ")
    if not subject or not predicate or not obj:
        raise ValueError(f"line {line_number}: expected 3 terms")
    return subject, predicate, obj.strip()


def _shorten(uri: str, prefixes: dict[str, str]) -> str:
    for namespace, prefix in prefixes.items():
        if uri.startswith(namespace):
            local = uri[len(namespace):]
            # An empty prefix strips the namespace entirely.
            return f"{prefix}:{local}" if prefix else local
    return uri


def load_source_ntriples(
    target: str | Path | TextIO,
    name: str,
    prefixes: dict[str, str] | None = None,
) -> DataSource:
    """Load a data source from an N-Triples dump.

    Subjects become entity uids, predicates property names, objects
    property values (literal text, or the URI/blank-node id verbatim).
    ``prefixes`` maps namespaces to short prefixes so e.g.
    ``http://xmlns.com/foaf/0.1/name`` loads as ``foaf:name``; it is
    applied to uids, property names and URI values alike.
    """
    prefixes = prefixes or {}
    handle, owned = _open_for_read(target)
    try:
        values: dict[str, dict[str, list[str]]] = {}
        order: list[str] = []
        for line_number, line in enumerate(handle, start=1):
            parsed = _split_nt_line(line, line_number)
            if parsed is None:
                continue
            subject_text, predicate_text, object_text = parsed
            __, subject = _parse_nt_term(subject_text, line_number)
            kind, predicate = _parse_nt_term(predicate_text, line_number)
            if kind != "uri":
                raise ValueError(f"line {line_number}: predicate must be a URI")
            object_kind, object_value = _parse_nt_term(object_text, line_number)
            subject = _shorten(subject, prefixes)
            predicate = _shorten(predicate, prefixes)
            if object_kind == "uri":
                object_value = _shorten(object_value, prefixes)
            if subject not in values:
                values[subject] = {}
                order.append(subject)
            values[subject].setdefault(predicate, []).append(object_value)
        source = DataSource(name)
        for uid in order:
            source.add(
                Entity(uid, {p: tuple(v) for p, v in values[uid].items()})
            )
        return source
    finally:
        if owned:
            handle.close()


def save_source_ntriples(
    source: DataSource,
    target: str | Path | TextIO,
    subject_prefix: str = "",
    predicate_prefix: str = "http://example.org/property/",
) -> int:
    """Write a data source as N-Triples with literal objects.

    Entity uids that are not already absolute URIs get
    ``subject_prefix`` prepended; property names that are not URIs get
    ``predicate_prefix``. Returns the number of triples written.
    """

    def as_uri(value: str, prefix: str) -> str:
        if value.startswith(("http://", "https://", "urn:")):
            return value
        return f"{prefix}{value}"

    handle, owned = _open_for_write(target)
    count = 0
    try:
        for entity in source:
            subject = as_uri(entity.uid, subject_prefix)
            for name, entity_values in entity.properties.items():
                predicate = as_uri(name, predicate_prefix)
                for value in entity_values:
                    handle.write(
                        f"<{subject}> <{predicate}> "
                        f'"{_escape_literal(value)}" .\n'
                    )
                    count += 1
        return count
    finally:
        if owned:
            handle.close()


def save_links_ntriples(
    links: "Iterable[GeneratedLink | Link]",
    target: str | Path | TextIO,
    predicate: str = "http://www.w3.org/2002/07/owl#sameAs",
    uri_prefix_a: str = "",
    uri_prefix_b: str = "",
) -> int:
    """Write links as N-Triples ``<a> owl:sameAs <b> .`` statements —
    the Linked Data publishing format of the Silk framework. Returns
    the number of triples written."""
    handle, owned = _open_for_write(target)
    count = 0
    try:
        for link in links:
            if hasattr(link, "uid_a"):
                uid_a, uid_b = link.uid_a, link.uid_b
            else:
                uid_a, uid_b = link
            handle.write(
                f"<{uri_prefix_a}{uid_a}> <{predicate}> "
                f"<{uri_prefix_b}{uid_b}> .\n"
            )
            count += 1
        return count
    finally:
        if owned:
            handle.close()
