"""Cross-validation splits over reference link sets.

The paper's protocol (Section 6.1): 10 independent runs, each randomly
splitting the reference links into 2 folds — one for training, one for
validation. Splits are stratified so both folds keep the positive /
negative balance.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.data.reference_links import Link, ReferenceLinkSet


def _partition(links: list[Link], folds: int) -> list[list[Link]]:
    buckets: list[list[Link]] = [[] for _ in range(folds)]
    for i, link in enumerate(links):
        buckets[i % folds].append(link)
    return buckets


def cross_validation_folds(
    links: ReferenceLinkSet,
    folds: int,
    rng: random.Random,
) -> Iterator[tuple[ReferenceLinkSet, ReferenceLinkSet]]:
    """Yield (train, validation) splits for stratified k-fold CV."""
    if folds < 2:
        raise ValueError("need at least 2 folds")
    positive = list(links.positive)
    negative = list(links.negative)
    rng.shuffle(positive)
    rng.shuffle(negative)
    pos_buckets = _partition(positive, folds)
    neg_buckets = _partition(negative, folds)
    for held_out in range(folds):
        train_pos = [l for i in range(folds) if i != held_out for l in pos_buckets[i]]
        train_neg = [l for i in range(folds) if i != held_out for l in neg_buckets[i]]
        validation = ReferenceLinkSet(pos_buckets[held_out], neg_buckets[held_out])
        train = ReferenceLinkSet(train_pos, train_neg)
        yield train, validation


def train_validation_split(
    links: ReferenceLinkSet,
    rng: random.Random,
    train_fraction: float = 0.5,
) -> tuple[ReferenceLinkSet, ReferenceLinkSet]:
    """A single stratified split (the paper's 2-fold protocol)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    positive = list(links.positive)
    negative = list(links.negative)
    rng.shuffle(positive)
    rng.shuffle(negative)
    pos_cut = max(1, round(len(positive) * train_fraction)) if positive else 0
    neg_cut = max(1, round(len(negative) * train_fraction)) if negative else 0
    pos_cut = min(pos_cut, max(len(positive) - 1, 0)) if len(positive) > 1 else pos_cut
    neg_cut = min(neg_cut, max(len(negative) - 1, 0)) if len(negative) > 1 else neg_cut
    train = ReferenceLinkSet(positive[:pos_cut], negative[:neg_cut])
    validation = ReferenceLinkSet(positive[pos_cut:], negative[neg_cut:])
    return train, validation
