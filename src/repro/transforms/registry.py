"""Registry mapping transformation names to instances.

Mirrors :mod:`repro.distances.registry`: rules reference transformations
by name, evaluation resolves them here, and users may register their
own (see ``examples/custom_operators.py``).
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from repro.transforms.base import Transformation

#: Builds a configured transformation instance from a parameter
#: mapping. Registered alongside a transformation so rules can carry
#: parameterised nodes (``TransformationNode.params``) for it.
TransformationFactory = Callable[[Mapping[str, str]], Transformation]
from repro.transforms.case import Capitalize, LowerCase, UpperCase
from repro.transforms.concat import Concatenate
from repro.transforms.normalize import Replace, StripPunctuation, Trim
from repro.transforms.reduce import AlphaReduce, NormalizeWhitespace, NumReduce
from repro.transforms.stem import StemWords
from repro.transforms.tokenize import Tokenize
from repro.transforms.uri import StripUriPrefix


class TransformationRegistry:
    """Name -> transformation lookup with registration support."""

    def __init__(self) -> None:
        self._transformations: dict[str, Transformation] = {}
        self._factories: dict[str, TransformationFactory] = {}
        self._instances: dict[tuple, Transformation] = {}

    def register(
        self,
        transformation: Transformation,
        factory: TransformationFactory | None = None,
    ) -> None:
        """Register a transformation, optionally with a parameter-aware
        factory used by :meth:`resolve` for nodes carrying ``params``."""
        if not transformation.name or transformation.name == "abstract":
            raise ValueError("transformation must define a concrete name")
        self._transformations[transformation.name] = transformation
        self._drop_instances(transformation.name)
        # Re-registration replaces the whole registration: without a new
        # factory, a previously installed one must not keep building
        # instances of the replaced implementation.
        if factory is not None:
            self._factories[transformation.name] = factory
        else:
            self._factories.pop(transformation.name, None)

    def register_factory(self, name: str, factory: TransformationFactory) -> None:
        """Attach a parameter factory to an already registered name."""
        if name not in self._transformations:
            raise KeyError(f"unknown transformation {name!r}")
        self._factories[name] = factory
        self._drop_instances(name)

    def _drop_instances(self, name: str) -> None:
        """Invalidate memoised parameterised instances of a name so a
        re-registered transformation or factory takes effect."""
        for key in [k for k in self._instances if k[0] == name]:
            del self._instances[key]

    def get(self, name: str) -> Transformation:
        try:
            return self._transformations[name]
        except KeyError:
            known = ", ".join(sorted(self._transformations))
            raise KeyError(f"unknown transformation {name!r}; known: {known}")

    def resolve(
        self, name: str, params: tuple[tuple[str, str], ...] = ()
    ) -> Transformation:
        """The transformation instance for a (name, params) pair.

        Without params (or without a registered factory) this is the
        plain :meth:`get` lookup. With params, the registered factory
        builds a configured instance, memoised per parameter tuple so
        rule evaluation never re-instantiates per call.
        """
        if not params:
            return self.get(name)
        key = (name, tuple(sorted(params)))
        instance = self._instances.get(key)
        if instance is None:
            factory = self._factories.get(name)
            if factory is None:
                # No factory: parameters are ignored, matching the
                # behaviour for non-parameterised built-ins.
                return self.get(name)
            instance = factory(dict(key[1]))
            self._instances[key] = instance
        return instance

    def __contains__(self, name: str) -> bool:
        return name in self._transformations

    def __iter__(self) -> Iterator[str]:
        return iter(self._transformations)

    def names(self) -> list[str]:
        return sorted(self._transformations)

    def unary_names(self) -> list[str]:
        """Names of single-input transformations (chainable by the GP)."""
        return sorted(
            name
            for name, transformation in self._transformations.items()
            if transformation.arity == 1
        )


_DEFAULT: TransformationRegistry | None = None


def default_registry() -> TransformationRegistry:
    """The process-wide registry with all built-in transformations."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = TransformationRegistry()
        for transformation in (
            LowerCase(),
            UpperCase(),
            Capitalize(),
            Tokenize(),
            StripUriPrefix(),
            Concatenate(),
            StemWords(),
            StripPunctuation(),
            Trim(),
            AlphaReduce(),
            NumReduce(),
            NormalizeWhitespace(),
        ):
            registry.register(transformation)
        registry.register(
            Replace(),
            factory=lambda params: Replace(
                search=params.get("search", "-"),
                replacement=params.get("replacement", " "),
            ),
        )
        _DEFAULT = registry
    return _DEFAULT


def get_transformation(name: str) -> Transformation:
    """Convenience lookup in the default registry."""
    return default_registry().get(name)


def transformation_names() -> list[str]:
    """Names of all built-in transformations."""
    return default_registry().names()
