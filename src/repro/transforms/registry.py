"""Registry mapping transformation names to instances.

Mirrors :mod:`repro.distances.registry`: rules reference transformations
by name, evaluation resolves them here, and users may register their
own (see ``examples/custom_operators.py``).
"""

from __future__ import annotations

from typing import Iterator

from repro.transforms.base import Transformation
from repro.transforms.case import Capitalize, LowerCase, UpperCase
from repro.transforms.concat import Concatenate
from repro.transforms.normalize import Replace, StripPunctuation, Trim
from repro.transforms.reduce import AlphaReduce, NormalizeWhitespace, NumReduce
from repro.transforms.stem import StemWords
from repro.transforms.tokenize import Tokenize
from repro.transforms.uri import StripUriPrefix


class TransformationRegistry:
    """Name -> transformation lookup with registration support."""

    def __init__(self) -> None:
        self._transformations: dict[str, Transformation] = {}

    def register(self, transformation: Transformation) -> None:
        if not transformation.name or transformation.name == "abstract":
            raise ValueError("transformation must define a concrete name")
        self._transformations[transformation.name] = transformation

    def get(self, name: str) -> Transformation:
        try:
            return self._transformations[name]
        except KeyError:
            known = ", ".join(sorted(self._transformations))
            raise KeyError(f"unknown transformation {name!r}; known: {known}")

    def __contains__(self, name: str) -> bool:
        return name in self._transformations

    def __iter__(self) -> Iterator[str]:
        return iter(self._transformations)

    def names(self) -> list[str]:
        return sorted(self._transformations)

    def unary_names(self) -> list[str]:
        """Names of single-input transformations (chainable by the GP)."""
        return sorted(
            name
            for name, transformation in self._transformations.items()
            if transformation.arity == 1
        )


_DEFAULT: TransformationRegistry | None = None


def default_registry() -> TransformationRegistry:
    """The process-wide registry with all built-in transformations."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = TransformationRegistry()
        for transformation in (
            LowerCase(),
            UpperCase(),
            Capitalize(),
            Tokenize(),
            StripUriPrefix(),
            Concatenate(),
            StemWords(),
            Replace(),
            StripPunctuation(),
            Trim(),
            AlphaReduce(),
            NumReduce(),
            NormalizeWhitespace(),
        ):
            registry.register(transformation)
        _DEFAULT = registry
    return _DEFAULT


def get_transformation(name: str) -> Transformation:
    """Convenience lookup in the default registry."""
    return default_registry().get(name)


def transformation_names() -> list[str]:
    """Names of all built-in transformations."""
    return default_registry().names()
