"""Letter-case transformations (Table 1: ``lowerCase``).

Case normalisation is the canonical example the paper gives for noisy
data ("iPod" vs "IPOD"); ``upperCase`` and ``capitalize`` round out the
family so the GP has distinct functions for function crossover to swap.
"""

from __future__ import annotations

from typing import Sequence

from repro.transforms.base import Transformation


class LowerCase(Transformation):
    """Convert every value to lower case."""

    name = "lowerCase"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(v.lower() for v in inputs[0])


class UpperCase(Transformation):
    """Convert every value to upper case."""

    name = "upperCase"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(v.upper() for v in inputs[0])


class Capitalize(Transformation):
    """Capitalise the first letter of every word in every value."""

    name = "capitalize"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(" ".join(w.capitalize() for w in v.split()) for v in inputs[0])
