"""Common interface for value transformations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence


class Transformation(ABC):
    """A data transformation function over value sets.

    ``arity`` declares how many input value operators the transformation
    consumes. Most transformations are unary; ``concatenate`` is binary.
    The GP only builds transformation nodes whose input count equals the
    declared arity.
    """

    name: str = "abstract"
    arity: int = 1

    @abstractmethod
    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        """Transform the input value sets into a single value set."""

    def __call__(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        if len(inputs) != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} input value set(s), "
                f"got {len(inputs)}"
            )
        return self.apply(inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
