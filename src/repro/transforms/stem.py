"""Porter stemming (the ``stem`` operator of Figure 6).

A compact, dependency-free implementation of the classic Porter (1980)
algorithm, sufficient for normalising English labels ("computers" /
"computing" -> "comput"). Follows the five-step structure of the
original paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.transforms.base import Transformation

_VOWELS = "aeiou"


class PorterStemmer:
    """Stateless Porter stemmer; call :meth:`stem` per word."""

    def stem(self, word: str) -> str:
        if len(word) <= 2:
            return word
        w = word.lower()
        w = self._step1a(w)
        w = self._step1b(w)
        w = self._step1c(w)
        w = self._step2(w)
        w = self._step3(w)
        w = self._step4(w)
        w = self._step5a(w)
        w = self._step5b(w)
        return w

    # -- measure helpers ---------------------------------------------------
    def _is_consonant(self, word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def _measure(self, stem: str) -> int:
        """Count VC sequences (the 'm' of Porter's paper)."""
        forms = []
        for i in range(len(stem)):
            forms.append("c" if self._is_consonant(stem, i) else "v")
        collapsed = "".join(forms)
        # Collapse runs, then count "vc" transitions.
        run = []
        for ch in collapsed:
            if not run or run[-1] != ch:
                run.append(ch)
        return "".join(run).count("vc")

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        if len(word) < 3:
            return False
        c1 = self._is_consonant(word, len(word) - 3)
        v = not self._is_consonant(word, len(word) - 2)
        c2 = self._is_consonant(word, len(word) - 1)
        return c1 and v and c2 and word[-1] not in "wxy"

    # -- steps -------------------------------------------------------------
    def _step1a(self, w: str) -> str:
        if w.endswith("sses"):
            return w[:-2]
        if w.endswith("ies"):
            return w[:-2]
        if w.endswith("ss"):
            return w
        if w.endswith("s"):
            return w[:-1]
        return w

    def _step1b(self, w: str) -> str:
        if w.endswith("eed"):
            if self._measure(w[:-3]) > 0:
                return w[:-1]
            return w
        flag = False
        if w.endswith("ed") and self._contains_vowel(w[:-2]):
            w = w[:-2]
            flag = True
        elif w.endswith("ing") and self._contains_vowel(w[:-3]):
            w = w[:-3]
            flag = True
        if flag:
            if w.endswith(("at", "bl", "iz")):
                return w + "e"
            if self._ends_double_consonant(w) and w[-1] not in "lsz":
                return w[:-1]
            if self._measure(w) == 1 and self._ends_cvc(w):
                return w + "e"
        return w

    def _step1c(self, w: str) -> str:
        if w.endswith("y") and self._contains_vowel(w[:-1]):
            return w[:-1] + "i"
        return w

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    def _step2(self, w: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if w.endswith(suffix):
                stem = w[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return w
        return w

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    def _step3(self, w: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if w.endswith(suffix):
                stem = w[: -len(suffix)]
                if self._measure(stem) > 0:
                    return stem + replacement
                return w
        return w

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _step4(self, w: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if w.endswith(suffix):
                stem = w[: -len(suffix)]
                if self._measure(stem) > 1:
                    return stem
                return w
        if w.endswith("ion") and len(w) > 3 and w[-4] in "st":
            stem = w[:-3]
            if self._measure(stem) > 1:
                return stem
        return w

    def _step5a(self, w: str) -> str:
        if w.endswith("e"):
            stem = w[:-1]
            m = self._measure(stem)
            if m > 1 or (m == 1 and not self._ends_cvc(stem)):
                return stem
        return w

    def _step5b(self, w: str) -> str:
        if self._measure(w) > 1 and self._ends_double_consonant(w) and w.endswith("l"):
            return w[:-1]
        return w


_STEMMER = PorterStemmer()


def porter_stem(word: str) -> str:
    """Stem a single word with the shared stemmer instance."""
    return _STEMMER.stem(word)


class StemWords(Transformation):
    """Porter-stem every whitespace-separated word of every value."""

    name = "stem"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(
            " ".join(porter_stem(w) for w in value.split()) for value in inputs[0]
        )
