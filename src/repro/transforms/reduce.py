"""Reducing transformations from the Silk catalogue.

``alphaReduce`` keeps letters only, ``numReduce`` keeps digits only
(e.g. for comparing phone numbers irrespective of separators),
``normalizeWhitespace`` collapses runs of whitespace.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.transforms.base import Transformation

_SPACE_RE = re.compile(r"\s+")


class AlphaReduce(Transformation):
    """Remove every non-letter character from every value."""

    name = "alphaReduce"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple("".join(c for c in v if c.isalpha()) for v in inputs[0])


class NumReduce(Transformation):
    """Remove every non-digit character from every value."""

    name = "numReduce"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple("".join(c for c in v if c.isdigit()) for v in inputs[0])


class NormalizeWhitespace(Transformation):
    """Collapse whitespace runs and trim every value."""

    name = "normalizeWhitespace"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(_SPACE_RE.sub(" ", v).strip() for v in inputs[0])
