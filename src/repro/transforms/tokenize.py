"""Tokenisation (Table 1: ``tokenize``).

Splitting values into tokens turns character-level measures into
token-level ones: tokenize + jaccard is the paper's recipe for matching
labels with reordered or partially shared words.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.transforms.base import Transformation

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)


class Tokenize(Transformation):
    """Split every value into alphanumeric tokens, flattening the result.

    Duplicate tokens are preserved in first-seen order; the output is
    still a value *set* in the paper's sense (a tuple of strings).
    """

    name = "tokenize"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        tokens: list[str] = []
        seen: set[str] = set()
        for value in inputs[0]:
            for token in _TOKEN_RE.findall(value):
                if token not in seen:
                    seen.add(token)
                    tokens.append(token)
        return tuple(tokens)
