"""Concatenation of two value operators (Table 1: ``concatenate``).

The paper's motivating example: concatenating ``foaf:firstName`` and
``foaf:lastName`` makes them comparable to a single ``dbpedia:name``
property with a character-based measure.
"""

from __future__ import annotations

from typing import Sequence

from repro.transforms.base import Transformation


class Concatenate(Transformation):
    """Join the cross product of two value sets with a separator.

    With the (common) single-valued inputs this is a plain string join;
    with multi-valued inputs every combination is produced so that the
    correct pairing is always present (the min-over-pairs distance
    lifting then picks it up). The cross product is capped to protect
    against degenerate inputs.
    """

    name = "concatenate"
    arity = 2
    max_outputs = 64

    def __init__(self, separator: str = " "):
        self._separator = separator

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        first, second = inputs
        if not first:
            return tuple(second)
        if not second:
            return tuple(first)
        outputs: list[str] = []
        for a in first:
            for b in second:
                outputs.append(f"{a}{self._separator}{b}")
                if len(outputs) >= self.max_outputs:
                    return tuple(outputs)
        return tuple(outputs)
