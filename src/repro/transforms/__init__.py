"""Value transformations used by transformation operators.

A transformation maps one or more input value sets to a single output
value set (Definition 6: ``ft : Sigma^n -> Sigma``). The functions of
Table 1 (lowerCase, tokenize, stripUriPrefix, concatenate) are provided,
plus the ``stem`` operator appearing in Figure 6 and a few normalisers
(replace, stripPunctuation, trim) that the complex human-written
DBpedia-DrugBank rule relies on.
"""

from repro.transforms.base import Transformation
from repro.transforms.case import LowerCase, UpperCase, Capitalize
from repro.transforms.tokenize import Tokenize
from repro.transforms.uri import StripUriPrefix
from repro.transforms.concat import Concatenate
from repro.transforms.stem import PorterStemmer, StemWords, porter_stem
from repro.transforms.normalize import Replace, StripPunctuation, Trim
from repro.transforms.reduce import AlphaReduce, NormalizeWhitespace, NumReduce
from repro.transforms.registry import (
    TransformationRegistry,
    default_registry,
    get_transformation,
    transformation_names,
)

__all__ = [
    "Transformation",
    "LowerCase",
    "UpperCase",
    "Capitalize",
    "Tokenize",
    "StripUriPrefix",
    "Concatenate",
    "PorterStemmer",
    "StemWords",
    "porter_stem",
    "Replace",
    "AlphaReduce",
    "NumReduce",
    "NormalizeWhitespace",
    "StripPunctuation",
    "Trim",
    "TransformationRegistry",
    "default_registry",
    "get_transformation",
    "transformation_names",
]
