"""Small normalising transformations.

These correspond to the "complex transformations such as replacing
specific parts of the strings" used by the human-written
DBpedia-DrugBank rule (Section 6.2).
"""

from __future__ import annotations

import re
import string
from typing import Sequence

from repro.transforms.base import Transformation

_PUNCT_TABLE = str.maketrans("", "", string.punctuation)
_SPACE_RE = re.compile(r"\s+")


class Replace(Transformation):
    """Replace every occurrence of ``search`` with ``replacement``."""

    name = "replace"
    arity = 1

    def __init__(self, search: str = "-", replacement: str = " "):
        if not search:
            raise ValueError("search string must be non-empty")
        self._search = search
        self._replacement = replacement

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(v.replace(self._search, self._replacement) for v in inputs[0])


class StripPunctuation(Transformation):
    """Remove ASCII punctuation and collapse runs of whitespace."""

    name = "stripPunctuation"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        cleaned = []
        for value in inputs[0]:
            text = value.translate(_PUNCT_TABLE)
            cleaned.append(_SPACE_RE.sub(" ", text).strip())
        return tuple(cleaned)


class Trim(Transformation):
    """Strip surrounding whitespace from every value."""

    name = "trim"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(v.strip() for v in inputs[0])
