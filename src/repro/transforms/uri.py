"""URI prefix stripping (Table 1: ``stripUriPrefix``).

Linked Data identifiers such as ``http://dbpedia.org/resource/Berlin``
carry the discriminative information in the local part only; stripping
the prefix (and decoding the common percent/underscore escapes) exposes
it to string measures.
"""

from __future__ import annotations

from typing import Sequence
from urllib.parse import unquote

from repro.transforms.base import Transformation


def strip_uri_prefix(value: str) -> str:
    """Return the local name of a URI-like value, decoded for comparison."""
    text = value
    if "://" in text:
        text = text.rstrip("/#")
        for separator in ("#", "/"):
            idx = text.rfind(separator)
            if idx >= 0:
                text = text[idx + 1 :]
                break
    text = unquote(text)
    return text.replace("_", " ")


class StripUriPrefix(Transformation):
    """Strip URI prefixes, keeping non-URI values unchanged."""

    name = "stripUriPrefix"
    arity = 1

    def apply(self, inputs: Sequence[tuple[str, ...]]) -> tuple[str, ...]:
        return tuple(strip_uri_prefix(v) for v in inputs[0])
