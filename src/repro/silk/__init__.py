"""Silk Link Discovery Framework interoperability.

The paper implements GenLink inside the Silk framework (Section 6.1,
Silk 2.5.3), whose linkage rules are written in the Silk Link
Specification Language (Silk-LSL), an XML dialect. This package
converts between :class:`repro.core.LinkageRule` trees and Silk-LSL so
rules learned here can be executed by Silk and hand-written Silk rules
can be evaluated, pruned or used as seeds here.

* :mod:`repro.silk.lsl` — ``<LinkageRule>`` element conversion,
* :mod:`repro.silk.config` — full ``<Silk>`` link specification
  documents (prefixes, data sources, interlinks).
"""

from repro.silk.lsl import (
    LslError,
    rule_from_lsl,
    rule_from_lsl_element,
    rule_to_lsl,
    rule_to_lsl_element,
)
from repro.silk.config import (
    SilkConfig,
    SilkDataSource,
    SilkInterlink,
    SilkPrefix,
    parse_silk_config,
    silk_config,
)

__all__ = [
    "LslError",
    "rule_from_lsl",
    "rule_from_lsl_element",
    "rule_to_lsl",
    "rule_to_lsl_element",
    "SilkConfig",
    "SilkDataSource",
    "SilkInterlink",
    "SilkPrefix",
    "parse_silk_config",
    "silk_config",
]
