"""Silk-LSL ``<LinkageRule>`` serialisation.

Maps the operator tree of Section 3 onto the XML dialect used by Silk
2.x (the framework the paper's experiments ran on):

* :class:`~repro.core.nodes.ComparisonNode` -> ``<Compare metric=...
  threshold=... weight=...>`` with exactly two inputs (source, target),
* :class:`~repro.core.nodes.AggregationNode` -> ``<Aggregate type=...>``,
* :class:`~repro.core.nodes.TransformationNode` -> ``<TransformInput
  function=...>`` (parameters become ``<Param>`` children),
* :class:`~repro.core.nodes.PropertyNode` -> ``<Input path="?a/prop"/>``.

Measure/transformation names are translated to their Silk built-in
counterparts where one exists (e.g. ``levenshtein`` here is Silk's
``levenshteinDistance``; ``wmean`` is Silk's ``average``); names without
a counterpart pass through unchanged, which Silk resolves against its
plugin registry. Conversion is loss-free: ``rule_from_lsl(rule_to_lsl(
rule)) == rule`` for every valid rule.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.nodes import (
    AggregationNode,
    ComparisonNode,
    PropertyNode,
    SimilarityNode,
    TransformationNode,
    ValueNode,
)
from repro.core.rule import LinkageRule


class LslError(ValueError):
    """Raised when Silk-LSL XML cannot be mapped onto the rule model."""


#: Our measure names -> Silk 2.x built-in distance measure ids.
METRIC_TO_SILK = {
    "levenshtein": "levenshteinDistance",
    "normalizedLevenshtein": "levenshtein",
    "jaccard": "jaccard",
    "dice": "dice",
    "jaro": "jaro",
    "jaroWinkler": "jaroWinkler",
    "equality": "equality",
    "numeric": "num",
    "geographic": "wgs84",
    "date": "date",
    "qgrams": "qGrams",
    "softJaccard": "softjaccard",
}

SILK_TO_METRIC = {silk: ours for ours, silk in METRIC_TO_SILK.items()}

#: Our transformation names -> Silk 2.x built-in transformation ids.
TRANSFORM_TO_SILK = {
    "lowerCase": "lowerCase",
    "upperCase": "upperCase",
    "capitalize": "capitalize",
    "tokenize": "tokenize",
    "concatenate": "concat",
    "stripUriPrefix": "stripUriPrefix",
    "stem": "stem",
    "replace": "replace",
}

SILK_TO_TRANSFORM = {silk: ours for ours, silk in TRANSFORM_TO_SILK.items()}

#: Aggregation functions -> Silk ``<Aggregate type>`` values.
AGGREGATION_TO_SILK = {"min": "min", "max": "max", "wmean": "average"}

SILK_TO_AGGREGATION = {silk: ours for ours, silk in AGGREGATION_TO_SILK.items()}

#: Parameter-name translation per transformation (ours -> Silk).
_PARAM_TO_SILK = {"replace": {"search": "search", "replacement": "replace"}}
_PARAM_FROM_SILK = {
    silk_function: {silk: ours for ours, silk in mapping.items()}
    for silk_function, mapping in (
        (TRANSFORM_TO_SILK[function], mapping)
        for function, mapping in _PARAM_TO_SILK.items()
    )
}


def _format_number(value: float) -> str:
    """Thresholds render without a trailing ``.0`` for integral values,
    matching the style of hand-written Silk configurations."""
    if value == int(value):
        return str(int(value))
    return repr(value)


# -- rule -> LSL --------------------------------------------------------------


def _value_to_element(node: ValueNode, variable: str) -> ET.Element:
    if isinstance(node, PropertyNode):
        element = ET.Element("Input")
        element.set("path", f"?{variable}/{node.property_name}")
        return element
    assert isinstance(node, TransformationNode)
    element = ET.Element("TransformInput")
    element.set(
        "function", TRANSFORM_TO_SILK.get(node.function, node.function)
    )
    param_names = _PARAM_TO_SILK.get(node.function, {})
    for name, value in node.params:
        param = ET.SubElement(element, "Param")
        param.set("name", param_names.get(name, name))
        param.set("value", value)
    for child in node.inputs:
        element.append(_value_to_element(child, variable))
    return element


def _similarity_to_element(
    node: SimilarityNode, source_var: str, target_var: str
) -> ET.Element:
    if isinstance(node, ComparisonNode):
        element = ET.Element("Compare")
        element.set("metric", METRIC_TO_SILK.get(node.metric, node.metric))
        element.set("threshold", _format_number(node.threshold))
        element.set("weight", str(node.weight))
        element.append(_value_to_element(node.source, source_var))
        element.append(_value_to_element(node.target, target_var))
        return element
    assert isinstance(node, AggregationNode)
    element = ET.Element("Aggregate")
    element.set(
        "type", AGGREGATION_TO_SILK.get(node.function, node.function)
    )
    element.set("weight", str(node.weight))
    for child in node.operators:
        element.append(_similarity_to_element(child, source_var, target_var))
    return element


def rule_to_lsl_element(
    rule: LinkageRule, source_var: str = "a", target_var: str = "b"
) -> ET.Element:
    """Convert a rule to a Silk-LSL ``<LinkageRule>`` element."""
    root = ET.Element("LinkageRule")
    root.append(_similarity_to_element(rule.root, source_var, target_var))
    return root


def rule_to_lsl(
    rule: LinkageRule,
    source_var: str = "a",
    target_var: str = "b",
    indent: str = "  ",
) -> str:
    """Serialise a rule to pretty-printed Silk-LSL XML text."""
    element = rule_to_lsl_element(rule, source_var, target_var)
    ET.indent(element, space=indent)
    return ET.tostring(element, encoding="unicode")


# -- LSL -> rule --------------------------------------------------------------


def _parse_path(path: str) -> tuple[str, str]:
    """Split ``?a/rdfs:label`` into variable and property name."""
    if not path.startswith("?"):
        raise LslError(f"input path must start with '?<var>/': {path!r}")
    variable, separator, property_name = path[1:].partition("/")
    if not separator or not variable or not property_name:
        raise LslError(f"malformed input path: {path!r}")
    return variable, property_name


def _value_from_element(element: ET.Element) -> tuple[ValueNode, set[str]]:
    """Parse a value operator; also return the variables it references."""
    if element.tag == "Input":
        path = element.get("path")
        if path is None:
            raise LslError("<Input> requires a path attribute")
        variable, property_name = _parse_path(path)
        return PropertyNode(property_name), {variable}
    if element.tag == "TransformInput":
        silk_function = element.get("function")
        if silk_function is None:
            raise LslError("<TransformInput> requires a function attribute")
        function = SILK_TO_TRANSFORM.get(silk_function, silk_function)
        params: list[tuple[str, str]] = []
        inputs: list[ValueNode] = []
        variables: set[str] = set()
        param_names = _PARAM_FROM_SILK.get(silk_function, {})
        for child in element:
            if child.tag == "Param":
                name = child.get("name")
                value = child.get("value")
                if name is None or value is None:
                    raise LslError("<Param> requires name and value attributes")
                params.append((param_names.get(name, name), value))
            else:
                node, child_vars = _value_from_element(child)
                inputs.append(node)
                variables |= child_vars
        if not inputs:
            raise LslError(
                f"<TransformInput function={silk_function!r}> has no inputs"
            )
        node = TransformationNode(
            function=function,
            inputs=tuple(inputs),
            params=tuple(sorted(params)),
        )
        return node, variables
    raise LslError(f"unexpected element <{element.tag}> in value position")


def _require_float(element: ET.Element, attribute: str) -> float:
    raw = element.get(attribute)
    if raw is None:
        raise LslError(f"<{element.tag}> requires a {attribute} attribute")
    try:
        return float(raw)
    except ValueError as error:
        raise LslError(
            f"<{element.tag}> {attribute}={raw!r} is not a number"
        ) from error


def _weight_of(element: ET.Element) -> int:
    raw = element.get("weight", "1")
    try:
        weight = int(raw)
    except ValueError as error:
        raise LslError(f"weight={raw!r} is not an integer") from error
    if weight < 1:
        raise LslError(f"weight must be >= 1, got {weight}")
    return weight


def _similarity_from_element(
    element: ET.Element, source_var: str, target_var: str
) -> SimilarityNode:
    if element.tag == "Compare":
        silk_metric = element.get("metric")
        if silk_metric is None:
            raise LslError("<Compare> requires a metric attribute")
        inputs = [
            child for child in element if child.tag in ("Input", "TransformInput")
        ]
        if len(inputs) != 2:
            raise LslError(
                f"<Compare> requires exactly 2 inputs, got {len(inputs)}"
            )
        first, first_vars = _value_from_element(inputs[0])
        second, second_vars = _value_from_element(inputs[1])
        for variables in (first_vars, second_vars):
            if len(variables) != 1:
                raise LslError(
                    "each comparison input must reference exactly one "
                    f"variable, got {sorted(variables)}"
                )
        # Silk conventionally writes the source input first, but accept
        # swapped inputs as long as the variables are unambiguous.
        if first_vars == {source_var} and second_vars == {target_var}:
            source, target = first, second
        elif first_vars == {target_var} and second_vars == {source_var}:
            source, target = second, first
        else:
            raise LslError(
                f"comparison inputs use variables {sorted(first_vars)} / "
                f"{sorted(second_vars)}; expected {source_var!r} and "
                f"{target_var!r}"
            )
        return ComparisonNode(
            metric=SILK_TO_METRIC.get(silk_metric, silk_metric),
            threshold=_require_float(element, "threshold"),
            source=source,
            target=target,
            weight=_weight_of(element),
        )
    if element.tag == "Aggregate":
        silk_type = element.get("type")
        if silk_type is None:
            raise LslError("<Aggregate> requires a type attribute")
        function = SILK_TO_AGGREGATION.get(silk_type)
        if function is None:
            known = ", ".join(sorted(SILK_TO_AGGREGATION))
            raise LslError(
                f"unsupported aggregation type {silk_type!r}; supported: {known}"
            )
        operators = tuple(
            _similarity_from_element(child, source_var, target_var)
            for child in element
            if child.tag in ("Compare", "Aggregate")
        )
        if not operators:
            raise LslError("<Aggregate> has no operators")
        return AggregationNode(
            function=function, operators=operators, weight=_weight_of(element)
        )
    raise LslError(f"unexpected element <{element.tag}> in similarity position")


def rule_from_lsl_element(
    element: ET.Element, source_var: str = "a", target_var: str = "b"
) -> LinkageRule:
    """Parse a ``<LinkageRule>`` element (or a bare similarity element)."""
    if element.tag == "LinkageRule":
        children = list(element)
        if len(children) != 1:
            raise LslError(
                f"<LinkageRule> must contain exactly one similarity "
                f"operator, got {len(children)}"
            )
        element = children[0]
    return LinkageRule(_similarity_from_element(element, source_var, target_var))


def rule_from_lsl(
    text: str, source_var: str = "a", target_var: str = "b"
) -> LinkageRule:
    """Parse Silk-LSL XML text into a :class:`LinkageRule`."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as error:
        raise LslError(f"not well-formed XML: {error}") from error
    return rule_from_lsl_element(element, source_var, target_var)
