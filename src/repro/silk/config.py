"""Full Silk link specification (``<Silk>``) documents.

A Silk configuration bundles namespace prefixes, data source
declarations and one or more interlinking tasks. :func:`silk_config`
renders learned rules into a document Silk 2.5.x accepts;
:func:`parse_silk_config` reads such a document back (e.g. to evaluate
or prune a hand-written specification with this library, the
"improved by humans" loop of Section 1).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.rule import LinkageRule
from repro.silk.lsl import LslError, rule_from_lsl_element, rule_to_lsl_element

#: Prefixes every generated configuration declares.
DEFAULT_PREFIXES = (
    ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
    ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
    ("owl", "http://www.w3.org/2002/07/owl#"),
)


@dataclass(frozen=True)
class SilkPrefix:
    """One ``<Prefix id=... namespace=...>`` declaration."""

    id: str
    namespace: str


@dataclass(frozen=True)
class SilkDataSource:
    """One ``<DataSource>`` declaration.

    ``type`` is a Silk plugin id (``file``, ``sparqlEndpoint``, ...);
    ``params`` are rendered as ``<Param>`` children.
    """

    id: str
    type: str = "file"
    params: tuple[tuple[str, str], ...] = ()

    @classmethod
    def file(cls, id: str, path: str, format: str = "N-TRIPLE") -> "SilkDataSource":
        return cls(id=id, type="file", params=(("file", path), ("format", format)))

    @classmethod
    def sparql(cls, id: str, endpoint_uri: str) -> "SilkDataSource":
        return cls(
            id=id, type="sparqlEndpoint", params=(("endpointURI", endpoint_uri),)
        )


@dataclass(frozen=True)
class SilkInterlink:
    """One ``<Interlink>`` task: a rule plus its data source bindings."""

    id: str
    rule: LinkageRule
    source_dataset: str = "source"
    target_dataset: str = "target"
    source_var: str = "a"
    target_var: str = "b"
    link_type: str = "owl:sameAs"
    source_restriction: str = ""
    target_restriction: str = ""
    #: Confidence filter; Definition 3 classifies at 0.5.
    filter_threshold: float = 0.5


@dataclass(frozen=True)
class SilkConfig:
    """A parsed Silk document: prefixes, sources, interlinks."""

    prefixes: tuple[SilkPrefix, ...]
    data_sources: tuple[SilkDataSource, ...]
    interlinks: tuple[SilkInterlink, ...]

    def interlink(self, id: str) -> SilkInterlink:
        for interlink in self.interlinks:
            if interlink.id == id:
                return interlink
        known = ", ".join(link.id for link in self.interlinks)
        raise KeyError(f"no interlink {id!r}; document has: {known}")


def _dataset_element(
    tag: str, data_source: str, var: str, restriction: str
) -> ET.Element:
    element = ET.Element(tag)
    element.set("dataSource", data_source)
    element.set("var", var)
    if restriction:
        restrict = ET.SubElement(element, "RestrictTo")
        restrict.text = restriction
    return element


def silk_config(
    interlinks: Sequence[SilkInterlink],
    data_sources: Sequence[SilkDataSource] = (),
    prefixes: Mapping[str, str] | Sequence[SilkPrefix] = (),
    indent: str = "  ",
) -> str:
    """Render a complete ``<Silk>`` document.

    Missing data sources are synthesised as file sources named after the
    interlinks' dataset ids, so the output is always a loadable document.
    """
    if isinstance(prefixes, Mapping):
        prefix_list = [SilkPrefix(id, ns) for id, ns in prefixes.items()]
    else:
        prefix_list = list(prefixes)
    declared = {prefix.id for prefix in prefix_list}
    for id, namespace in DEFAULT_PREFIXES:
        if id not in declared:
            prefix_list.append(SilkPrefix(id, namespace))

    source_list = list(data_sources)
    declared_sources = {source.id for source in source_list}
    for interlink in interlinks:
        for dataset in (interlink.source_dataset, interlink.target_dataset):
            if dataset not in declared_sources:
                source_list.append(SilkDataSource.file(dataset, f"{dataset}.nt"))
                declared_sources.add(dataset)

    root = ET.Element("Silk")
    prefixes_element = ET.SubElement(root, "Prefixes")
    for prefix in prefix_list:
        element = ET.SubElement(prefixes_element, "Prefix")
        element.set("id", prefix.id)
        element.set("namespace", prefix.namespace)

    sources_element = ET.SubElement(root, "DataSources")
    for source in source_list:
        element = ET.SubElement(sources_element, "DataSource")
        element.set("id", source.id)
        element.set("type", source.type)
        for name, value in source.params:
            param = ET.SubElement(element, "Param")
            param.set("name", name)
            param.set("value", value)

    interlinks_element = ET.SubElement(root, "Interlinks")
    for interlink in interlinks:
        element = ET.SubElement(interlinks_element, "Interlink")
        element.set("id", interlink.id)
        link_type = ET.SubElement(element, "LinkType")
        link_type.text = interlink.link_type
        element.append(
            _dataset_element(
                "SourceDataset",
                interlink.source_dataset,
                interlink.source_var,
                interlink.source_restriction,
            )
        )
        element.append(
            _dataset_element(
                "TargetDataset",
                interlink.target_dataset,
                interlink.target_var,
                interlink.target_restriction,
            )
        )
        element.append(
            rule_to_lsl_element(
                interlink.rule, interlink.source_var, interlink.target_var
            )
        )
        filter_element = ET.SubElement(element, "Filter")
        filter_element.set("threshold", repr(interlink.filter_threshold))

    ET.indent(root, space=indent)
    return ET.tostring(root, encoding="unicode")


def _parse_interlink(element: ET.Element) -> SilkInterlink:
    interlink_id = element.get("id", "")
    link_type_element = element.find("LinkType")
    source_element = element.find("SourceDataset")
    target_element = element.find("TargetDataset")
    rule_element = element.find("LinkageRule")
    if source_element is None or target_element is None:
        raise LslError(
            f"interlink {interlink_id!r} needs SourceDataset and TargetDataset"
        )
    if rule_element is None:
        raise LslError(f"interlink {interlink_id!r} has no <LinkageRule>")
    source_var = source_element.get("var", "a")
    target_var = target_element.get("var", "b")
    rule = rule_from_lsl_element(rule_element, source_var, target_var)
    filter_element = element.find("Filter")
    threshold = 0.5
    if filter_element is not None and filter_element.get("threshold"):
        threshold = float(filter_element.get("threshold"))  # type: ignore[arg-type]

    def restriction(dataset: ET.Element) -> str:
        restrict = dataset.find("RestrictTo")
        if restrict is None or restrict.text is None:
            return ""
        return restrict.text.strip()

    return SilkInterlink(
        id=interlink_id,
        rule=rule,
        source_dataset=source_element.get("dataSource", "source"),
        target_dataset=target_element.get("dataSource", "target"),
        source_var=source_var,
        target_var=target_var,
        link_type=(
            link_type_element.text.strip()
            if link_type_element is not None and link_type_element.text
            else "owl:sameAs"
        ),
        source_restriction=restriction(source_element),
        target_restriction=restriction(target_element),
        filter_threshold=threshold,
    )


def parse_silk_config(text: str) -> SilkConfig:
    """Parse a ``<Silk>`` document into its prefixes, sources and rules."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise LslError(f"not well-formed XML: {error}") from error
    if root.tag != "Silk":
        raise LslError(f"expected <Silk> document, got <{root.tag}>")

    prefixes = tuple(
        SilkPrefix(element.get("id", ""), element.get("namespace", ""))
        for element in root.iterfind("Prefixes/Prefix")
    )
    data_sources = tuple(
        SilkDataSource(
            id=element.get("id", ""),
            type=element.get("type", "file"),
            params=tuple(
                (param.get("name", ""), param.get("value", ""))
                for param in element.iterfind("Param")
            ),
        )
        for element in root.iterfind("DataSources/DataSource")
    )
    interlinks = tuple(
        _parse_interlink(element)
        for element in root.iterfind("Interlinks/Interlink")
    )
    return SilkConfig(
        prefixes=prefixes, data_sources=data_sources, interlinks=interlinks
    )
