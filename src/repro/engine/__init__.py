"""Compiled, vectorized rule-execution engine.

The execution substrate shared by GP learning and link generation:
rule trees compile into deduplicated plans (:mod:`repro.engine.compiler`),
pair lists materialise into columnar stores (:mod:`repro.engine.columns`),
and numpy kernels (:mod:`repro.engine.kernels`) turn cached distance
columns into score vectors. :class:`EngineSession` is the persistent
entry point; see ``docs/engine.md`` for the architecture.
"""

from repro.engine.compiler import (
    CompiledAggregation,
    CompiledComparison,
    CompiledPlan,
    CompiledSimilarity,
    ComparisonOp,
    GenerationDiff,
    RuleCompiler,
)
from repro.engine.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WORKERS_ENV,
    resolve_executor,
)
from repro.engine.kernels import aggregate_scores, threshold_scores
from repro.engine.lru import CacheStats, LRUCache
from repro.engine.session import EngineSession, EngineStats, PairContext
from repro.engine.store import (
    CACHE_ENV,
    ColumnStore,
    StoreStats,
    resolve_store,
)
from repro.engine.values import evaluate_value_op

__all__ = [
    "CACHE_ENV",
    "CacheStats",
    "ColumnStore",
    "StoreStats",
    "CompiledAggregation",
    "CompiledComparison",
    "CompiledPlan",
    "CompiledSimilarity",
    "ComparisonOp",
    "EngineSession",
    "EngineStats",
    "Executor",
    "GenerationDiff",
    "LRUCache",
    "PairContext",
    "ProcessExecutor",
    "RuleCompiler",
    "SerialExecutor",
    "ThreadExecutor",
    "WORKERS_ENV",
    "aggregate_scores",
    "threshold_scores",
    "evaluate_value_op",
    "resolve_executor",
    "resolve_store",
]
