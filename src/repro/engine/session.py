"""The persistent rule-execution engine session.

An :class:`EngineSession` owns the compiler and the in-memory LRU
cache tiers, and hands out :class:`PairContext` objects bound to
concrete pair lists:

* **value tier** (session-wide, keyed by entity): transformed value
  tuples per (value op, entity). Survives across contexts, so a
  matching run that streams 4096-pair batches re-uses every entity's
  transformed values from earlier batches;
* **column tier** (keyed per context): threshold-free distance columns
  per comparison op. Shared by every rule and every threshold mutation
  within a context;
* **score tier** (keyed per context): thresholded score vectors per
  (comparison op, threshold), matching the seed evaluator's comparison
  cache granularity;
* **index tier** (session-wide, keyed by source fingerprint × blocker
  signature): blocking indexes resolved through
  :meth:`EngineSession.blocking_index`, so repeated matching runs over
  an unchanged source skip index construction;
* **persistent tier** (optional, content-keyed): an on-disk
  :class:`~repro.engine.store.ColumnStore` below the column and index
  tiers that lets *separate runs* over unchanged sources reuse
  distance columns and blocking indexes (``store=`` or the
  ``REPRO_ENGINE_CACHE`` environment variable).

``context()`` creates a context; :meth:`PairContext.scores` evaluates
one rule, :meth:`PairContext.population_scores` evaluates a whole GP
population through one compiled plan so shared subtrees are computed
exactly once.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.nodes import SimilarityNode, ValueNode
from repro.data.entity import Entity
from repro.distances.registry import DistanceRegistry
from repro.distances.registry import default_registry as default_distances
from repro.distances.strings import StringKernelMemo
from repro.engine.columns import PairStore
from repro.engine.compiler import (
    CompiledAggregation,
    CompiledComparison,
    CompiledPlan,
    CompiledSimilarity,
    GenerationDiff,
    RuleCompiler,
)
from repro.engine.executor import Executor, resolve_executor
from repro.engine.kernels import aggregate_scores, threshold_scores
from repro.engine.lru import CacheStats, LRUCache
from repro.engine.store import ColumnStore, StoreStats, resolve_store
from repro.transforms.registry import TransformationRegistry
from repro.transforms.registry import default_registry as default_transforms


@dataclass(frozen=True)
class EngineStats:
    """Cache and compiler statistics of one session."""

    values: CacheStats
    columns: CacheStats
    scores: CacheStats
    #: Unique ops interned by the compiler over the session lifetime.
    value_ops: int
    comparison_ops: int
    #: Populations compiled so far (one per GP generation).
    generations: int = 0
    #: Reuse record of the most recently compiled population, if any.
    last_generation: GenerationDiff | None = None
    #: Persistent-tier counters (None when no column store is
    #: configured). Kept separate from the in-memory tiers so
    #: consumers — CI assertions, docs — can tell a cross-run store
    #: hit from an in-memory value/column hit unambiguously.
    store: StoreStats | None = None
    #: Blocking probe-side counters: batch-probe invocations recorded
    #: by the blockers (:meth:`EngineSession.record_probe`) and probe
    #: results served from MultiBlock's distinct-value-tuple memo
    #: instead of fresh key derivation + postings union.
    probe_batches: int = 0
    probe_memo_hits: int = 0
    #: Per-measure kernel routing: sorted ``(measure, batch_pairs,
    #: fallback_pairs)`` triples counting non-empty pairs evaluated by
    #: a vectorized batch kernel vs the per-pair scalar fallback (cache
    #: and store hits evaluate nothing and count toward neither). A
    #: measure that silently falls back shows up here immediately.
    kernel_routing: tuple[tuple[str, int, int], ...] = ()
    #: Blocking-index provenance: payloads constructed from scratch vs
    #: payloads derived by patching a parent-epoch payload through a
    #: source delta chain (:meth:`EngineSession.blocking_index` with
    #: ``lineage=``/``patcher=``). A delta rerun should patch, not
    #: build — the incremental benchmark gates on this ratio.
    index_builds: int = 0
    index_patches: int = 0
    #: Degradations recorded this session: human-readable reasons the
    #: persistent store's circuit breaker tripped (empty when the disk
    #: behaved or no store is configured). Surfaced onward through
    #: ``MatchStats.degraded`` and service health.
    degraded: tuple[str, ...] = ()

    @property
    def last_comparison_reuse(self) -> float | None:
        """Comparison-op reuse ratio of the most recent generation
        (None before the first compiled population)."""
        return (
            self.last_generation.comparison_reuse_ratio
            if self.last_generation is not None
            else None
        )


class EngineSession:
    """Compiles rules once and evaluates them over pair contexts."""

    def __init__(
        self,
        distances: DistanceRegistry | None = None,
        transforms: TransformationRegistry | None = None,
        max_value_entries: int = 500_000,
        max_column_entries: int = 30_000,
        max_score_entries: int = 30_000,
        max_index_entries: int = 64,
        executor: Executor | int | str | None = None,
        store: "ColumnStore | str | None" = None,
    ):
        """``executor`` selects the parallel execution strategy for
        independent work within this session (distance columns of one
        compiled plan). ``None`` consults ``REPRO_ENGINE_WORKERS``
        (default serial); an int selects a thread pool of that size;
        see :func:`repro.engine.executor.resolve_executor` for the full
        spec grammar. Results are byte-identical for every setting —
        only wall-clock and cache statistics change.

        ``store`` enables the persistent distance-column tier: a
        :class:`~repro.engine.store.ColumnStore`, a cache-directory
        path, or ``None`` to consult ``REPRO_ENGINE_CACHE`` (absent or
        empty: no persistent tier; pass ``""`` to force it off). The
        store is below the in-memory tiers and equally
        result-invisible — only cold-start cost and statistics change."""
        self._distances = distances if distances is not None else default_distances()
        self._transforms = (
            transforms if transforms is not None else default_transforms()
        )
        self._compiler = RuleCompiler()
        self._value_cache = LRUCache(max_value_entries)
        self._column_cache = LRUCache(max_column_entries)
        self._score_cache = LRUCache(max_score_entries)
        #: Blocking indexes keyed (source fingerprint, blocker token).
        #: Few entries, each potentially large — the bound is an entry
        #: count, not a byte budget, so keep it small.
        self._index_cache = LRUCache(max_index_entries)
        self._executor = resolve_executor(executor)
        self._store = resolve_store(store)
        self._next_context_id = 0
        self._context_id_lock = threading.Lock()
        #: Blocking probe-side counters (monotonic; reported through
        #: :meth:`stats` and per-run deltas in ``MatchStats``). Locked:
        #: probe chunks may record from executor worker threads.
        self._probe_lock = threading.Lock()
        self._probe_batches = 0
        self._probe_memo_hits = 0
        self._index_builds = 0
        self._index_patches = 0
        #: Session-scoped string-kernel carrier: bounded encode memos
        #: (code-point arrays per distinct string, token-code sets per
        #: distinct value tuple) plus the per-measure kernel-routing
        #: counters. Threaded through every PairStore like the probe
        #: memo; thread-safe, so shared-memory executors are fine.
        self._string_memo = StringKernelMemo()

    @property
    def distances(self) -> DistanceRegistry:
        return self._distances

    @property
    def transforms(self) -> TransformationRegistry:
        return self._transforms

    @property
    def executor(self) -> Executor:
        """The execution strategy for this session's parallel work."""
        return self._executor

    @property
    def store(self) -> ColumnStore | None:
        """The persistent column store, or None when disabled."""
        return self._store

    # -- compilation ----------------------------------------------------------
    def compile(self, root: SimilarityNode) -> CompiledSimilarity:
        return self._compiler.compile(root)

    def compile_population(
        self, roots: Sequence[SimilarityNode]
    ) -> CompiledPlan:
        return self._compiler.compile_population(roots)

    # -- contexts -------------------------------------------------------------
    def context(self, pairs: Sequence[tuple[Entity, Entity]]) -> "PairContext":
        """A pair context sharing this session's caches and compiler.

        Safe to call from engine worker threads (shard consumers create
        one context per batch); context ids are allocated under a lock
        so concurrent contexts never share column/score cache keys.
        """
        with self._context_id_lock:
            context_id = self._next_context_id
            self._next_context_id += 1
        store = PairStore(
            pairs,
            store_id=context_id,
            distances=self._distances,
            transforms=self._transforms,
            value_cache=self._value_cache,
            column_cache=self._column_cache,
            persistent_store=self._store,
            string_memo=self._string_memo,
        )
        return PairContext(self, store, context_id)

    # -- standalone value evaluation ------------------------------------------
    def entity_values(self, node: ValueNode, entity: Entity) -> tuple[str, ...]:
        """Transformed values of one value tree for one entity, through
        the session value cache (used by blocking-index construction so
        index keys share work with rule evaluation)."""
        sig = self._compiler.value_signature(node)
        key = (sig, entity)
        values = self._value_cache.get(key)
        if values is None:
            from repro.engine.values import evaluate_value_op

            values = evaluate_value_op(node, entity, self._transforms)
            self._value_cache.put(key, values)
        return values

    # -- blocking indexes ------------------------------------------------------
    def blocking_index(
        self,
        source_fingerprint: str,
        blocker_token: str,
        build,
        *,
        lineage=(),
        patcher=None,
    ):
        """A blocking index through the session's index memo.

        Resolution order mirrors the distance-column path: the
        in-memory index cache first, then the persistent store's index
        tier (when a store is configured), then — new with delta
        ingestion — *patching*: when the caller passes the source's
        ``lineage`` (its :meth:`~repro.data.source.DataSource.
        delta_chain`) and a ``patcher`` callable, an ancestor epoch's
        payload found in the memo or store is moved forward one
        :class:`~repro.data.source.SourceDelta` at a time
        (``patcher(payload, delta) -> payload | None``; None abandons
        patching) instead of rebuilding from scratch. Only as a last
        resort does ``build()`` run. Whatever resolves is persisted
        under the *current* epoch's key and memoised, so every epoch's
        payload is internally consistent — a reader can never observe a
        half-patched index. Keys are pure content hashes (source
        fingerprint × blocker construction signature), so a changed
        source or a differently-configured blocker misses cleanly and
        can never be served a stale index. Safe to call concurrently: a
        racing build costs duplicated work, never a divergent index
        (construction and patching are deterministic).
        """
        memo_key = (source_fingerprint, blocker_token)
        cached = self._index_cache.get(memo_key)
        if cached is not None:
            return cached
        payload = None
        store = self._store
        persistent_key: str | None = None
        if store is not None:
            from repro.engine.store import index_key

            persistent_key = index_key(source_fingerprint, blocker_token)
            payload = store.load_index(persistent_key)
        if payload is None:
            patched_from: str | None = None
            steps = 0
            if patcher is not None:
                patched = self._patch_from_lineage(
                    source_fingerprint, blocker_token, lineage, patcher
                )
                if patched is not None:
                    payload, patched_from, steps = patched
            if payload is not None:
                with self._probe_lock:
                    self._index_patches += 1
            else:
                payload = build()
                with self._probe_lock:
                    self._index_builds += 1
            if store is not None and persistent_key is not None:
                store.save_index(persistent_key, payload)
                if patched_from is not None:
                    store.save_epoch(
                        source_fingerprint,
                        {
                            "parent": patched_from,
                            "token": blocker_token,
                            "deltas": steps,
                            "created": time.time(),
                        },
                    )
        self._index_cache.put(memo_key, payload)
        return payload

    def _patch_from_lineage(
        self, source_fingerprint: str, blocker_token: str, lineage, patcher
    ):
        """Try to derive the current epoch's payload from an ancestor.

        Walks the delta chain newest-first looking for any ancestor
        epoch whose payload is already resolved (memo or store), then
        replays the intervening deltas oldest-first through ``patcher``.
        Returns ``(payload, ancestor_fingerprint, steps)`` or None when
        no ancestor is available, the chain doesn't lead to the current
        fingerprint, or the patcher gives up.
        """
        chain = tuple(lineage)
        if not chain or chain[-1].fingerprint != source_fingerprint:
            return None
        for earlier, later in zip(chain, chain[1:]):
            if earlier.fingerprint != later.parent_fingerprint:
                return None
        store = self._store
        pending = []
        for delta in reversed(chain):
            pending.append(delta)
            ancestor = delta.parent_fingerprint
            base = self._index_cache.get((ancestor, blocker_token))
            if base is None and store is not None:
                from repro.engine.store import index_key

                base = store.load_index(index_key(ancestor, blocker_token))
            if base is None:
                continue
            payload = base
            for step in reversed(pending):
                payload = patcher(payload, step)
                if payload is None:
                    return None
            return payload, ancestor, len(pending)
        return None

    def peek_blocking_index(self, source_fingerprint: str, blocker_token: str):
        """The already-resolved payload for one epoch, or None.

        Never builds and never patches — this is how delta-affected-set
        computation reconstructs the *previous* epoch's view (e.g. the
        sorted-neighbourhood key order before the deltas) without
        paying for a rebuild when it isn't available.
        """
        memo_key = (source_fingerprint, blocker_token)
        cached = self._index_cache.get(memo_key)
        if cached is not None:
            return cached
        if self._store is not None:
            from repro.engine.store import index_key

            payload = self._store.load_index(
                index_key(source_fingerprint, blocker_token)
            )
            if payload is not None:
                self._index_cache.put(memo_key, payload)
                return payload
        return None

    def record_probe(self, batches: int = 0, memo_hits: int = 0) -> None:
        """Record blocking probe-side traffic (called by the blockers'
        :meth:`~repro.matching.blocking.Blocker.probe_batch` paths;
        safe from executor worker threads)."""
        with self._probe_lock:
            self._probe_batches += batches
            self._probe_memo_hits += memo_hits

    # -- maintenance ----------------------------------------------------------
    def release_context(self, context: "PairContext") -> None:
        """Evict a context's column- and score-tier entries.

        Column and score vectors are keyed per context and can never
        hit again once the context is discarded; streaming consumers
        (one context per batch) call this so dead vectors don't sit in
        the tiers until capacity eviction. Value-tier entries are keyed
        by entity and stay — they are exactly what later batches reuse.
        """
        context_id = context._context_id
        self._column_cache.evict_matching(lambda key: key[0] == context_id)
        self._score_cache.evict_matching(lambda key: key[0] == context_id)

    def clear_caches(self) -> None:
        """Drop all cached values, columns and scores (the compiler's
        interned ops are kept — they are tiny and never stale; the
        persistent store is untouched — surviving process boundaries is
        its purpose, use :meth:`ColumnStore.clear` to invalidate it)."""
        self._value_cache.clear()
        self._column_cache.clear()
        self._score_cache.clear()
        self._index_cache.clear()

    def stats(self) -> EngineStats:
        diffs = self._compiler.generation_diffs
        return EngineStats(
            values=self._value_cache.stats(),
            columns=self._column_cache.stats(),
            scores=self._score_cache.stats(),
            value_ops=self._compiler.value_op_count,
            comparison_ops=self._compiler.comparison_op_count,
            generations=len(diffs),
            last_generation=diffs[-1] if diffs else None,
            store=self._store.stats() if self._store is not None else None,
            probe_batches=self._probe_batches,
            probe_memo_hits=self._probe_memo_hits,
            kernel_routing=self._string_memo.routing(),
            index_builds=self._index_builds,
            index_patches=self._index_patches,
            degraded=(
                self._store.trip_reasons() if self._store is not None else ()
            ),
        )

    def generation_diffs(self) -> "tuple[GenerationDiff, ...]":
        """Per-generation op-reuse records (one per compiled
        population), for crossover-operator tuning."""
        return self._compiler.generation_diffs

    def close(self) -> None:
        """Release the executor's pooled workers (serial: a no-op).
        The session itself stays usable — a later parallel map lazily
        recreates the pool. Usable as a context manager."""
        self._executor.close()

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PairContext:
    """Evaluates compiled rules over one fixed pair list."""

    def __init__(self, session: EngineSession, store: PairStore, context_id: int):
        self._session = session
        self._store = store
        self._context_id = context_id

    @property
    def session(self) -> EngineSession:
        return self._session

    @property
    def pairs(self) -> list[tuple[Entity, Entity]]:
        return self._store.pairs

    def __len__(self) -> int:
        return len(self._store)

    # -- execution ------------------------------------------------------------
    def scores(self, node: SimilarityNode) -> np.ndarray:
        """Score vector of a similarity node over all pairs.

        Comparison vectors come from the score cache and are read-only;
        aggregation results are fresh arrays.
        """
        return self.execute(self._session.compile(node))

    def predictions(self, node: SimilarityNode) -> np.ndarray:
        """Boolean match predictions at the 0.5 threshold."""
        return self.scores(node) >= 0.5

    def population_scores(
        self, roots: Sequence[SimilarityNode]
    ) -> list[np.ndarray]:
        """Score vectors for a whole population through one plan.

        Unique comparison ops are evaluated first (each one exactly
        once — this is where the deduplicated DAG pays off), then each
        root reduces over the shared vectors. Column building is
        independent per op, so a shared-memory executor fans it out
        across workers; the columns land in the shared cache either
        way, and every op is pure, so results are byte-identical for
        any worker count.
        """
        plan = self._session.compile_population(roots)
        executor = self._session.executor
        if executor.shares_memory and executor.workers > 1:
            executor.map(self._store.distance_column, plan.comparison_ops)
        else:
            # Process pools cannot share the column cache; build
            # inline (the shards themselves parallelise elsewhere).
            for op in plan.comparison_ops:
                self._store.distance_column(op)
        return [self.execute(root) for root in plan.roots]

    def execute(self, compiled: CompiledSimilarity) -> np.ndarray:
        """Evaluate a compiled similarity tree."""
        if isinstance(compiled, CompiledComparison):
            return self._comparison_scores(compiled)
        if isinstance(compiled, CompiledAggregation):
            child_scores = [self.execute(child) for child in compiled.children]
            return aggregate_scores(
                compiled.function, child_scores, compiled.weights
            )
        raise TypeError(f"not a compiled similarity: {type(compiled).__name__}")

    def _comparison_scores(self, compiled: CompiledComparison) -> np.ndarray:
        cache = self._session._score_cache
        key = (self._context_id, compiled.op.sig, compiled.threshold)
        scores = cache.get(key)
        if scores is None:
            distances = self._store.distance_column(compiled.op)
            scores = threshold_scores(distances, compiled.threshold)
            cache.put(key, scores)
        return scores
