"""Value-operator evaluation (Definitions 5 & 6).

This is the single implementation of value semantics in the codebase;
:func:`repro.core.evaluation.evaluate_value` delegates here. It lives
in the engine package (rather than ``repro.core``) so the execution
layers below — columnar stores, compiled plans — can evaluate value
trees without importing the evaluation facade that sits on top of them.

Parameterised transformations are resolved through
:meth:`TransformationRegistry.resolve`, so custom transformations with
parameters work without any special-casing here.
"""

from __future__ import annotations

from repro.core.nodes import PropertyNode, TransformationNode, ValueNode
from repro.data.entity import Entity
from repro.transforms.registry import TransformationRegistry


def evaluate_value_op(
    node: ValueNode,
    entity: Entity,
    transforms: TransformationRegistry,
) -> tuple[str, ...]:
    """Evaluate a value operator for one entity."""
    if isinstance(node, PropertyNode):
        return entity.values(node.property_name)
    if isinstance(node, TransformationNode):
        transformation = transforms.resolve(node.function, node.params)
        inputs = [
            evaluate_value_op(child, entity, transforms) for child in node.inputs
        ]
        return transformation(inputs)
    raise TypeError(f"not a value operator: {type(node).__name__}")
