"""Vectorized comparison and aggregation kernels.

Numpy array expressions over precomputed distance columns. The
elementwise float64 arithmetic is IEEE-identical to the scalar
per-pair loop of the seed evaluator, so switching engines does not
perturb a single score bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distances.base import INFINITE_DISTANCE


def threshold_scores(distances: np.ndarray, threshold: float) -> np.ndarray:
    """Similarity scores ``1 - d/theta`` over a distance column
    (Definition 7).

    ``theta <= 0`` degenerates to exact matching. Distances at or above
    ``INFINITE_DISTANCE`` (undefined comparisons, empty value sets)
    score 0 regardless of the threshold. The returned array is
    read-only so it can be cached and shared safely.
    """
    if threshold <= 0.0:
        out = (distances == 0.0).astype(np.float64)
    else:
        valid = (distances <= threshold) & (distances < INFINITE_DISTANCE)
        # Masked divide: the sentinel lanes would overflow against tiny
        # thresholds and emit RuntimeWarnings the per-pair loop never did.
        scaled = np.divide(
            distances, threshold, out=np.zeros_like(distances), where=valid
        )
        out = np.where(valid, 1.0 - scaled, 0.0)
    out.setflags(write=False)
    return out


def aggregate_scores(
    function: str,
    child_scores: Sequence[np.ndarray],
    weights: Sequence[int],
) -> np.ndarray:
    """Combine child score vectors (Definition 8).

    ``min``/``max`` ignore weights; ``wmean`` uses the integer weights
    of the child operators. Operation order matches the seed evaluator
    exactly (vstack + axis reduction / matmul) for bit-stable scores.
    """
    stacked = np.vstack(child_scores)
    if function == "min":
        return stacked.min(axis=0)
    if function == "max":
        return stacked.max(axis=0)
    if function == "wmean":
        weight_vector = np.array(weights, dtype=np.float64)
        return weight_vector @ stacked / weight_vector.sum()
    raise ValueError(f"unknown aggregation function {function!r}")
