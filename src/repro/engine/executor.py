"""Pluggable parallel execution for the engine.

Both halves of the hot path are embarrassingly parallel: distance
columns within one compiled plan are independent per comparison op, and
candidate-pair shards within one matching run are independent per
shard. :class:`Executor` abstracts *how* that independent work runs —
inline (:class:`SerialExecutor`), on a shared-memory thread pool
(:class:`ThreadExecutor`), or on a process pool
(:class:`ProcessExecutor`) — behind one order-preserving ``map``.

Determinism is the design constraint: every task the engine submits is
a pure function, and consumers always consume results in submission
order, so outputs are byte-identical regardless of executor kind or
worker count. Parallelism may change *cache statistics* (who computed
what first), never results.

Selection is explicit (constructor argument) or ambient via the
``REPRO_ENGINE_WORKERS`` environment variable::

    REPRO_ENGINE_WORKERS=0          # serial (the default)
    REPRO_ENGINE_WORKERS=4          # thread pool, 4 workers
    REPRO_ENGINE_WORKERS=thread:4   # same, explicit
    REPRO_ENGINE_WORKERS=process:4  # process pool, 4 workers
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

#: Environment variable consulted when no executor is configured.
WORKERS_ENV = "REPRO_ENGINE_WORKERS"


class Executor(ABC):
    """Maps a pure function over items, preserving input order.

    ``kind`` names the strategy (``serial`` / ``thread`` / ``process``),
    ``workers`` is the configured worker count (0 for serial), and
    ``shares_memory`` tells callers whether submitted callables may
    close over shared mutable state (sessions, caches) — true for
    serial and thread executors, false for process pools, whose tasks
    must be picklable and self-contained.
    """

    kind: str = "abstract"
    workers: int = 0
    shares_memory: bool = True

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every item; results in input order."""

    def close(self) -> None:
        """Release pooled workers (idempotent; a closed executor may
        not be reused)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Inline execution — the zero-dependency, zero-overhead default."""

    kind = "serial"
    workers = 0

    def map(self, fn, items):
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """A persistent shared-memory thread pool.

    Python threads cooperate through the engine's thread-safe caches, so
    closures over a shared :class:`~repro.engine.session.EngineSession`
    are fine. Throughput gains come from numpy kernels and (on
    free-threaded builds) the pure-Python parse loops; on GIL builds the
    win is bounded, but results are identical either way.
    """

    kind = "thread"
    shares_memory = True

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("thread executor needs at least 1 worker")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-engine"
            )
        return self._pool

    def map(self, fn, items):
        items = list(items)
        # Not worth a thread hop for trivial fan-outs.
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """A persistent process pool for GIL-free sharding.

    Submitted callables and their arguments must be picklable (use
    module-level functions). Worker processes keep their own module
    state between tasks, which shard consumers exploit to hold one
    per-process engine session whose value cache persists across
    shards.
    """

    kind = "process"
    shares_memory = False

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("process executor needs at least 1 worker")
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def map(self, fn, items):
        items = list(items)
        if not items:
            return []
        return list(self._ensure_pool().map(fn, items))

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def parse_workers_spec(spec: str) -> Executor:
    """Build an executor from a spec string.

    Accepted forms: ``"serial"`` / ``"0"`` (serial), ``"N"`` (thread
    pool of N), ``"thread:N"``, ``"process:N"``.
    """
    text = spec.strip().lower()
    if text in ("", "0", "serial"):
        return SerialExecutor()
    kind, _, count_text = text.partition(":")
    if not _:
        kind, count_text = "thread", text
    try:
        count = int(count_text)
    except ValueError:
        raise ValueError(
            f"invalid workers spec {spec!r}: expected 'serial', a worker "
            f"count, 'thread:N' or 'process:N'"
        ) from None
    if count < 0:
        raise ValueError(f"invalid workers spec {spec!r}: count must be >= 0")
    if count == 0:
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(count)
    if kind == "process":
        return ProcessExecutor(count)
    raise ValueError(
        f"invalid workers spec {spec!r}: unknown executor kind {kind!r}"
    )


def resolve_executor(
    workers: "int | str | Executor | None" = None,
) -> Executor:
    """Resolve a workers argument to an :class:`Executor`.

    ``None`` consults ``REPRO_ENGINE_WORKERS`` (absent or ``0`` means
    serial); an int selects a thread pool of that size (0 = serial); a
    string is parsed by :func:`parse_workers_spec`; an executor
    instance passes through unchanged.
    """
    if workers is None:
        return parse_workers_spec(os.environ.get(WORKERS_ENV, ""))
    if isinstance(workers, Executor):
        return workers
    if isinstance(workers, bool):  # bool is an int subclass; reject it
        raise TypeError("workers must be an int, str, Executor or None")
    if isinstance(workers, int):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        return ThreadExecutor(workers) if workers else SerialExecutor()
    if isinstance(workers, str):
        return parse_workers_spec(workers)
    raise TypeError(
        f"workers must be an int, str, Executor or None, "
        f"not {type(workers).__name__}"
    )


def window_batches(
    batches: Iterable[Any], window: int
) -> Iterable[list[Any]]:
    """Group an iterable into windows of at most ``window`` items.

    Shard consumers evaluate one window concurrently while keeping
    memory bounded: only ``window`` batches are materialised at a time,
    and emitting windows in order preserves the global batch order.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    group: list[Any] = []
    for batch in batches:
        group.append(batch)
        if len(group) >= window:
            yield group
            group = []
    if group:
        yield group
